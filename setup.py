"""Compatibility shim for environments without PEP 517 build isolation.

All project metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` (and plain ``python setup.py develop``)
on machines where the ``wheel`` package or network access for build
dependencies is unavailable.
"""

from setuptools import setup

setup()
