"""Region partitioning abstractions.

A *partitioning* assigns every network node to exactly one region.  Regions
drive all air-index methods of the paper: EB and NR prune whole regions,
ArcFlag keeps one flag bit per region, and HiTi builds its hierarchy on top
of them.

A node is a *border node* of its region if at least one adjacent node (along
an incoming or outgoing edge) lies in a different region (paper Section 2.1,
HiTi description, reused by EB/NR in Section 4.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Protocol, Set, Tuple

from repro.network.graph import RoadNetwork

__all__ = ["RegionLocator", "Partitioning"]


class RegionLocator(Protocol):
    """Maps a Euclidean point to a region identifier in ``[0, num_regions)``."""

    @property
    def num_regions(self) -> int:
        """Total number of regions."""
        ...

    def locate(self, x: float, y: float) -> int:
        """Return the region containing point ``(x, y)``."""
        ...


class Partitioning:
    """A concrete assignment of network nodes to regions.

    Parameters
    ----------
    network:
        The road network being partitioned.
    locator:
        Point-to-region mapping (kd-tree or grid).  The same locator is what
        the client reconstructs from the air index's first component in order
        to find the source and destination regions.
    """

    def __init__(self, network: RoadNetwork, locator: RegionLocator) -> None:
        self.network = network
        self.locator = locator
        self.num_regions = locator.num_regions
        self._region_of: Dict[int, int] = {}
        self._regions: List[List[int]] = [[] for _ in range(self.num_regions)]
        for node in network.nodes():
            region = locator.locate(node.x, node.y)
            if not 0 <= region < self.num_regions:
                raise ValueError(
                    f"locator produced region {region} outside [0, {self.num_regions})"
                )
            self._region_of[node.node_id] = region
            self._regions[region].append(node.node_id)
        self._border_nodes: List[List[int]] = self._compute_border_nodes()

    # ------------------------------------------------------------------
    # Region membership
    # ------------------------------------------------------------------
    def region_of(self, node_id: int) -> int:
        """Region index of ``node_id``."""
        return self._region_of[node_id]

    def region_of_point(self, x: float, y: float) -> int:
        """Region index of an arbitrary Euclidean location."""
        return self.locator.locate(x, y)

    def nodes_in_region(self, region: int) -> List[int]:
        """All node ids assigned to ``region``."""
        return list(self._regions[region])

    def region_sizes(self) -> List[int]:
        """Number of nodes per region."""
        return [len(nodes) for nodes in self._regions]

    def non_empty_regions(self) -> List[int]:
        """Indices of regions containing at least one node."""
        return [r for r, nodes in enumerate(self._regions) if nodes]

    # ------------------------------------------------------------------
    # Border structure
    # ------------------------------------------------------------------
    def border_nodes(self, region: int) -> List[int]:
        """Border nodes of ``region`` (adjacent to some other region)."""
        return list(self._border_nodes[region])

    def all_border_nodes(self) -> List[int]:
        """All border nodes of the network, grouped by region order."""
        return [node for nodes in self._border_nodes for node in nodes]

    def is_border_node(self, node_id: int) -> bool:
        """``True`` when ``node_id`` has a neighbor in another region."""
        region = self._region_of[node_id]
        return node_id in set(self._border_nodes[region])

    def border_counts(self) -> List[int]:
        """Number of border nodes per region."""
        return [len(nodes) for nodes in self._border_nodes]

    def region_adjacency(self) -> Dict[int, Set[int]]:
        """For each region, the set of regions reachable by a single edge."""
        adjacency: Dict[int, Set[int]] = {r: set() for r in range(self.num_regions)}
        for edge in self.network.edges():
            source_region = self._region_of[edge.source]
            target_region = self._region_of[edge.target]
            if source_region != target_region:
                adjacency[source_region].add(target_region)
        return adjacency

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _compute_border_nodes(self) -> List[List[int]]:
        border: List[List[int]] = [[] for _ in range(self.num_regions)]
        for node_id, region in self._region_of.items():
            neighbors: Iterable[Tuple[int, float]] = (
                self.network.neighbors(node_id) + self.network.in_neighbors(node_id)
            )
            for neighbor, _ in neighbors:
                if self._region_of[neighbor] != region:
                    border[region].append(node_id)
                    break
        return border

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Partitioning(regions={self.num_regions}, "
            f"nodes={self.network.num_nodes}, "
            f"border={sum(self.border_counts())})"
        )
