"""Network partitioning: kd-tree and regular-grid region schemes."""

from repro.partitioning.base import Partitioning, RegionLocator
from repro.partitioning.kdtree import KDTreePartitioner, build_kdtree_partitioning
from repro.partitioning.grid import GridPartitioner, build_grid_partitioning

__all__ = [
    "GridPartitioner",
    "KDTreePartitioner",
    "Partitioning",
    "RegionLocator",
    "build_grid_partitioning",
    "build_kdtree_partitioning",
]
