"""kd-tree partitioning (paper Section 4.1, Figure 2).

The network is recursively split by the median coordinate of its contained
nodes, alternating between the y axis (first split, a line parallel to the
x axis) and the x axis, until the requested number of leaf regions is
reached.  The splitting values, transmitted in breadth-first order, are the
*first component* of both the EB and the NR air indexes: ``n - 1`` values
implicitly define ``n`` regions, and the client can rebuild the tree from
them alone.

Region numbering follows the paper's convention: leaves are numbered left to
right (the leftmost region of the leftmost leaf is region 0 in this
implementation; the paper calls it R1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["KDTreeNode", "KDTreePartitioner", "build_kdtree_partitioning"]

#: Axis used at the root split.  The paper's Figure 2 splits on y first
#: (a horizontal line), then alternates.
ROOT_AXIS = "y"


@dataclass
class KDTreeNode:
    """Internal kd-tree node: a split ``axis``/``value`` with two children.

    Leaves are represented by ``axis=None`` and carry a ``region`` index.
    """

    axis: Optional[str] = None
    value: float = 0.0
    left: Optional["KDTreeNode"] = None
    right: Optional["KDTreeNode"] = None
    region: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.axis is None


class KDTreePartitioner:
    """Median kd-tree over a set of points, exposing point-to-region lookup."""

    def __init__(self, root: KDTreeNode, num_regions: int) -> None:
        self.root = root
        self._num_regions = num_regions

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, points: Sequence[Tuple[float, float]], num_regions: int
    ) -> "KDTreePartitioner":
        """Build a kd-tree with ``num_regions`` leaves over ``points``.

        ``num_regions`` must be a power of two (the paper always uses 16,
        32, 64, or 128 regions).
        """
        if num_regions < 1 or num_regions & (num_regions - 1) != 0:
            raise ValueError(f"num_regions must be a power of two, got {num_regions}")
        if not points:
            raise ValueError("cannot partition an empty point set")
        depth = num_regions.bit_length() - 1  # log2(num_regions)
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        root = cls._split(list(zip(xs, ys)), depth, ROOT_AXIS)
        partitioner = cls(root, num_regions)
        partitioner._assign_region_numbers()
        return partitioner

    @classmethod
    def _split(
        cls, points: List[Tuple[float, float]], levels_left: int, axis: str
    ) -> KDTreeNode:
        if levels_left == 0:
            return KDTreeNode()
        coordinate_index = 0 if axis == "x" else 1
        values = sorted(point[coordinate_index] for point in points) if points else [0.0]
        median = values[(len(values) - 1) // 2] if values else 0.0
        left_points = [p for p in points if p[coordinate_index] <= median]
        right_points = [p for p in points if p[coordinate_index] > median]
        next_axis = "x" if axis == "y" else "y"
        return KDTreeNode(
            axis=axis,
            value=median,
            left=cls._split(left_points, levels_left - 1, next_axis),
            right=cls._split(right_points, levels_left - 1, next_axis),
        )

    def _assign_region_numbers(self) -> None:
        """Number leaves left-to-right (paper's R1, R2, ... convention)."""
        counter = 0

        def visit(node: KDTreeNode) -> None:
            nonlocal counter
            if node.is_leaf:
                node.region = counter
                counter += 1
                return
            visit(node.left)
            visit(node.right)

        visit(self.root)
        if counter != self._num_regions:
            raise AssertionError(
                f"expected {self._num_regions} leaves, assigned {counter}"
            )

    # ------------------------------------------------------------------
    # RegionLocator protocol
    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        """Number of leaf regions."""
        return self._num_regions

    def locate(self, x: float, y: float) -> int:
        """Return the leaf region containing point ``(x, y)``."""
        node = self.root
        while not node.is_leaf:
            coordinate = x if node.axis == "x" else y
            node = node.left if coordinate <= node.value else node.right
        return node.region

    # ------------------------------------------------------------------
    # Air-index serialization (first index component)
    # ------------------------------------------------------------------
    def splitting_values(self) -> List[float]:
        """Splitting values in breadth-first order (``n - 1`` floats).

        This is exactly the sequence the paper's example encodes as
        ``<10, 9, 11, 16, 15, ...>``: it suffices for a client to rebuild
        the tree, because the tree is complete and the axis alternates
        deterministically per level starting from :data:`ROOT_AXIS`.
        """
        values: List[float] = []
        frontier = [self.root]
        while frontier:
            next_frontier: List[KDTreeNode] = []
            for node in frontier:
                if node.is_leaf:
                    continue
                values.append(node.value)
                next_frontier.append(node.left)
                next_frontier.append(node.right)
            frontier = next_frontier
        return values

    @classmethod
    def from_splitting_values(
        cls, values: Sequence[float], num_regions: int
    ) -> "KDTreePartitioner":
        """Rebuild the kd-tree a client decodes from the air index.

        ``values`` must contain exactly ``num_regions - 1`` splitting values
        in breadth-first order.
        """
        if num_regions < 1 or num_regions & (num_regions - 1) != 0:
            raise ValueError(f"num_regions must be a power of two, got {num_regions}")
        if len(values) != num_regions - 1:
            raise ValueError(
                f"expected {num_regions - 1} splitting values, got {len(values)}"
            )
        depth = num_regions.bit_length() - 1
        iterator = iter(values)

        # Build level by level so consumption order matches breadth-first.
        root = KDTreeNode()
        frontier = [root]
        axis = ROOT_AXIS
        for _ in range(depth):
            next_frontier: List[KDTreeNode] = []
            for node in frontier:
                node.axis = axis
                node.value = next(iterator)
                node.left = KDTreeNode()
                node.right = KDTreeNode()
                next_frontier.extend([node.left, node.right])
            frontier = next_frontier
            axis = "x" if axis == "y" else "y"
        partitioner = cls(root, num_regions)
        partitioner._assign_region_numbers()
        return partitioner


def build_kdtree_partitioning(network: RoadNetwork, num_regions: int) -> Partitioning:
    """Partition ``network`` into ``num_regions`` kd-tree regions."""
    points = [(node.x, node.y) for node in network.nodes()]
    partitioner = KDTreePartitioner.build(points, num_regions)
    return Partitioning(network, partitioner)
