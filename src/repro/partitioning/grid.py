"""Regular-grid partitioning (the paper's "straightforward approach").

Section 4.1 discusses superimposing a regular grid of equi-sized cells over
the network: the client can then map coordinates to regions knowing only the
grid granularity and spatial extent.  The paper prefers kd-tree partitioning
because grid cells can be badly unbalanced; we implement the grid both as a
baseline for that design decision (ablation benchmarks) and because the BGI
spatial air index (Appendix A) is built on it.
"""

from __future__ import annotations

from typing import Tuple

from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["GridPartitioner", "build_grid_partitioning"]


class GridPartitioner:
    """A ``rows x cols`` grid of equi-sized cells over a bounding box."""

    def __init__(
        self,
        bounds: Tuple[float, float, float, float],
        rows: int,
        cols: int,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one row and one column")
        min_x, min_y, max_x, max_y = bounds
        if max_x < min_x or max_y < min_y:
            raise ValueError(f"invalid bounding box {bounds}")
        self.bounds = bounds
        self.rows = rows
        self.cols = cols
        self._cell_width = (max_x - min_x) / cols or 1.0
        self._cell_height = (max_y - min_y) / rows or 1.0

    @property
    def num_regions(self) -> int:
        """Total number of grid cells."""
        return self.rows * self.cols

    def locate(self, x: float, y: float) -> int:
        """Region (cell) index of point ``(x, y)``; points outside are clamped."""
        min_x, min_y, _, _ = self.bounds
        col = int((x - min_x) / self._cell_width)
        row = int((y - min_y) / self._cell_height)
        col = min(max(col, 0), self.cols - 1)
        row = min(max(row, 0), self.rows - 1)
        return row * self.cols + col

    def cell_bounds(self, region: int) -> Tuple[float, float, float, float]:
        """Bounding box ``(min_x, min_y, max_x, max_y)`` of cell ``region``."""
        if not 0 <= region < self.num_regions:
            raise IndexError(f"region {region} out of range")
        row, col = divmod(region, self.cols)
        min_x, min_y, _, _ = self.bounds
        x0 = min_x + col * self._cell_width
        y0 = min_y + row * self._cell_height
        return (x0, y0, x0 + self._cell_width, y0 + self._cell_height)


def build_grid_partitioning(network: RoadNetwork, rows: int, cols: int) -> Partitioning:
    """Partition ``network`` with a ``rows x cols`` regular grid."""
    partitioner = GridPartitioner(network.bounding_box(), rows, cols)
    return Partitioning(network, partitioner)
