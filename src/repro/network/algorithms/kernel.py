"""Array-based shortest path kernel over :class:`~repro.network.csr.CSRGraph`.

The dict Dijkstra in :mod:`repro.network.algorithms.dijkstra` pays a hash
lookup per distance read, a hash store per relaxation and a set probe per
pop.  This kernel runs the same algorithm over flat int-indexed buffers --
one list index per operation -- and, when ``numpy``/``scipy`` are installed,
routes *full* single-source sweeps through ``scipy.sparse.csgraph.dijkstra``
(a compiled CSR Dijkstra) with an exact pure-Python/numpy reconstruction of
everything the dict implementation reports.

**Bit-identity contract.**  Every search result is bit-identical to the
dict implementation's: identical IEEE-754 distance values, identical
predecessor choices on equal-distance ties, identical settled counts, and
an identical node discovery order (the dict implementation's ``distances``
insertion order).  Two mechanisms deliver this:

* Early-terminated and masked searches (:meth:`KernelArena.point_to_point`,
  :meth:`KernelArena.multi_target`) run a **faithful simulation** of the
  dict loop over the CSR arrays -- same heap entries (index order is id
  order), same relaxation order, same termination tests -- so even the
  *tentative* frontier labels left behind by an early stop match.
* Full sweeps (:meth:`KernelArena.sssp`) may use scipy for the distance
  labels (relaxation order cannot change the converged float values) and
  then reconstruct predecessors and discovery order from the settle order,
  which under strictly positive weights provably equals sorting reachable
  nodes by ``(distance, node id)``.  Graphs with a non-positive edge weight
  fall back to the faithful loop (see
  :attr:`~repro.network.csr.CSRGraph.has_nonpositive_weight`).

A :class:`KernelArena` binds the reusable parts -- the accelerator views of
the CSR arrays, scratch key buffers -- to one snapshot; arenas are cached
per thread (:func:`arena_for`) so the hundreds of border-source sweeps of a
pre-computation, or the per-query masked searches of concurrent clients,
never rebuild them.
"""

from __future__ import annotations

import heapq
import threading
import weakref
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.csr import CSRGraph

__all__ = [
    "HAVE_ACCELERATOR",
    "KernelArena",
    "KernelResult",
    "arena_for",
    "masked_shortest_path",
    "many_to_many",
    "point_to_point",
    "sssp",
]

try:  # pragma: no cover - exercised implicitly by whichever env runs the suite
    import numpy as _np
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    HAVE_ACCELERATOR = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_ACCELERATOR = False

#: Module-level switch (primarily for tests and A/B benchmarks): set to
#: ``False`` to force every search onto the faithful pure-Python loop even
#: when scipy is installed.
USE_ACCELERATOR = True

_INF = float("inf")

#: Batched scipy sweeps are chunked so the dense ``sources x nodes``
#: distance matrix stays bounded (~8 MB of float64 per chunk at 1M nodes).
_BATCH_CHUNK = 64


def numpy_or_none():
    """The ``numpy`` module when the accelerator is importable *and* enabled.

    Call sites with a vectorized fast path (e.g. ArcFlag's flag
    construction) use this so their gating stays consistent with the
    kernel's own -- flipping :data:`USE_ACCELERATOR` affects both.
    """
    return _np if (HAVE_ACCELERATOR and USE_ACCELERATOR) else None


class KernelResult:
    """One search's labels, indexed by node *index* (see ``csr.ids``).

    ``dist``/``pred`` cover every node (unreached entries are ``inf`` /
    ``-1``); ``order`` lists the discovered indexes in the dict
    implementation's ``distances`` insertion order and is ``None`` for
    distance-only sweeps (where no consumer observes ordering).  The
    buffers are owned by the result -- arenas never reclaim them.

    Accelerated point-to-point results are *deferred*: the compiled sweep
    answers the query (distance, settled count) immediately, and the
    truncated replay reconstructing labels/predecessors/discovery order
    runs once, on the first read of ``dist``/``pred``/``order``.  Callers
    that never walk the tree -- distance probes, existence checks -- skip
    the reconstruction entirely; callers that do observe byte-for-byte the
    same buffers as before.
    """

    __slots__ = (
        "csr",
        "source",
        "source_index",
        "_dist",
        "_dist_np",
        "_pred",
        "_order",
        "settled",
        "_reached",
        "_finish",
        "_probe",
    )

    def __init__(
        self,
        csr: CSRGraph,
        source: int,
        dist: Optional[List[float]],
        pred: Optional[List[int]],
        order: Optional[List[int]],
        settled: int,
        dist_np=None,
        finish=None,
        probe=None,
    ) -> None:
        self.csr = csr
        self.source = source
        self.source_index = csr.index_of[source]
        self._dist = dist
        self._dist_np = dist_np
        self._pred = pred
        self._order = order
        self.settled = settled
        self._reached: Optional[List[int]] = None
        #: Deferred reconstruction: a zero-argument callable returning
        #: ``(dist_np, pred, order)``, run at most once.
        self._finish = finish
        #: Fast distance probes for deferred point-to-point results:
        #: ``(dist_full, target_dist, target_index)`` from the converged
        #: sweep -- settled nodes (those the early-terminating loop locked
        #: in) can be answered without running the reconstruction.
        self._probe = probe

    def _materialize(self) -> None:
        finish = self._finish
        self._finish = None
        self._probe = None
        self._dist_np, self._pred, self._order = finish()

    # -- reads ---------------------------------------------------------
    @property
    def dist_np(self):
        """The labels as a float64 vector when the sweep came off the
        accelerator (``None`` on the faithful loop) -- vectorized
        consumers index it without re-boxing the list."""
        if self._dist_np is None and self._finish is not None:
            self._materialize()
        return self._dist_np

    @property
    def pred(self) -> Optional[List[int]]:
        if self._pred is None and self._finish is not None:
            self._materialize()
        return self._pred

    @property
    def order(self) -> Optional[List[int]]:
        if self._order is None and self._finish is not None:
            self._materialize()
        return self._order

    @property
    def dist(self) -> List[float]:
        """The labels as a plain list, boxed lazily from ``dist_np``.

        Accelerated sweeps carry their labels as a float64 vector;
        vectorized consumers (ArcFlag's flag construction) never pay for
        the list, while list consumers box it once on first access.
        """
        if self._dist is None:
            self._dist = self.dist_np.tolist()
        return self._dist

    def distance_to(self, node_id: int) -> float:
        """Distance label of ``node_id`` (``inf`` when unreached/unknown)."""
        index = self.csr.index_of.get(node_id)
        if index is None:
            return _INF
        if self._finish is not None and self._probe is not None:
            dist_full, target_dist, target_index = self._probe
            d = dist_full[index]
            # Settled exactly when (d, index) <= (target_dist, target_index)
            # in the heap's (distance, index) settle order; those labels are
            # converged, so the sweep's value is the faithful loop's value.
            if d < target_dist or (d == target_dist and index <= target_index):
                return float(d)
            # Frontier or unreached: the faithful loop leaves a *tentative*
            # label here, which only the reconstruction knows.
        return self.dist[index]

    def reached_indexes(self) -> List[int]:
        """Discovered node indexes (discovery order when tracked)."""
        if self.order is not None:
            return self.order
        if self._reached is None:
            if self.dist_np is not None:
                self._reached = _np.flatnonzero(_np.isfinite(self.dist_np)).tolist()
            else:
                dist = self.dist
                self._reached = [i for i in range(len(dist)) if dist[i] != _INF]
        return self._reached

    def distances_dict(self) -> Dict[int, float]:
        """``{node_id: distance}`` over discovered nodes.

        With ``order`` tracked the key order is the dict implementation's
        insertion order; distance-only results use index (= id) order --
        equal as a mapping, only iteration order differs.
        """
        ids = self.csr.ids
        dist = self.dist
        return {ids[i]: dist[i] for i in self.reached_indexes()}

    def predecessors_dict(self) -> Dict[int, Optional[int]]:
        """``{node_id: predecessor_id}`` (source maps to ``None``)."""
        if self.pred is None or self.order is None:
            raise ValueError("predecessors were not requested for this search")
        ids = self.csr.ids
        pred = self.pred
        source_index = self.source_index
        return {
            ids[i]: None if i == source_index else ids[pred[i]] for i in self.order
        }

    def path_to(self, node_id: int) -> List[int]:
        """Node-id path from the source (empty when unreached)."""
        if self.pred is None:
            raise ValueError("predecessors were not requested for this search")
        index = self.csr.index_of.get(node_id)
        if index is None or self.dist[index] == _INF:
            return []
        pred = self.pred
        path = [index]
        current = index
        source_index = self.source_index
        while current != source_index:
            current = pred[current]
            if current < 0:
                return []
            path.append(current)
        ids = self.csr.ids
        return [ids[i] for i in reversed(path)]


class _Accel:
    """Cached numpy/scipy views of one snapshot's arrays.

    The scipy matrices reference the CSR weight buffers directly (``numpy``
    ``frombuffer`` views), so :meth:`CSRGraph.patch_weight` keeps them
    fresh for free; the integer structure (offsets/targets, edge source and
    adjacency-position arrays used by the reconstruction) never changes for
    a frozen snapshot.
    """

    __slots__ = (
        "fwd_matrix",
        "rev_matrix",
        "fwd_edges",
        "rev_edges",
        "fwd_transpose",
        "rev_transpose",
    )

    def __init__(self, csr: CSRGraph) -> None:
        n = csr.num_nodes
        self.fwd_matrix = self._matrix(csr.fwd_offsets, csr.fwd_targets, csr.fwd_weights, n)
        self.rev_matrix = self._matrix(csr.rev_offsets, csr.rev_targets, csr.rev_weights, n)
        self.fwd_edges = None  # built lazily: only predecessor sweeps need them
        self.rev_edges = None
        self.fwd_transpose = None  # lazily: head-grouped permutation of fwd_edges
        self.rev_transpose = None

    @staticmethod
    def _matrix(offsets: array, targets: array, weights: array, n):  # type: ignore[name-defined]
        indptr = _np.frombuffer(offsets, dtype=_np.int64).astype(_np.int32)
        if len(targets):
            indices = _np.frombuffer(targets, dtype=_np.int64).astype(_np.int32)
            data = _np.frombuffer(weights, dtype=_np.float64)
        else:
            indices = _np.empty(0, dtype=_np.int32)
            data = _np.empty(0, dtype=_np.float64)
        # scipy treats duplicate (row, col) entries as parallel edges, which
        # matches RoadNetwork's min-parallel-edge shortest path semantics.
        return _csr_matrix((data, indices, indptr), shape=(n, n))

    @staticmethod
    def _edge_arrays(offsets: array, targets: array, weights: array):  # type: ignore[name-defined]
        indptr = _np.frombuffer(offsets, dtype=_np.int64)
        degrees = _np.diff(indptr)
        e_src = _np.repeat(_np.arange(len(degrees), dtype=_np.int64), degrees)
        if len(targets):
            e_dst = _np.frombuffer(targets, dtype=_np.int64)
            e_w = _np.frombuffer(weights, dtype=_np.float64)
        else:
            e_dst = _np.empty(0, dtype=_np.int64)
            e_w = _np.empty(0, dtype=_np.float64)
        e_adjpos = _np.arange(len(e_src), dtype=_np.int64) - indptr[e_src]
        return e_src, e_dst, e_w, e_adjpos

    def edges(self, csr: CSRGraph, reverse: bool):
        if reverse:
            if self.rev_edges is None:
                self.rev_edges = self._edge_arrays(
                    csr.rev_offsets, csr.rev_targets, csr.rev_weights
                )
            return self.rev_edges
        if self.fwd_edges is None:
            self.fwd_edges = self._edge_arrays(
                csr.fwd_offsets, csr.fwd_targets, csr.fwd_weights
            )
        return self.fwd_edges

    def transpose(self, csr: CSRGraph, reverse: bool):
        """Head-grouped view of one direction's edge list.

        ``(perm, starts, counts)``: ``perm`` stably permutes the edge
        arrays so entries sharing a head node ``e_dst`` are contiguous,
        ``starts``/``counts`` delimit each head's run.  Per-head minima
        (discovery keys, predecessor keys, tentative labels) then reduce
        with one ``np.minimum.reduceat`` pass instead of the unbuffered
        ``np.minimum.at`` scatter, which dominated reconstruction time.
        """
        cached = self.rev_transpose if reverse else self.fwd_transpose
        if cached is not None:
            return cached
        _, e_dst, _, _ = self.edges(csr, reverse)
        n = csr.num_nodes
        perm = _np.argsort(e_dst, kind="stable")
        counts = _np.bincount(e_dst, minlength=n)
        starts = _np.zeros(n, dtype=_np.int64)
        _np.cumsum(counts[:-1], out=starts[1:])
        built = (perm, starts, counts)
        if reverse:
            self.rev_transpose = built
        else:
            self.fwd_transpose = built
        return built


def _segment_min(values, starts, counts, sentinel):
    """Per-group minimum over pre-permuted ``values`` (see ``transpose``).

    Groups are the half-open runs ``values[starts[i] : starts[i] +
    counts[i]]``; empty groups yield ``sentinel``.  ``reduceat`` reduces
    between *consecutive* indices, so empty groups cannot simply be passed
    through (an empty run would also truncate its predecessor's extent);
    instead only the non-empty groups' starts are handed to ``reduceat`` --
    consecutive non-empty starts delimit exactly one group because the runs
    are contiguous.
    """
    out = _np.full(len(starts), sentinel, dtype=values.dtype)
    if len(values) == 0:
        return out
    nonempty = _np.flatnonzero(counts > 0)
    if len(nonempty):
        out[nonempty] = _np.minimum.reduceat(values, starts[nonempty])
    return out


class KernelArena:
    """Reusable search state bound to one :class:`CSRGraph` snapshot.

    One arena serves any number of sequential searches; it is *not*
    thread-safe -- use :func:`arena_for` to get a per-thread instance.
    """

    def __init__(self, csr: CSRGraph) -> None:
        # Weak, because arenas are cached in a WeakKeyDictionary keyed by
        # the snapshot: a strong value->key reference would keep the entry
        # (and with it every buffer the arena exported) alive forever.
        # Callers necessarily hold the snapshot while searching, so the
        # dereference never dangles mid-use.
        self._csr_ref = weakref.ref(csr)
        self.num_nodes = csr.num_nodes

    @property
    def csr(self) -> CSRGraph:
        csr = self._csr_ref()
        if csr is None:  # pragma: no cover - caller dropped the snapshot
            raise ReferenceError("the arena's CSR snapshot has been collected")
        return csr

    # ------------------------------------------------------------------
    # Accelerator plumbing
    # ------------------------------------------------------------------
    def _accel(self) -> Optional[_Accel]:
        if not (HAVE_ACCELERATOR and USE_ACCELERATOR):
            return None
        accel = self.csr._accel
        if accel is None:
            accel = self.csr._accel = _Accel(self.csr)
        return accel

    # ------------------------------------------------------------------
    # Public searches
    # ------------------------------------------------------------------
    def sssp(
        self, source: int, need_predecessors: bool = True, reverse: bool = False
    ) -> KernelResult:
        """Full single-source sweep (no early termination).

        ``need_predecessors=False`` skips predecessor/discovery-order
        reconstruction -- the fastest path for the many consumers that only
        read distance labels.
        """
        source_index = self._source_index(source)
        accel = self._accel()
        if accel is None or (need_predecessors and self.csr.has_nonpositive_weight):
            if need_predecessors:
                return self._faithful(source_index, source, reverse=reverse)
            return self._faithful_distances(source_index, source, reverse=reverse)
        matrix = accel.rev_matrix if reverse else accel.fwd_matrix
        dist_np = _scipy_dijkstra(matrix, directed=True, indices=source_index)
        return self._from_accel(dist_np, source, source_index, need_predecessors, reverse)

    def point_to_point(
        self,
        source: int,
        target: int,
        allowed: Optional[Iterable[int]] = None,
        reverse: bool = False,
    ) -> KernelResult:
        """Early-terminating point-to-point search.

        ``allowed`` restricts the search to a node subset -- the relaxation
        skips any neighbor outside it, which is exactly equivalent to (and
        replaces) materializing the induced subgraph first, as the EB/NR
        clients used to.  Both endpoints must belong to the subset.

        Unmasked searches on positive-weight snapshots run the accelerated
        truncated-replay path (:meth:`_p2p_accel`); masked or
        non-positive-weight searches keep the faithful loop.
        """
        source_index = self._source_index(source)
        target_index = self.csr.index_of.get(target)
        if target_index is None:
            raise KeyError(f"unknown target node {target}")
        mask = None
        if allowed is not None:
            mask = bytearray(self.num_nodes)
            index_of = self.csr.index_of
            for node_id in allowed:
                mask[index_of[node_id]] = 1
            if not mask[source_index]:
                raise KeyError(f"source node {source} is outside the allowed set")
            if not mask[target_index]:
                raise KeyError(f"target node {target} is outside the allowed set")
        if (
            mask is None
            and not self.csr.has_nonpositive_weight
            and self._accel() is not None
        ):
            return self._p2p_accel(source, source_index, target_index, reverse)
        return self._faithful(
            source_index, source, target_index=target_index, mask=mask, reverse=reverse
        )

    def multi_target(
        self, source: int, targets: Iterable[int], reverse: bool = False
    ) -> KernelResult:
        """Search that stops once every (reachable) target is settled."""
        source_index = self._source_index(source)
        return self._faithful(
            source_index, source, remaining=set(targets), reverse=reverse
        )

    def search(
        self,
        source: int,
        target: Optional[int] = None,
        targets: Optional[Iterable[int]] = None,
        reverse: bool = False,
    ) -> KernelResult:
        """General search mirroring ``dijkstra_search``'s termination rules.

        ``target`` and ``targets`` may be combined, exactly like the dict
        reference loop: the search stops at whichever condition fires first.
        An unknown ``target`` never settles, so (as in the reference) it
        does not terminate anything by itself.
        """
        source_index = self._source_index(source)
        target_index = self.csr.index_of.get(target) if target is not None else None
        remaining = set(targets) if targets is not None else None
        if target_index is None and remaining is None:
            # No live termination condition: a full sweep, eligible for the
            # accelerated path.
            return self.sssp(source, reverse=reverse)
        if (
            remaining is None
            and target_index is not None
            and not self.csr.has_nonpositive_weight
            and self._accel() is not None
        ):
            return self._p2p_accel(source, source_index, target_index, reverse)
        return self._faithful(
            source_index,
            source,
            target_index=target_index,
            remaining=remaining,
            reverse=reverse,
        )

    def many_to_many(
        self,
        sources: Sequence[int],
        need_predecessors: bool = False,
        reverse: bool = False,
    ) -> List[KernelResult]:
        """Batched full sweeps, one per source, in source order.

        With the accelerator available the distance labels of up to
        ``_BATCH_CHUNK`` sources are computed by a single scipy call.
        """
        sources = list(sources)
        accel = self._accel()
        if accel is None or (need_predecessors and self.csr.has_nonpositive_weight):
            return [
                self.sssp(source, need_predecessors=need_predecessors, reverse=reverse)
                for source in sources
            ]
        index_of = self.csr.index_of
        matrix = accel.rev_matrix if reverse else accel.fwd_matrix
        results: List[KernelResult] = []
        for start in range(0, len(sources), _BATCH_CHUNK):
            chunk = sources[start : start + _BATCH_CHUNK]
            chunk_indexes = [self._source_index(source) for source in chunk]
            dist_block = _scipy_dijkstra(matrix, directed=True, indices=chunk_indexes)
            if len(chunk) == 1:
                dist_block = dist_block.reshape(1, -1)
            for row, source in enumerate(chunk):
                results.append(
                    self._from_accel(
                        dist_block[row],
                        source,
                        index_of[source],
                        need_predecessors,
                        reverse,
                    )
                )
        return results

    # ------------------------------------------------------------------
    # Accelerated full sweep: distances from scipy, exact reconstruction
    # ------------------------------------------------------------------
    def _from_accel(
        self,
        dist_np,
        source: int,
        source_index: int,
        need_predecessors: bool,
        reverse: bool,
    ) -> KernelResult:
        finite = _np.isfinite(dist_np)
        if not need_predecessors:
            settled = int(_np.count_nonzero(finite))
            return KernelResult(
                self.csr, source, None, None, None, settled, dist_np=dist_np
            )
        pred, order = self._reconstruct(dist_np, finite, source_index, reverse)
        return KernelResult(
            self.csr, source, None, pred, order, len(order), dist_np=dist_np
        )

    def _reconstruct(
        self, dist_np, finite, source_index: int, reverse: bool
    ) -> Tuple[List[int], List[int]]:
        """Predecessors and discovery order of the faithful heap replay.

        Under strictly positive weights the dict heap settles reachable
        nodes exactly in ``(distance, id)`` order.  Replaying relaxations in
        (settle order of the tail node, position within its adjacency list)
        order therefore reproduces, for every node, both its first
        discovery (first relaxation of any kind) and its final predecessor
        (first relaxation achieving the converged distance).  Both replays
        reduce to per-node minima of a combined ``rank * K + position`` key,
        computed vectorized over the edge arrays.
        """
        n = self.num_nodes
        accel = self.csr._accel
        e_src, e_dst, e_w, e_adjpos = accel.edges(self.csr, reverse)
        perm, starts, counts = accel.transpose(self.csr, reverse)
        reachable = _np.flatnonzero(finite)
        settle = reachable[_np.lexsort((reachable, dist_np[reachable]))]
        rank = _np.full(n, n, dtype=_np.int64)
        rank[settle] = _np.arange(len(settle), dtype=_np.int64)

        stride = len(e_src) + 1
        sentinel = (n + 1) * stride
        ekey = rank[e_src] * stride + e_adjpos
        valid = finite[e_src]

        # Discovery: first relaxation into each node, of any kind.
        discovery_key = _segment_min(
            _np.where(valid, ekey, sentinel)[perm], starts, counts, sentinel
        )
        others = reachable[reachable != source_index]
        order_tail = others[_np.argsort(discovery_key[others])]
        order = [source_index] + order_tail.tolist()

        # Predecessor: first relaxation achieving the converged distance.
        achieves = valid & (dist_np[e_src] + e_w == dist_np[e_dst])
        best_key = _segment_min(
            _np.where(achieves, ekey, sentinel)[perm], starts, counts, sentinel
        )
        chosen = achieves & (ekey == best_key[e_dst])
        pred_np = _np.full(n, -1, dtype=_np.int64)
        pred_np[e_dst[chosen]] = e_src[chosen]
        pred_np[source_index] = -1
        return pred_np.tolist(), order

    def _p2p_accel(
        self, source: int, source_index: int, target_index: int, reverse: bool
    ) -> KernelResult:
        """Accelerated exact point-to-point: full sweep + truncated replay.

        One compiled scipy sweep yields the converged labels; everything the
        early-terminating dict loop would have left behind is then derived
        from the settle order.  Under strictly positive weights the loop
        settles reachable nodes in ``(distance, index)`` order and stops
        *after popping the target, before relaxing its edges* -- so exactly
        the nodes ranked before the target act as relaxation tails.  Per
        node, the minimum ``d(tail) + w`` over those tails' edges is the
        tentative label at the break; the minimum ``(tail rank, adjacency
        position)`` key is its discovery; the first such key achieving the
        tentative label is its predecessor.  All three are per-head minima
        over the edge list -- one ``reduceat`` pass each -- making this
        bit-identical to :meth:`_faithful` including the tentative frontier
        labels it leaves behind.

        The replay itself is *deferred* (see :class:`KernelResult`): only
        the compiled sweep and an O(n) rank count run per query, so
        distance probes -- the dominant p2p consumer -- never pay for tree
        reconstruction they do not read.
        """
        csr = self.csr
        accel = csr._accel
        matrix = accel.rev_matrix if reverse else accel.fwd_matrix
        dist_full = _scipy_dijkstra(matrix, directed=True, indices=source_index)
        target_dist = dist_full[target_index]
        if not _np.isfinite(target_dist):
            # The loop would exhaust the reachable set: a full sweep.
            return self._from_accel(dist_full, source, source_index, True, reverse)

        # The target's settle rank, without sorting: the heap settles
        # reachable nodes in (distance, index) order, so the rank is the
        # count of nodes strictly ahead in that order (unreached entries
        # are ``inf`` and never compare ahead of a finite label).
        target_rank = int(
            _np.count_nonzero(dist_full < target_dist)
            + _np.count_nonzero(dist_full[:target_index] == target_dist)
        )
        n = self.num_nodes

        def finish():
            finite = _np.isfinite(dist_full)
            e_src, e_dst, e_w, e_adjpos = accel.edges(csr, reverse)
            perm, starts, counts = accel.transpose(csr, reverse)
            reachable = _np.flatnonzero(finite)
            settle = reachable[_np.lexsort((reachable, dist_full[reachable]))]
            rank = _np.full(n, n, dtype=_np.int64)
            rank[settle] = _np.arange(len(settle), dtype=_np.int64)

            valid = rank[e_src] < target_rank
            relax = dist_full[e_src] + e_w

            # Tentative labels: minimum relaxation into each node.
            tentative = _segment_min(
                _np.where(valid, relax, _INF)[perm], starts, counts, _INF
            )
            tentative[source_index] = 0.0

            stride = len(e_src) + 1
            sentinel = (n + 1) * stride
            ekey = rank[e_src] * stride + e_adjpos
            discovery_key = _segment_min(
                _np.where(valid, ekey, sentinel)[perm], starts, counts, sentinel
            )
            discovery_key[source_index] = sentinel
            discovered = _np.flatnonzero(discovery_key < sentinel)
            order = [source_index] + discovered[
                _np.argsort(discovery_key[discovered])
            ].tolist()

            achieves = valid & (relax == tentative[e_dst])
            best_key = _segment_min(
                _np.where(achieves, ekey, sentinel)[perm], starts, counts, sentinel
            )
            chosen = achieves & (ekey == best_key[e_dst])
            pred_np = _np.full(n, -1, dtype=_np.int64)
            pred_np[e_dst[chosen]] = e_src[chosen]
            pred_np[source_index] = -1
            return tentative, pred_np.tolist(), order

        return KernelResult(
            csr,
            source,
            None,
            None,
            None,
            target_rank + 1,
            finish=finish,
            probe=(dist_full, target_dist, target_index),
        )

    # ------------------------------------------------------------------
    # Faithful simulation of the dict Dijkstra over the flat arrays
    # ------------------------------------------------------------------
    def _source_index(self, source: int) -> int:
        index = self.csr.index_of.get(source)
        if index is None:
            raise KeyError(f"unknown source node {source}")
        return index

    def _faithful_distances(
        self, source_index: int, source: int, reverse: bool = False
    ) -> KernelResult:
        """Distance-only full sweep: the faithful loop minus tree tracking.

        Settled counts still match the dict implementation's; predecessor
        and discovery-order buffers are simply not produced (the result
        raises if they are read), which is what the distance-only consumers
        -- landmark vectors, ArcFlag trees, fleet ground truth -- want.
        """
        csr = self.csr
        adjacency = csr.rev_adj if reverse else csr.fwd_adj
        dist = [_INF] * self.num_nodes
        dist[source_index] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        pop = heapq.heappop
        push = heapq.heappush
        settled = 0
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            settled += 1
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
        return KernelResult(csr, source, dist, None, None, settled)

    def _faithful(
        self,
        source_index: int,
        source: int,
        target_index: Optional[int] = None,
        remaining: Optional[set] = None,
        mask: Optional[bytearray] = None,
        reverse: bool = False,
    ) -> KernelResult:
        csr = self.csr
        adjacency = csr.rev_adj if reverse else csr.fwd_adj
        ids = csr.ids
        dist = [_INF] * self.num_nodes
        pred = [-1] * self.num_nodes
        order = [source_index]
        dist[source_index] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, source_index)]
        pop = heapq.heappop
        push = heapq.heappush
        append = order.append
        settled = 0
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                # A better entry for u already settled it (entries per node
                # carry strictly decreasing labels, so this test is exactly
                # the dict implementation's settled-set membership probe).
                continue
            settled += 1
            if u == target_index:
                break
            if remaining is not None:
                remaining.discard(ids[u])
                if not remaining:
                    break
            if mask is None:
                for v, w in adjacency[u]:
                    nd = d + w
                    if nd < dist[v]:
                        if dist[v] == _INF:
                            append(v)
                        dist[v] = nd
                        pred[v] = u
                        push(heap, (nd, v))
            else:
                for v, w in adjacency[u]:
                    if not mask[v]:
                        continue
                    nd = d + w
                    if nd < dist[v]:
                        if dist[v] == _INF:
                            append(v)
                        dist[v] = nd
                        pred[v] = u
                        push(heap, (nd, v))
        return KernelResult(csr, source, dist, pred, order, settled)


# ----------------------------------------------------------------------
# Per-thread arena registry
# ----------------------------------------------------------------------
_thread_arenas = threading.local()


def arena_for(csr: CSRGraph) -> KernelArena:
    """The calling thread's arena for ``csr`` (created on first use).

    Arenas hold no cross-search mutable state beyond caches, but handing
    each thread its own keeps the kernel safe under the engine's
    thread-pool batch runner without any locking.
    """
    registry = getattr(_thread_arenas, "registry", None)
    if registry is None:
        registry = _thread_arenas.registry = weakref.WeakKeyDictionary()
    arena = registry.get(csr)
    if arena is None:
        arena = registry[csr] = KernelArena(csr)
    return arena


# ----------------------------------------------------------------------
# Network-level conveniences
# ----------------------------------------------------------------------
def _network_arena(network) -> Optional[KernelArena]:
    csr = network.csr_snapshot()
    return None if csr is None else arena_for(csr)


def sssp(network, source: int, need_predecessors: bool = True, reverse: bool = False):
    """Full single-source sweep over ``network``'s snapshot (built if absent)."""
    return arena_for(network.ensure_csr()).sssp(
        source, need_predecessors=need_predecessors, reverse=reverse
    )


def point_to_point(network, source: int, target: int):
    """Early-terminating point-to-point search over the network snapshot."""
    return arena_for(network.ensure_csr()).point_to_point(source, target)


def many_to_many(
    network, sources: Sequence[int], need_predecessors: bool = False, reverse: bool = False
):
    """Batched full sweeps over the network snapshot, in source order."""
    return arena_for(network.ensure_csr()).many_to_many(
        sources, need_predecessors=need_predecessors, reverse=reverse
    )


def masked_shortest_path(network, source: int, target: int, allowed: Iterable[int]):
    """Point-to-point search restricted to ``allowed``, as a ``PathResult``.

    Returns ``None`` when the network has no fresh snapshot (the caller
    falls back to the reference subgraph search); otherwise the result --
    distance, path, settled count -- is bit-identical to running
    :func:`~repro.network.algorithms.dijkstra.shortest_path` on
    ``network.subgraph(allowed)``.
    """
    from repro.network.algorithms.paths import PathResult

    arena = _network_arena(network)
    if arena is None:
        return None
    result = arena.point_to_point(source, target, allowed=allowed)
    distance = result.distance_to(target)
    path = result.path_to(target) if distance != _INF else []
    return PathResult(
        source=source,
        target=target,
        distance=distance,
        path=path,
        settled=result.settled,
    )
