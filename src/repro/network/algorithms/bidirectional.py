"""Bidirectional Dijkstra.

Not part of the paper's method set, but a useful ground-truth cross-check for
the property-based tests (two independent implementations must agree) and a
faster oracle when validating EB/NR answers on larger networks.
"""

from __future__ import annotations

import heapq
from typing import Dict, Optional

from repro.network.graph import RoadNetwork
from repro.network.algorithms.paths import INFINITY, PathResult, reconstruct_path

__all__ = ["bidirectional_dijkstra"]


def bidirectional_dijkstra(network: RoadNetwork, source: int, target: int) -> PathResult:
    """Shortest path via simultaneous forward and backward Dijkstra."""
    if source not in network:
        raise KeyError(f"unknown source node {source}")
    if target not in network:
        raise KeyError(f"unknown target node {target}")
    if source == target:
        return PathResult(source=source, target=target, distance=0.0, path=[source])

    forward_adj = network.adjacency()
    backward_adj = network.reverse_adjacency()

    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    pred_f: Dict[int, Optional[int]] = {source: None}
    pred_b: Dict[int, Optional[int]] = {target: None}
    settled_f: set = set()
    settled_b: set = set()
    heap_f = [(0.0, source)]
    heap_b = [(0.0, target)]

    best = INFINITY
    meeting_node: Optional[int] = None
    settled_count = 0

    while heap_f and heap_b:
        # The standard stopping criterion: once the sum of the two frontier
        # minima exceeds the best connection found, the best is optimal.
        if heap_f[0][0] + heap_b[0][0] >= best:
            break

        for heap, dist_this, dist_other, pred, settled, adjacency in (
            (heap_f, dist_f, dist_b, pred_f, settled_f, forward_adj),
            (heap_b, dist_b, dist_f, pred_b, settled_b, backward_adj),
        ):
            if not heap:
                continue
            dist, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            settled_count += 1
            for neighbor, weight in adjacency[node]:
                candidate = dist + weight
                if candidate < dist_this.get(neighbor, INFINITY):
                    dist_this[neighbor] = candidate
                    pred[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
                if neighbor in dist_other:
                    total = candidate + dist_other[neighbor]
                    if total < best:
                        best = total
                        meeting_node = neighbor
            if node in dist_other and dist + dist_other[node] < best:
                best = dist + dist_other[node]
                meeting_node = node

    if meeting_node is None or best == INFINITY:
        return PathResult(source=source, target=target, distance=INFINITY, settled=settled_count)

    forward_part = reconstruct_path(pred_f, source, meeting_node)
    backward_part = reconstruct_path(pred_b, target, meeting_node)
    path = forward_part + backward_part[::-1][1:]
    return PathResult(
        source=source,
        target=target,
        distance=best,
        path=path,
        settled=settled_count,
    )
