"""A* search (paper Section 2.1).

A* needs an admissible lower bound ``LB(v, target)`` on the remaining graph
distance.  The paper assumes general networks where no a-priori bound exists,
so plain A* is only usable together with the Landmark index, which derives
bounds from pre-computed landmark distance vectors
(:mod:`repro.index.landmark`).
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Optional, Set

from repro.network.graph import RoadNetwork
from repro.network.algorithms.paths import INFINITY, PathResult, reconstruct_path

__all__ = ["astar_search"]

LowerBound = Callable[[int, int], float]


def astar_search(
    network: RoadNetwork,
    source: int,
    target: int,
    lower_bound: Optional[LowerBound] = None,
    edge_filter: Optional[Callable[[int, int], bool]] = None,
) -> PathResult:
    """A* from ``source`` to ``target``.

    Parameters
    ----------
    lower_bound:
        ``lower_bound(v, target)`` must never exceed the true graph distance
        from ``v`` to ``target``; passing ``None`` degenerates to Dijkstra.
    edge_filter:
        Optional predicate ``f(u, v)``; edges for which it returns ``False``
        are ignored.  ArcFlag's pruned search reuses A* through this hook.
    """
    if source not in network:
        raise KeyError(f"unknown source node {source}")
    if target not in network:
        raise KeyError(f"unknown target node {target}")
    heuristic = lower_bound if lower_bound is not None else (lambda _v, _t: 0.0)
    adjacency = network.adjacency()

    distances: Dict[int, float] = {source: 0.0}
    predecessors: Dict[int, Optional[int]] = {source: None}
    settled: Set[int] = set()
    heap = [(heuristic(source, target), source)]
    settled_count = 0

    while heap:
        _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        settled_count += 1
        if node == target:
            break
        node_distance = distances[node]
        for neighbor, weight in adjacency[node]:
            if edge_filter is not None and not edge_filter(node, neighbor):
                continue
            candidate = node_distance + weight
            if candidate < distances.get(neighbor, INFINITY):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heapq.heappush(heap, (candidate + heuristic(neighbor, target), neighbor))

    distance = distances.get(target, INFINITY)
    path = reconstruct_path(predecessors, source, target) if distance != INFINITY else []
    return PathResult(
        source=source,
        target=target,
        distance=distance,
        path=path,
        settled=settled_count,
    )
