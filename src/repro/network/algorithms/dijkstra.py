"""Dijkstra's algorithm (paper Section 2.1, "without pre-computation").

Three entry points cover the needs of the broadcast schemes:

* :func:`shortest_path` -- point-to-point query with early termination,
  used by every air-index client after it has received its regions.
* :func:`dijkstra_distances` -- single-source distances (optionally with
  predecessors), used by Landmark pre-computation and by tests as ground
  truth.
* :func:`dijkstra_multi_target` -- single-source search that stops once a
  given set of targets is settled, used when pre-computing border-to-border
  shortest paths for EB/NR/HiTi.

Dispatch: when the network carries a fresh CSR snapshot
(:meth:`~repro.network.graph.RoadNetwork.csr_snapshot`), every entry point
routes through the array kernel (:mod:`repro.network.algorithms.kernel`),
whose results are bit-identical to the dict implementation below --
distances, predecessors, settled counts, and even the ``distances`` dict's
insertion order.  The dict implementation remains the reference fallback
(and the ground truth the kernel's property suite compares against).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.network.algorithms import kernel
from repro.network.graph import RoadNetwork
from repro.network.algorithms.paths import INFINITY, PathResult, reconstruct_path

__all__ = [
    "DijkstraResult",
    "dijkstra_distances",
    "dijkstra_multi_target",
    "dijkstra_search",
    "shortest_path",
    "shortest_path_distance",
]


@dataclass
class DijkstraResult:
    """Distances and predecessors produced by a single-source search."""

    source: int
    distances: Dict[int, float] = field(default_factory=dict)
    predecessors: Dict[int, Optional[int]] = field(default_factory=dict)
    settled: int = 0

    def distance_to(self, target: int) -> float:
        """Distance to ``target`` or ``inf`` when unreached."""
        return self.distances.get(target, INFINITY)

    def path_to(self, target: int) -> list:
        """Shortest path node sequence to ``target`` (empty if unreached)."""
        return reconstruct_path(self.predecessors, self.source, target)


def dijkstra_search(
    network: RoadNetwork,
    source: int,
    target: Optional[int] = None,
    targets: Optional[Set[int]] = None,
    reverse: bool = False,
) -> DijkstraResult:
    """Run Dijkstra from ``source``.

    Parameters
    ----------
    target:
        Stop as soon as this node is settled (point-to-point query).
    targets:
        Stop as soon as *all* of these nodes are settled (multi-target
        pre-computation).  Unreachable targets simply remain at ``inf``.
    reverse:
        Search over incoming instead of outgoing edges (distances *to*
        ``source``), needed by Landmark pre-computation on directed graphs.
    """
    if source not in network:
        raise KeyError(f"unknown source node {source}")
    snapshot = network.csr_snapshot()
    if snapshot is not None:
        return _kernel_search(snapshot, source, target, targets, reverse)
    adjacency = network.reverse_adjacency() if reverse else network.adjacency()

    distances: Dict[int, float] = {source: 0.0}
    predecessors: Dict[int, Optional[int]] = {source: None}
    settled: Set[int] = set()
    remaining = set(targets) if targets is not None else None
    heap = [(0.0, source)]
    settled_count = 0

    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        settled_count += 1
        if target is not None and node == target:
            break
        if remaining is not None:
            remaining.discard(node)
            if not remaining:
                break
        for neighbor, weight in adjacency[node]:
            candidate = dist + weight
            if candidate < distances.get(neighbor, INFINITY):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))

    return DijkstraResult(
        source=source,
        distances=distances,
        predecessors=predecessors,
        settled=settled_count,
    )


def _kernel_search(
    snapshot,
    source: int,
    target: Optional[int],
    targets: Optional[Set[int]],
    reverse: bool,
) -> DijkstraResult:
    """Run the equivalent array-kernel search and materialize the result.

    The kernel tracks the discovery order, so the materialized ``distances``
    and ``predecessors`` dicts reproduce the dict implementation's key
    insertion order as well as its values -- consumers sensitive to dict
    iteration order (e.g. SPQ's majority-color vote) see no difference.
    """
    arena = kernel.arena_for(snapshot)
    if target is None and targets is None:
        result = arena.sssp(source, need_predecessors=True, reverse=reverse)
    else:
        # arena.search honors target and targets together (and treats an
        # unknown target as never settling), exactly like the loop below.
        result = arena.search(source, target=target, targets=targets, reverse=reverse)
    return DijkstraResult(
        source=source,
        distances=result.distances_dict(),
        predecessors=result.predecessors_dict(),
        settled=result.settled,
    )


def dijkstra_distances(
    network: RoadNetwork, source: int, reverse: bool = False
) -> DijkstraResult:
    """Full single-source Dijkstra (no early termination)."""
    return dijkstra_search(network, source, reverse=reverse)


def dijkstra_multi_target(
    network: RoadNetwork, source: int, targets: Iterable[int], reverse: bool = False
) -> DijkstraResult:
    """Dijkstra from ``source`` that stops once every target is settled."""
    return dijkstra_search(network, source, targets=set(targets), reverse=reverse)


def shortest_path(network: RoadNetwork, source: int, target: int) -> PathResult:
    """Point-to-point shortest path with early termination."""
    if target not in network:
        raise KeyError(f"unknown target node {target}")
    result = dijkstra_search(network, source, target=target)
    distance = result.distance_to(target)
    path = result.path_to(target) if distance != INFINITY else []
    return PathResult(
        source=source,
        target=target,
        distance=distance,
        path=path,
        settled=result.settled,
    )


def shortest_path_distance(network: RoadNetwork, source: int, target: int) -> float:
    """Shortest path distance only (``inf`` when unreachable)."""
    return shortest_path(network, source, target).distance
