"""Shortest path algorithms on :class:`~repro.network.graph.RoadNetwork`."""

from repro.network.algorithms.dijkstra import (
    DijkstraResult,
    dijkstra_distances,
    dijkstra_multi_target,
    dijkstra_search,
    shortest_path,
    shortest_path_distance,
)
from repro.network.algorithms.astar import astar_search
from repro.network.algorithms.bidirectional import bidirectional_dijkstra
from repro.network.algorithms.kernel import (
    KernelArena,
    KernelResult,
    arena_for,
    masked_shortest_path,
)
from repro.network.algorithms.paths import (
    PathResult,
    path_cost,
    reconstruct_path,
    validate_path,
)

__all__ = [
    "DijkstraResult",
    "KernelArena",
    "KernelResult",
    "PathResult",
    "arena_for",
    "astar_search",
    "bidirectional_dijkstra",
    "dijkstra_distances",
    "masked_shortest_path",
    "dijkstra_multi_target",
    "dijkstra_search",
    "path_cost",
    "reconstruct_path",
    "shortest_path",
    "shortest_path_distance",
    "validate_path",
]
