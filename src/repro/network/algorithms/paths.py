"""Path reconstruction and validation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.graph import RoadNetwork

__all__ = ["PathResult", "reconstruct_path", "path_cost", "validate_path"]

#: Sentinel distance for unreachable targets.
INFINITY = float("inf")


@dataclass
class PathResult:
    """The outcome of a point-to-point shortest path computation.

    Attributes
    ----------
    source, target:
        Query endpoints.
    distance:
        Shortest path distance, or ``inf`` when the target is unreachable.
    path:
        Node sequence from source to target (empty when unreachable).
    settled:
        Number of nodes settled (popped) by the search; a proxy for the
        client-side CPU effort the paper reports.
    """

    source: int
    target: int
    distance: float
    path: List[int] = field(default_factory=list)
    settled: int = 0

    @property
    def found(self) -> bool:
        """``True`` when a finite-distance path was found."""
        return self.distance != INFINITY

    def __len__(self) -> int:
        return len(self.path)


def reconstruct_path(predecessors: Dict[int, Optional[int]], source: int, target: int) -> List[int]:
    """Trace ``predecessors`` backwards from ``target`` to ``source``.

    Returns an empty list when no predecessor chain connects the two.
    """
    if target not in predecessors:
        return []
    path = [target]
    current = target
    while current != source:
        previous = predecessors.get(current)
        if previous is None:
            return []
        path.append(previous)
        current = previous
        if len(path) > len(predecessors) + 1:
            raise ValueError("predecessor map contains a cycle")
    path.reverse()
    return path


def path_cost(network: RoadNetwork, path: List[int]) -> float:
    """Sum of edge weights along ``path`` (0 for empty / single-node paths)."""
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += network.edge_weight(a, b)
    return total


def validate_path(network: RoadNetwork, path: List[int]) -> bool:
    """Return ``True`` if every consecutive pair of ``path`` is an edge."""
    return all(network.has_edge(a, b) for a, b in zip(path, path[1:]))
