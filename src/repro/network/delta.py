"""Edge-weight update records and the network's pending-change delta.

A live road network is not static: congestion and closures change edge
costs continuously.  :class:`EdgeUpdate` is the *request* unit a dynamic
workload emits (set edge ``source -> target`` to ``weight``);
:class:`WeightChange` is the *applied* record the network keeps (old and new
weight, which the incremental rebuilds need to decide what a change could
have affected); :class:`NetworkDelta` is the coalesced set of pending
changes a :class:`~repro.network.graph.RoadNetwork` accumulates between two
:meth:`~repro.engine.system.AirSystem.refresh` calls.

Changes are coalesced per directed edge: applying ``w0 -> w1 -> w2`` leaves
one record ``w0 -> w2``, and applying ``w0 -> w1 -> w0`` leaves none (the
edge is back where the last refresh saw it).  This bounds the delta by the
number of *distinct* touched edges, not by the stream length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

__all__ = ["EdgeUpdate", "WeightChange", "NetworkDelta"]


@dataclass(frozen=True)
class EdgeUpdate:
    """One requested edge-weight update: set ``source -> target`` to ``weight``."""

    source: int
    target: int
    weight: float


@dataclass(frozen=True)
class WeightChange:
    """One applied edge-weight change, with both the old and the new weight.

    The old weight is what makes incremental rebuilds sound: whether a
    shortest-path tree rooted at some node can be affected by the change is
    decided by comparing cached distances against *both* weights (see
    :meth:`repro.air.border_paths.BorderPathPrecomputation.affected_sources`).
    """

    source: int
    target: int
    old_weight: float
    new_weight: float

    @property
    def is_noop(self) -> bool:
        """``True`` when the change leaves the weight where it was."""
        return self.old_weight == self.new_weight


@dataclass(frozen=True)
class NetworkDelta:
    """Everything that changed on a network since its delta was last cleared.

    Attributes
    ----------
    changes:
        Applied weight changes, coalesced per directed edge (first old
        weight, last new weight), in first-touch order.
    structural:
        ``True`` when a node or edge was added or removed.  Structural
        changes can move partition boundaries and change segment layouts,
        so every scheme falls back to a full rebuild.
    dirty_nodes:
        Endpoints of every changed edge (plus any added node).  Schemes map
        these onto their own partitionings via :meth:`dirty_regions`.
    """

    changes: Tuple[WeightChange, ...] = ()
    structural: bool = False
    dirty_nodes: FrozenSet[int] = frozenset()

    @property
    def empty(self) -> bool:
        """``True`` when nothing changed since the last refresh."""
        return not self.changes and not self.structural and not self.dirty_nodes

    def dirty_regions(self, partitioning) -> Set[int]:
        """The per-partition dirty set: regions containing a dirty node.

        ``partitioning`` is any object with a ``region_of(node_id)`` method
        (duck-typed so this module never imports the partitioning layer).
        """
        return {partitioning.region_of(node) for node in self.dirty_nodes}
