"""Streaming importers: DIMACS ``.gr``/``.co`` and edge-list CSV -> columnar.

Both importers parse line by line, validate every row as it arrives, and
push fixed-size batches into a :class:`~.columnar.ColumnarWriter` -- the
transient footprint is O(chunk) python objects plus O(V) numpy scalars for
the node id/coordinate columns (which the CSR build needs whole anyway);
the edge list, which dominates continental inputs, is never resident.

Validation failures raise :class:`IngestError`, a ``ValueError`` whose
message starts with ``{path}:{line}`` so a bad row in a multi-gigabyte
download is directly addressable.  Checked per row:

* duplicate node ids (coordinate files and node CSVs),
* dangling endpoints (edges naming nodes outside the declared node set),
* non-positive, NaN or infinite weights (the broadcast schemes and the
  accelerated kernel both assume strictly positive travel costs),
* NaN or infinite coordinates.

DIMACS follows the 9th DIMACS Implementation Challenge conventions:
``p sp <n> <m>`` then ``a <u> <v> <w>`` arcs in ``.gr``, ``v <id> <x> <y>``
lines in ``.co``, node ids dense in ``1..n``.  The CSV form is positional:
``source,target,weight`` rows (node CSVs: ``id,x,y``), optional header
line, configurable delimiter.
"""

from __future__ import annotations

import csv
import math
import os
import pathlib
from typing import Iterator, List, Optional, Tuple, Union

from repro.network.ingest.columnar import (
    DEFAULT_CHUNK_ROWS,
    ColumnarEdgeTable,
    ColumnarWriter,
)

__all__ = ["IngestError", "import_dimacs", "import_csv"]

PathLike = Union[str, os.PathLike]


class IngestError(ValueError):
    """A malformed or invalid input row, located as ``{path}:{line}``."""

    def __init__(self, path: PathLike, line: Optional[int], message: str) -> None:
        location = f"{path}:{line}" if line is not None else str(path)
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.line = line


def _numpy():
    from repro.network.ingest.columnar import _numpy as _np

    return _np()


def _check_weight(path: PathLike, line: int, weight: float) -> float:
    if not math.isfinite(weight):
        raise IngestError(path, line, f"weight {weight!r} is not finite")
    if weight <= 0.0:
        raise IngestError(
            path, line, f"weight {weight!r} is not positive (travel costs must be > 0)"
        )
    return weight


def _check_coordinate(path: PathLike, line: int, value: float, axis: str) -> float:
    if not math.isfinite(value):
        raise IngestError(path, line, f"{axis} coordinate {value!r} is not finite")
    return value


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def _parse_co(path: PathLike, num_nodes: int):
    """Parse a ``.co`` coordinate file into dense ``x``/``y`` arrays."""
    np = _numpy()
    xs = np.zeros(num_nodes, dtype=np.float64)
    ys = np.zeros(num_nodes, dtype=np.float64)
    seen = np.zeros(num_nodes + 1, dtype=bool)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] == "c":
                continue
            fields = line.split()
            if fields[0] == "p":
                try:
                    declared = int(fields[-1])
                except ValueError:
                    raise IngestError(path, line_number, f"malformed problem line {line!r}")
                if declared != num_nodes:
                    raise IngestError(
                        path,
                        line_number,
                        f"coordinate file declares {declared} nodes but the "
                        f"graph file declares {num_nodes}",
                    )
                continue
            if fields[0] != "v" or len(fields) != 4:
                raise IngestError(path, line_number, f"unrecognized line {line!r}")
            try:
                nid = int(fields[1])
                x = float(fields[2])
                y = float(fields[3])
            except ValueError:
                raise IngestError(path, line_number, f"malformed coordinate line {line!r}")
            if not 1 <= nid <= num_nodes:
                raise IngestError(
                    path, line_number, f"node id {nid} outside declared range 1..{num_nodes}"
                )
            if seen[nid]:
                raise IngestError(path, line_number, f"duplicate node id {nid}")
            seen[nid] = True
            xs[nid - 1] = _check_coordinate(path, line_number, x, "x")
            ys[nid - 1] = _check_coordinate(path, line_number, y, "y")
    return xs, ys


def import_dimacs(
    gr_path: PathLike,
    out_dir: PathLike,
    co_path: Optional[PathLike] = None,
    name: Optional[str] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    use_parquet: bool = False,
) -> ColumnarEdgeTable:
    """Import a DIMACS ``.gr`` (plus optional ``.co``) into a columnar table.

    Node ids are the dense ``1..n`` range declared by the problem line;
    without a coordinate file every node sits at ``(0.0, 0.0)`` (spatial
    partitioners degrade, shortest paths are unaffected).  Arcs keep file
    order, which becomes the CSR adjacency order.
    """
    np = _numpy()
    gr_path = pathlib.Path(gr_path)
    table_name = name or gr_path.stem
    num_nodes: Optional[int] = None
    num_arcs: Optional[int] = None
    writer: Optional[ColumnarWriter] = None
    src: List[int] = []
    dst: List[int] = []
    weights: List[float] = []
    arcs_seen = 0

    def flush_edges() -> None:
        nonlocal src, dst, weights
        if src and writer is not None:
            writer.append_edges(
                np.asarray(src, dtype=np.int64),
                np.asarray(dst, dtype=np.int64),
                np.asarray(weights, dtype=np.float64),
            )
            src, dst, weights = [], [], []

    with open(gr_path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] == "c":
                continue
            fields = line.split()
            if fields[0] == "p":
                if num_nodes is not None:
                    raise IngestError(gr_path, line_number, "duplicate problem line")
                if len(fields) != 4 or fields[1] != "sp":
                    raise IngestError(
                        gr_path, line_number, f"unsupported problem line {line!r}"
                    )
                try:
                    num_nodes = int(fields[2])
                    num_arcs = int(fields[3])
                except ValueError:
                    raise IngestError(gr_path, line_number, f"malformed problem line {line!r}")
                if num_nodes < 0 or num_arcs < 0:
                    raise IngestError(
                        gr_path, line_number, "negative node or arc count"
                    )
                continue
            if fields[0] != "a":
                raise IngestError(gr_path, line_number, f"unrecognized line {line!r}")
            if num_nodes is None:
                raise IngestError(
                    gr_path, line_number, "arc line before the problem ('p sp') line"
                )
            if len(fields) != 4:
                raise IngestError(gr_path, line_number, f"malformed arc line {line!r}")
            try:
                u = int(fields[1])
                v = int(fields[2])
                w = float(fields[3])
            except ValueError:
                raise IngestError(gr_path, line_number, f"malformed arc line {line!r}")
            for endpoint in (u, v):
                if not 1 <= endpoint <= num_nodes:
                    raise IngestError(
                        gr_path,
                        line_number,
                        f"arc endpoint {endpoint} outside declared range "
                        f"1..{num_nodes} (dangling edge)",
                    )
            _check_weight(gr_path, line_number, w)
            if writer is None:
                # Nodes first: the table stores them in id order, the order
                # the CSR build sorts into anyway.
                if co_path is not None:
                    xs, ys = _parse_co(co_path, num_nodes)
                else:
                    xs = np.zeros(num_nodes, dtype=np.float64)
                    ys = np.zeros(num_nodes, dtype=np.float64)
                writer = ColumnarWriter(
                    out_dir, table_name, chunk_rows=chunk_rows, use_parquet=use_parquet
                )
                for start in range(0, num_nodes, chunk_rows):
                    stop = min(start + chunk_rows, num_nodes)
                    writer.append_nodes(
                        np.arange(start + 1, stop + 1, dtype=np.int64),
                        xs[start:stop],
                        ys[start:stop],
                    )
            src.append(u)
            dst.append(v)
            weights.append(w)
            arcs_seen += 1
            if len(src) >= chunk_rows:
                flush_edges()

    if num_nodes is None:
        raise IngestError(gr_path, None, "no problem ('p sp') line found")
    if writer is None:
        # A graph with zero arcs: still emit the node set.
        if co_path is not None:
            xs, ys = _parse_co(co_path, num_nodes)
        else:
            xs = np.zeros(num_nodes, dtype=np.float64)
            ys = np.zeros(num_nodes, dtype=np.float64)
        writer = ColumnarWriter(
            out_dir, table_name, chunk_rows=chunk_rows, use_parquet=use_parquet
        )
        for start in range(0, num_nodes, chunk_rows):
            stop = min(start + chunk_rows, num_nodes)
            writer.append_nodes(
                np.arange(start + 1, stop + 1, dtype=np.int64),
                xs[start:stop],
                ys[start:stop],
            )
    flush_edges()
    if num_arcs is not None and arcs_seen != num_arcs:
        raise IngestError(
            gr_path,
            None,
            f"problem line declares {num_arcs} arcs but the file holds {arcs_seen}",
        )
    return writer.finalize(
        source={
            "format": "dimacs-gr",
            "gr": str(gr_path),
            "co": str(co_path) if co_path is not None else None,
        }
    )


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def _is_header(row: List[str]) -> bool:
    for field in row:
        try:
            float(field)
        except ValueError:
            return True
    return False


def _csv_rows(
    path: PathLike, delimiter: str, has_header: Optional[bool]
) -> Iterator[Tuple[int, List[str]]]:
    """Yield ``(line_number, fields)`` for data rows, skipping the header."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header_decided = has_header is not None
        skip_header = bool(has_header)
        for row in reader:
            if not row or all(not field.strip() for field in row):
                continue
            fields = [field.strip() for field in row]
            if not header_decided:
                header_decided = True
                if _is_header(fields):
                    continue
            elif skip_header:
                skip_header = False
                continue
            yield reader.line_num, fields


def _parse_nodes_csv(
    path: PathLike, delimiter: str, has_header: Optional[bool], chunk_rows: int
):
    """Parse an ``id,x,y`` CSV into (sorted_ids, x_sorted, y_sorted) arrays."""
    np = _numpy()
    ids: List[int] = []
    xs: List[float] = []
    ys: List[float] = []
    lines: List[int] = []
    chunks = []

    def flush() -> None:
        nonlocal ids, xs, ys, lines
        if ids:
            chunks.append(
                (
                    np.asarray(ids, dtype=np.int64),
                    np.asarray(xs, dtype=np.float64),
                    np.asarray(ys, dtype=np.float64),
                    np.asarray(lines, dtype=np.int64),
                )
            )
            ids, xs, ys, lines = [], [], [], []

    for line_number, fields in _csv_rows(path, delimiter, has_header):
        if len(fields) < 3:
            raise IngestError(path, line_number, f"expected id,x,y row, got {fields!r}")
        try:
            nid = int(fields[0])
            x = float(fields[1])
            y = float(fields[2])
        except ValueError:
            raise IngestError(path, line_number, f"malformed node row {fields!r}")
        _check_coordinate(path, line_number, x, "x")
        _check_coordinate(path, line_number, y, "y")
        ids.append(nid)
        xs.append(x)
        ys.append(y)
        lines.append(line_number)
        if len(ids) >= chunk_rows:
            flush()
    flush()
    if not chunks:
        raise IngestError(path, None, "no node rows found")
    all_ids = np.concatenate([c[0] for c in chunks])
    all_x = np.concatenate([c[1] for c in chunks])
    all_y = np.concatenate([c[2] for c in chunks])
    all_lines = np.concatenate([c[3] for c in chunks])
    order = np.argsort(all_ids, kind="stable")
    sorted_ids = all_ids[order]
    duplicate = np.nonzero(sorted_ids[1:] == sorted_ids[:-1])[0]
    if len(duplicate):
        # Report the *later* occurrence in file order, like the .co parser.
        position = duplicate[0] + 1
        culprit_lines = all_lines[order[[duplicate[0], position]]]
        raise IngestError(
            path,
            int(culprit_lines.max()),
            f"duplicate node id {int(sorted_ids[position])}",
        )
    return sorted_ids, all_x[order], all_y[order]


def import_csv(
    edges_path: PathLike,
    out_dir: PathLike,
    nodes_path: Optional[PathLike] = None,
    name: Optional[str] = None,
    delimiter: str = ",",
    has_header: Optional[bool] = None,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    use_parquet: bool = False,
) -> ColumnarEdgeTable:
    """Import a ``source,target,weight`` CSV into a columnar table.

    With ``nodes_path`` (an ``id,x,y`` CSV) the node set is explicit and
    every edge endpoint must be a declared node; without it the node set is
    the union of edge endpoints, each at coordinates ``(0.0, 0.0)``.
    ``has_header=None`` sniffs: a first row with any non-numeric field is
    treated as a header.  Edge file order becomes CSR adjacency order.
    """
    np = _numpy()
    edges_path = pathlib.Path(edges_path)
    table_name = name or edges_path.stem
    writer = ColumnarWriter(
        out_dir, table_name, chunk_rows=chunk_rows, use_parquet=use_parquet
    )

    declared_ids = None
    if nodes_path is not None:
        declared_ids, node_x, node_y = _parse_nodes_csv(
            nodes_path, delimiter, has_header, chunk_rows
        )
        for start in range(0, len(declared_ids), chunk_rows):
            stop = min(start + chunk_rows, len(declared_ids))
            writer.append_nodes(
                declared_ids[start:stop], node_x[start:stop], node_y[start:stop]
            )

    seen_ids = np.empty(0, dtype=np.int64)
    src: List[int] = []
    dst: List[int] = []
    weights: List[float] = []
    lines: List[int] = []

    def flush() -> None:
        nonlocal src, dst, weights, lines, seen_ids
        if not src:
            return
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        w_arr = np.asarray(weights, dtype=np.float64)
        line_arr = np.asarray(lines, dtype=np.int64)
        if declared_ids is not None:
            for endpoints in (src_arr, dst_arr):
                missing = ~np.isin(endpoints, declared_ids)
                if missing.any():
                    at = int(np.argmax(missing))
                    raise IngestError(
                        edges_path,
                        int(line_arr[at]),
                        f"edge endpoint {int(endpoints[at])} is not a "
                        "declared node (dangling edge)",
                    )
        else:
            seen_ids = np.union1d(seen_ids, np.concatenate([src_arr, dst_arr]))
        writer.append_edges(src_arr, dst_arr, w_arr)
        src, dst, weights, lines = [], [], [], []

    for line_number, fields in _csv_rows(edges_path, delimiter, has_header):
        if len(fields) < 3:
            raise IngestError(
                edges_path, line_number, f"expected source,target,weight row, got {fields!r}"
            )
        try:
            u = int(fields[0])
            v = int(fields[1])
            w = float(fields[2])
        except ValueError:
            raise IngestError(edges_path, line_number, f"malformed edge row {fields!r}")
        _check_weight(edges_path, line_number, w)
        src.append(u)
        dst.append(v)
        weights.append(w)
        lines.append(line_number)
        if len(src) >= chunk_rows:
            flush()
    flush()

    if declared_ids is None:
        # Implied node set: endpoints at origin coordinates, id order.
        for start in range(0, len(seen_ids), chunk_rows):
            stop = min(start + chunk_rows, len(seen_ids))
            block = seen_ids[start:stop]
            zeros = np.zeros(len(block), dtype=np.float64)
            writer.append_nodes(block, zeros, zeros)

    return writer.finalize(
        source={
            "format": "csv",
            "edges": str(edges_path),
            "nodes": str(nodes_path) if nodes_path is not None else None,
            "delimiter": delimiter,
        }
    )
