"""A lazy, read-only ``RoadNetwork`` facade over CSR arrays.

The broadcast schemes, partitioners and the engine consume the dict
``RoadNetwork`` API (``node_ids``/``neighbors``/``adjacency``/``nodes``/
``fingerprint``/...).  Building that dict for a continental network costs
gigabytes of python objects.  :class:`ColumnarNetwork` keeps the
:class:`~repro.network.graph.RoadNetwork` *interface* while backing the
internal maps with lazy views over a frozen :class:`CSRGraph` plus two
coordinate arrays -- per-node lists and :class:`Node` objects materialize
only for the rows a caller actually touches, and are dropped immediately.

The facade subclasses ``RoadNetwork`` and substitutes its three internal
dicts (``_nodes``, ``_adjacency``, ``_reverse_adjacency``) with read-only
:class:`~collections.abc.Mapping` implementations, so every inherited read
path -- iteration, ``edges()``, ``bounding_box()``, ``subgraph()``, even
the full fingerprint recomputation -- works unchanged.  Mutation is
refused with :class:`~repro.network.csr.ImmutableSnapshotError`: columnar
networks refresh by re-importing and re-publishing, exactly like the
serving daemon's shared-memory snapshots.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import List, Optional, Tuple

from repro.network.csr import CSRGraph, ImmutableSnapshotError
from repro.network.graph import Node, RoadNetwork

__all__ = ["ColumnarNetwork"]

_IMMUTABLE_MESSAGE = (
    "columnar-backed networks are immutable; materialize a dict copy with "
    "to_network() to mutate, or re-import and re-publish"
)


class _LazyNodeMap(Mapping):
    """``{node_id: Node}`` view over the id/coordinate arrays."""

    __slots__ = ("_csr", "_x", "_y")

    def __init__(self, csr: CSRGraph, x, y) -> None:
        self._csr = csr
        self._x = x
        self._y = y

    def __getitem__(self, node_id: int) -> Node:
        index = self._csr.index_of[node_id]
        return Node(node_id, float(self._x[index]), float(self._y[index]))

    def __iter__(self):
        return iter(self._csr.ids)

    def __len__(self) -> int:
        return self._csr.num_nodes

    def __contains__(self, node_id) -> bool:
        return node_id in self._csr.index_of


class _LazyAdjacencyMap(Mapping):
    """``{node_id: [(neighbor_id, weight), ...]}`` view over CSR spans."""

    __slots__ = ("_csr", "_offsets", "_targets", "_weights")

    def __init__(self, csr: CSRGraph, offsets, targets, weights) -> None:
        self._csr = csr
        self._offsets = offsets
        self._targets = targets
        self._weights = weights

    def __getitem__(self, node_id: int) -> List[Tuple[int, float]]:
        index = self._csr.index_of[node_id]
        start, end = self._offsets[index], self._offsets[index + 1]
        ids = self._csr.ids
        return [
            (ids[self._targets[position]], self._weights[position])
            for position in range(start, end)
        ]

    def __iter__(self):
        return iter(self._csr.ids)

    def __len__(self) -> int:
        return self._csr.num_nodes

    def __contains__(self, node_id) -> bool:
        return node_id in self._csr.index_of


class ColumnarNetwork(RoadNetwork):
    """Read-only ``RoadNetwork`` backed by CSR arrays (see module doc).

    Build with :meth:`from_table`; the plain constructor wires an existing
    snapshot plus index-ordered coordinate arrays together.
    """

    def __init__(
        self,
        csr: CSRGraph,
        x,
        y,
        name: str = "columnar-network",
        fingerprint: Optional[str] = None,
    ) -> None:
        if len(x) != csr.num_nodes or len(y) != csr.num_nodes:
            raise ValueError(
                f"coordinate arrays ({len(x)}, {len(y)}) do not match "
                f"snapshot node count {csr.num_nodes}"
            )
        # Deliberately no super().__init__(): every dict field is replaced
        # by a lazy view; keep this list in sync with RoadNetwork.__init__.
        self.name = name
        self._coord_x = x
        self._coord_y = y
        self._nodes = _LazyNodeMap(csr, x, y)
        self._adjacency = _LazyAdjacencyMap(
            csr, csr.fwd_offsets, csr.fwd_targets, csr.fwd_weights
        )
        self._reverse_adjacency = _LazyAdjacencyMap(
            csr, csr.rev_offsets, csr.rev_targets, csr.rev_weights
        )
        self._num_edges = csr.num_edges
        self._fingerprint_cache = fingerprint
        self._fingerprint_sum = int(fingerprint, 16) if fingerprint is not None else None
        self._pending_changes = {}
        self._dirty_nodes = set()
        self._structurally_dirty = False
        self._csr = csr
        self._csr_fingerprint = fingerprint if fingerprint is not None else self.fingerprint()
        self._csr_builds = 1
        self._csr_patches = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table, name: Optional[str] = None) -> "ColumnarNetwork":
        """Open a columnar edge table as a servable network, dict-free.

        The CSR snapshot comes straight from
        :meth:`CSRGraph.from_columnar`; the manifest fingerprint keys the
        snapshot (and every engine/store cache downstream) without an
        O(V + E) re-hash.
        """
        import numpy as np

        csr = CSRGraph.from_columnar(table)
        sorted_ids = np.asarray(csr.ids, dtype=np.int64)
        x = np.empty(csr.num_nodes, dtype=np.float64)
        y = np.empty(csr.num_nodes, dtype=np.float64)
        for ids, xs, ys in table.iter_node_chunks():
            # Chunks arrive in arbitrary id order; scatter into index order.
            positions = np.searchsorted(sorted_ids, ids)
            x[positions] = xs
            y[positions] = ys
        return cls(
            csr, x, y, name=name or table.name, fingerprint=table.fingerprint
        )

    # ------------------------------------------------------------------
    # Refused mutations
    # ------------------------------------------------------------------
    def _immutable(self, *_args, **_kwargs):
        raise ImmutableSnapshotError(_IMMUTABLE_MESSAGE)

    add_node = _immutable
    add_edge = _immutable
    add_bidirectional_edge = _immutable
    remove_edge = _immutable
    update_edge_weight = _immutable
    adopt_csr = _immutable

    # ------------------------------------------------------------------
    # Reads that beat the generic lazy path
    # ------------------------------------------------------------------
    def node_ids(self) -> List[int]:
        """All node identifiers, ascending (CSR index order)."""
        return list(self._csr.ids)

    def coordinates(self, node_id: int) -> Tuple[float, float]:
        index = self._csr.index_of[node_id]
        return (float(self._coord_x[index]), float(self._coord_y[index]))

    def bounding_box(self) -> Tuple[float, float, float, float]:
        if not len(self._coord_x):
            raise ValueError("bounding box of an empty network is undefined")
        return (
            float(self._coord_x.min()),
            float(self._coord_y.min()),
            float(self._coord_x.max()),
            float(self._coord_y.max()),
        )

    def out_degree(self, node_id: int) -> int:
        csr = self._csr
        index = csr.index_of[node_id]
        return csr.fwd_offsets[index + 1] - csr.fwd_offsets[index]

    def in_degree(self, node_id: int) -> int:
        csr = self._csr
        index = csr.index_of[node_id]
        return csr.rev_offsets[index + 1] - csr.rev_offsets[index]

    def total_weight(self) -> float:
        return float(sum(self._csr.fwd_weights))

    # ------------------------------------------------------------------
    # Snapshot access (always fresh: the network cannot drift)
    # ------------------------------------------------------------------
    def csr_snapshot(self) -> CSRGraph:
        return self._csr

    def ensure_csr(self) -> CSRGraph:
        return self._csr

    def to_network(self, name: Optional[str] = None) -> RoadNetwork:
        """Materialize a mutable dict copy (O(V + E) python objects)."""
        dup = RoadNetwork(name=name or self.name)
        for node in self.nodes():
            dup.add_node(node.node_id, node.x, node.y)
        for node_id in self._csr.ids:
            for target, weight in self._adjacency[node_id]:
                dup.add_edge(node_id, target, weight)
        dup.clear_delta()
        return dup

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ColumnarNetwork(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
