"""Continental-scale network ingestion.

Importers stream DIMACS ``.gr``/``.co`` and edge-list CSV files into
columnar on-disk edge tables (:mod:`~repro.network.ingest.columnar`);
:meth:`CSRGraph.from_columnar` compiles a frozen snapshot straight from a
table, and :class:`~repro.network.ingest.facade.ColumnarNetwork` serves
the dict ``RoadNetwork`` API off those arrays -- the dict graph never
materializes on the big-network path.  Requires numpy; Parquet chunks are
available when pyarrow is installed.
"""

from repro.network.ingest.columnar import (
    ColumnarEdgeTable,
    ColumnarWriter,
    open_table,
    parquet_available,
)
from repro.network.ingest.facade import ColumnarNetwork
from repro.network.ingest.importers import IngestError, import_csv, import_dimacs

__all__ = [
    "ColumnarEdgeTable",
    "ColumnarNetwork",
    "ColumnarWriter",
    "IngestError",
    "import_csv",
    "import_dimacs",
    "open_table",
    "parquet_available",
]
