"""Columnar on-disk edge tables for continental-scale road networks.

A :class:`ColumnarEdgeTable` is a directory of fixed-schema column chunks
plus a ``manifest.json``::

    <dir>/
        manifest.json            counts, chunk list, content fingerprint
        nodes-00000.npz          ids: int64, x: float64, y: float64
        edges-00000.npz          src: int64, dst: int64, w: float64
        ...

Chunks are uncompressed ``.npz`` archives by default so on-disk bytes map
1:1 onto the in-memory arrays; when :mod:`pyarrow` is importable the writer
can emit ``.parquet`` chunks instead (same schema, better compression and
ecosystem interop).  Readers dispatch on the chunk file suffix, so a table
written with Parquet round-trips on any host that also has pyarrow, while
the ``.npz`` form needs only numpy.

Everything streams: the writer buffers at most ``chunk_rows`` rows before
flushing a chunk, and :meth:`ColumnarEdgeTable.iter_edge_chunks` yields one
chunk's arrays at a time -- O(chunk) transient memory regardless of table
size.  The manifest carries the same 128-bit multiset *network fingerprint*
:meth:`repro.network.graph.RoadNetwork.fingerprint` would compute over the
identical nodes and edges, so artifacts built from a columnar table key
into the engine and store caches interchangeably with dict-built networks.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.network.graph import _FINGERPRINT_MOD, _element_hash

__all__ = [
    "ColumnarEdgeTable",
    "ColumnarWriter",
    "open_table",
    "parquet_available",
]

#: Manifest schema identifier; bump on incompatible layout changes.
FORMAT = "repro-columnar-v1"

#: Default writer buffer: rows held in memory before a chunk is flushed.
DEFAULT_CHUNK_ROWS = 250_000

_MANIFEST = "manifest.json"


def _numpy():
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy ships in CI
        raise RuntimeError(
            "columnar edge tables require numpy; install numpy or use the "
            "plain-text loader (repro.network.io.load_network) instead"
        ) from exc
    return numpy


def parquet_available() -> bool:
    """Whether the optional Parquet chunk codec can be used on this host."""
    try:
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


def _write_chunk(path: pathlib.Path, columns: Dict[str, Any], use_parquet: bool) -> None:
    np = _numpy()
    if use_parquet:
        import pyarrow
        import pyarrow.parquet

        table = pyarrow.table({name: pyarrow.array(col) for name, col in columns.items()})
        pyarrow.parquet.write_table(table, path)
        return
    # Uncompressed on purpose: the file is then byte-commensurate with the
    # arrays it holds, which is what the ingest benchmark's "CSR build peak
    # stays under 2x the columnar bytes" assertion measures against.
    np.savez(path, **columns)


def _read_chunk(path: pathlib.Path, names: Tuple[str, ...]):
    np = _numpy()
    if path.suffix == ".parquet":
        import pyarrow.parquet

        table = pyarrow.parquet.read_table(path, columns=list(names))
        return tuple(np.ascontiguousarray(table.column(n).to_numpy()) for n in names)
    with np.load(path) as archive:
        return tuple(np.ascontiguousarray(archive[n]) for n in names)


def _sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class ColumnarWriter:
    """Streaming writer for one :class:`ColumnarEdgeTable` directory.

    Importers push validated rows through :meth:`append_nodes` /
    :meth:`append_edges` in arrival order; the writer buffers up to
    ``chunk_rows`` rows per stream, flushes full chunks to disk, and folds
    every row into the running multiset fingerprint.  :meth:`finalize`
    writes the manifest and returns the opened table.

    Edge order across chunks is the append order -- the importer feeds file
    order, which is exactly the adjacency order
    :meth:`CSRGraph.from_columnar` must reproduce for bit-identity with a
    dict-built network.
    """

    def __init__(
        self,
        directory,
        name: str,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        use_parquet: bool = False,
    ) -> None:
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        if use_parquet and not parquet_available():
            raise RuntimeError(
                "parquet chunk format requested but pyarrow is not "
                "installed; omit use_parquet to write .npz chunks"
            )
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.name = name
        self.chunk_rows = int(chunk_rows)
        self.use_parquet = use_parquet
        self._suffix = ".parquet" if use_parquet else ".npz"
        self._node_buffer: List[Tuple[Any, Any, Any]] = []
        self._edge_buffer: List[Tuple[Any, Any, Any]] = []
        self._node_buffered = 0
        self._edge_buffered = 0
        self._node_chunks: List[Dict[str, Any]] = []
        self._edge_chunks: List[Dict[str, Any]] = []
        self.num_nodes = 0
        self.num_edges = 0
        self._fingerprint_sum = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append_nodes(self, ids, xs, ys) -> None:
        """Append one batch of node rows (arrival order is preserved)."""
        np = _numpy()
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        xs = np.ascontiguousarray(xs, dtype=np.float64)
        ys = np.ascontiguousarray(ys, dtype=np.float64)
        if not (len(ids) == len(xs) == len(ys)):
            raise ValueError("node column lengths disagree")
        if not len(ids):
            return
        self._fold_nodes(ids, xs, ys)
        self.num_nodes += len(ids)
        self._node_buffer.append((ids, xs, ys))
        self._node_buffered += len(ids)
        if self._node_buffered >= self.chunk_rows:
            self._flush_nodes()

    def append_edges(self, src, dst, weights) -> None:
        """Append one batch of edge rows (arrival order is adjacency order)."""
        np = _numpy()
        src = np.ascontiguousarray(src, dtype=np.int64)
        dst = np.ascontiguousarray(dst, dtype=np.int64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if not (len(src) == len(dst) == len(weights)):
            raise ValueError("edge column lengths disagree")
        if not len(src):
            return
        self._fold_edges(src, dst, weights)
        self.num_edges += len(src)
        self._edge_buffer.append((src, dst, weights))
        self._edge_buffered += len(src)
        if self._edge_buffered >= self.chunk_rows:
            self._flush_edges()

    # ------------------------------------------------------------------
    # Fingerprint folding (must mirror RoadNetwork's element encoding)
    # ------------------------------------------------------------------
    def _fold_nodes(self, ids, xs, ys) -> None:
        total = self._fingerprint_sum
        for nid, x, y in zip(ids.tolist(), xs.tolist(), ys.tolist()):
            total += _element_hash(f"n{nid}:{x!r}:{y!r};")
        self._fingerprint_sum = total % _FINGERPRINT_MOD

    def _fold_edges(self, src, dst, weights) -> None:
        total = self._fingerprint_sum
        for s, t, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
            total += _element_hash(f"e{s}>{t}:{w!r};")
        self._fingerprint_sum = total % _FINGERPRINT_MOD

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _concat(self, buffer):
        np = _numpy()
        if len(buffer) == 1:
            return buffer[0]
        return tuple(np.concatenate(parts) for parts in zip(*buffer))

    def _flush_nodes(self) -> None:
        if not self._node_buffer:
            return
        ids, xs, ys = self._concat(self._node_buffer)
        file_name = f"nodes-{len(self._node_chunks):05d}{self._suffix}"
        path = self.directory / file_name
        _write_chunk(path, {"ids": ids, "x": xs, "y": ys}, self.use_parquet)
        self._node_chunks.append(
            {"file": file_name, "rows": int(len(ids)), "sha256": _sha256_file(path)}
        )
        self._node_buffer = []
        self._node_buffered = 0

    def _flush_edges(self) -> None:
        if not self._edge_buffer:
            return
        src, dst, weights = self._concat(self._edge_buffer)
        file_name = f"edges-{len(self._edge_chunks):05d}{self._suffix}"
        path = self.directory / file_name
        _write_chunk(path, {"src": src, "dst": dst, "w": weights}, self.use_parquet)
        self._edge_chunks.append(
            {"file": file_name, "rows": int(len(src)), "sha256": _sha256_file(path)}
        )
        self._edge_buffer = []
        self._edge_buffered = 0

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, source: Optional[Dict[str, Any]] = None) -> "ColumnarEdgeTable":
        """Flush remaining buffers, write the manifest, and open the table."""
        if self._finalized:
            raise RuntimeError("writer already finalized")
        self._flush_nodes()
        self._flush_edges()
        manifest = {
            "format": FORMAT,
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "chunk_rows": self.chunk_rows,
            "chunk_format": "parquet" if self.use_parquet else "npz",
            "fingerprint": f"{self._fingerprint_sum:032x}",
            "node_chunks": self._node_chunks,
            "edge_chunks": self._edge_chunks,
            "source": source or {},
        }
        # Write-then-rename so a crashed import never leaves a directory
        # that parses as a complete table.
        staging = self.directory / f".{_MANIFEST}.{os.getpid()}.tmp"
        staging.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        os.replace(staging, self.directory / _MANIFEST)
        self._finalized = True
        return ColumnarEdgeTable(self.directory)


class ColumnarEdgeTable:
    """Read access to one columnar edge-table directory (see module doc)."""

    def __init__(self, directory) -> None:
        self.directory = pathlib.Path(directory)
        manifest_path = self.directory / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise FileNotFoundError(
                f"{self.directory} is not a columnar edge table (no {_MANIFEST})"
            ) from None
        if manifest.get("format") != FORMAT:
            raise ValueError(
                f"{manifest_path}: unsupported table format "
                f"{manifest.get('format')!r} (expected {FORMAT!r})"
            )
        if manifest.get("chunk_format") == "parquet" and not parquet_available():
            raise RuntimeError(
                f"{self.directory} stores parquet chunks but pyarrow is not "
                "installed; re-import without --parquet on this host"
            )
        self.manifest: Dict[str, Any] = manifest
        self.name: str = manifest["name"]
        self.num_nodes: int = int(manifest["num_nodes"])
        self.num_edges: int = int(manifest["num_edges"])
        #: 128-bit multiset fingerprint, identical to what a
        #: :class:`RoadNetwork` holding the same rows would report.
        self.fingerprint: str = manifest["fingerprint"]

    # ------------------------------------------------------------------
    # Chunk iteration
    # ------------------------------------------------------------------
    def _chunk_paths(self, kind: str) -> List[pathlib.Path]:
        return [self.directory / chunk["file"] for chunk in self.manifest[kind]]

    def iter_node_chunks(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Yield ``(ids, x, y)`` arrays, one tuple per node chunk."""
        for path in self._chunk_paths("node_chunks"):
            yield _read_chunk(path, ("ids", "x", "y"))

    def iter_edge_chunks(self) -> Iterator[Tuple[Any, Any, Any]]:
        """Yield ``(src, dst, w)`` arrays in table (= adjacency) order."""
        for path in self._chunk_paths("edge_chunks"):
            yield _read_chunk(path, ("src", "dst", "w"))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """On-disk size of all chunk files (the manifest is excluded)."""
        return sum(
            path.stat().st_size
            for kind in ("node_chunks", "edge_chunks")
            for path in self._chunk_paths(kind)
        )

    def verify(self) -> None:
        """Re-hash every chunk file against the manifest; raise on mismatch."""
        for kind in ("node_chunks", "edge_chunks"):
            for chunk in self.manifest[kind]:
                path = self.directory / chunk["file"]
                actual = _sha256_file(path)
                if actual != chunk["sha256"]:
                    raise ValueError(
                        f"{path}: content hash {actual} does not match "
                        f"manifest ({chunk['sha256']}); the chunk was "
                        "modified or corrupted after import"
                    )

    def stats(self) -> Dict[str, Any]:
        """Summary counters for CLI reporting."""
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "fingerprint": self.fingerprint,
            "chunk_format": self.manifest.get("chunk_format", "npz"),
            "node_chunks": len(self.manifest["node_chunks"]),
            "edge_chunks": len(self.manifest["edge_chunks"]),
            "bytes": self.total_bytes(),
        }

    # ------------------------------------------------------------------
    # Materialization (small tables / reference comparisons)
    # ------------------------------------------------------------------
    def to_network(self, name: Optional[str] = None):
        """Materialize a dict :class:`RoadNetwork` -- O(V + E) memory.

        Intended for tests and sampled-subgraph comparisons; continental
        tables should go through :meth:`CSRGraph.from_columnar` or the
        :class:`~repro.network.ingest.facade.ColumnarNetwork` facade
        instead.
        """
        from repro.network.graph import RoadNetwork

        network = RoadNetwork(name=name or self.name)
        for ids, xs, ys in self.iter_node_chunks():
            for nid, x, y in zip(ids.tolist(), xs.tolist(), ys.tolist()):
                network.add_node(nid, x, y)
        for src, dst, weights in self.iter_edge_chunks():
            for s, t, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
                network.add_edge(s, t, w)
        network.clear_delta()
        return network

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ColumnarEdgeTable(dir={str(self.directory)!r}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )


def open_table(directory) -> ColumnarEdgeTable:
    """Open an existing columnar edge table directory."""
    return ColumnarEdgeTable(directory)
