"""Registry of the paper's evaluation networks.

Table 2 of the paper lists five real road networks:

========== ======= =======
Network      Nodes   Edges
========== ======= =======
Milan        14021   26849
Germany      28867   30429
Argentina    85287   88357
India       149566  155483
S.Francisco 174956  223001
========== ======= =======

The real datasets are not redistributable, so :func:`load` builds synthetic
stand-ins with the same node/edge counts (see ``DESIGN.md`` for why this
substitution preserves the paper's claims).  A ``scale`` factor shrinks the
networks proportionally so that the pure-Python pre-computation used in the
benchmarks stays tractable; all benchmark output records the scale used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.network.generators import GeneratorConfig, generate_road_network
from repro.network.graph import RoadNetwork

__all__ = ["DatasetSpec", "PAPER_NETWORKS", "available", "spec", "load"]


@dataclass(frozen=True)
class DatasetSpec:
    """Node/edge counts of one of the paper's road networks."""

    name: str
    num_nodes: int
    num_edges: int

    def scaled(self, scale: float) -> "DatasetSpec":
        """Return a spec with node/edge counts multiplied by ``scale``."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return DatasetSpec(
            name=self.name,
            num_nodes=max(16, int(round(self.num_nodes * scale))),
            num_edges=max(32, int(round(self.num_edges * scale))),
        )


#: The five networks of Table 2, in the paper's order.
PAPER_NETWORKS: Dict[str, DatasetSpec] = {
    "milan": DatasetSpec("milan", 14_021, 26_849),
    "germany": DatasetSpec("germany", 28_867, 30_429),
    "argentina": DatasetSpec("argentina", 85_287, 88_357),
    "india": DatasetSpec("india", 149_566, 155_483),
    "san_francisco": DatasetSpec("san_francisco", 174_956, 223_001),
}

#: The paper's default evaluation network (Section 7).
DEFAULT_NETWORK = "germany"


def available() -> List[str]:
    """Return the names of the registered paper networks, in paper order."""
    return list(PAPER_NETWORKS)


def spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under ``name``."""
    key = name.lower().replace(" ", "_").replace("-", "_")
    if key == "san_francisco" or key == "sanfrancisco" or key == "s_francisco":
        key = "san_francisco"
    if key not in PAPER_NETWORKS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(PAPER_NETWORKS)}"
        )
    return PAPER_NETWORKS[key]


def load(name: str, scale: float = 1.0, seed: int = 0) -> RoadNetwork:
    """Build the synthetic stand-in for the paper network ``name``.

    Parameters
    ----------
    name:
        One of :func:`available`.
    scale:
        Proportional down-scaling of node/edge counts (``0.1`` builds a
        network one tenth the size).  Defaults to full size.
    seed:
        Seed for the deterministic generator; the same ``(name, scale, seed)``
        always produces the same network.
    """
    dataset = spec(name).scaled(scale)
    config = GeneratorConfig(
        num_nodes=dataset.num_nodes,
        num_edges=dataset.num_edges,
        seed=seed ^ _stable_hash(dataset.name),
    )
    return generate_road_network(config, name=dataset.name)


def _stable_hash(text: str) -> int:
    """A process-independent hash so dataset seeds are reproducible."""
    value = 0
    for char in text:
        value = (value * 131 + ord(char)) % (2**31)
    return value
