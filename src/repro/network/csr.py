"""Frozen CSR (compressed sparse row) snapshots of a road network.

:class:`CSRGraph` compiles the dict-of-lists adjacency of a
:class:`~repro.network.graph.RoadNetwork` (or any raw adjacency mapping)
into contiguous int-indexed arrays: ``array('l')`` offsets/targets and
``array('d')`` weights, forward *and* reverse, plus id <-> index maps.  The
array kernel (:mod:`repro.network.algorithms.kernel`) runs its shortest
path searches over this layout instead of chasing per-node dict entries.

Two invariants make kernel results bit-identical to the dict Dijkstra:

* **Index order is node-id order.**  Node index ``i`` is the rank of its id
  among all sorted ids, so a heap ordered by ``(distance, index)`` pops in
  exactly the same sequence as the dict implementation's
  ``(distance, node_id)`` heap -- equal-distance ties settle identically.
* **Edge order is adjacency order.**  Each node's CSR span lists its edges
  in the same order as the network's adjacency list, so relaxations (and
  therefore predecessor assignment on ties) replay in the same sequence.

Snapshots are frozen: the owning network caches one per
:meth:`~repro.network.graph.RoadNetwork.fingerprint` and keeps it fresh by
**patching weights in place** on dynamic weight updates
(:meth:`patch_weight`) while invalidating it on any structural mutation
(adding/removing nodes or edges changes the index maps and spans).
"""

from __future__ import annotations

import operator as _operator
from array import array
from collections.abc import Mapping as _MappingABC
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["CSRGraph", "ImmutableSnapshotError"]


class ImmutableSnapshotError(TypeError):
    """Mutation attempted on a read-only (shared or columnar) snapshot.

    Raised instead of mutating arrays that other processes map
    (:meth:`CSRGraph.from_buffers` serving segments) or that back a
    read-only facade (:class:`~repro.network.ingest.facade.ColumnarNetwork`).
    Subclasses ``TypeError`` so callers that treated the old bare
    ``TypeError`` as "this snapshot cannot be patched" keep working.
    """


class _RangeIndex(_MappingABC):
    """Dict-free ``id -> index`` map for contiguous id ranges.

    Continental imports (DIMACS ids are dense ``1..n``) would otherwise pay
    ~80 bytes/node for the ``index_of`` dict; this arithmetic view answers
    the same ``[]``/``in``/``get`` queries from two integers.
    """

    __slots__ = ("_start", "_length")

    def __init__(self, start: int, length: int) -> None:
        self._start = start
        self._length = length

    def __getitem__(self, node_id: int) -> int:
        try:
            index = _operator.index(node_id) - self._start
        except TypeError:
            raise KeyError(node_id) from None
        if 0 <= index < self._length:
            return index
        raise KeyError(node_id)

    def get(self, node_id, default=None):
        try:
            index = _operator.index(node_id) - self._start
        except TypeError:
            return default
        if 0 <= index < self._length:
            return index
        return default

    def __contains__(self, node_id) -> bool:
        return self.get(node_id) is not None

    def __iter__(self):
        return iter(range(self._start, self._start + self._length))

    def __len__(self) -> int:
        return self._length


def _index_map(ids: Sequence[int]):
    """``id -> index`` map over index-ordered (ascending, unique) ids."""
    n = len(ids)
    # Ids are sorted and unique by the snapshot contract, so matching ends
    # imply the whole range is contiguous.
    if n and isinstance(ids[0], int) and ids[-1] - ids[0] == n - 1:
        return _RangeIndex(ids[0], n)
    return {nid: i for i, nid in enumerate(ids)}


def _has_nonpositive(weights) -> bool:
    """Whether any edge weight is ``<= 0`` (numpy-assisted when available)."""
    if not len(weights):
        return False
    try:
        import numpy
    except ImportError:
        return min(weights) <= 0.0
    return bool(numpy.frombuffer(weights, dtype=numpy.float64).min() <= 0.0)


class CSRGraph:
    """An immutable-topology CSR view of a directed weighted graph.

    Build through :meth:`from_network` or :meth:`from_adjacency`; the
    constructor itself only wires pre-compiled arrays together.
    """

    def __init__(
        self,
        ids: List[int],
        fwd_offsets: array,
        fwd_targets: array,
        fwd_weights: array,
        rev_offsets: array,
        rev_targets: array,
        rev_weights: array,
        name: str = "csr",
    ) -> None:
        self.name = name
        #: Node ids in index order (ascending -- see module docstring).
        self.ids = ids
        #: node id -> node index (a dict, or an arithmetic
        #: :class:`_RangeIndex` when the ids are a contiguous range).
        self.index_of = _index_map(ids)
        self.fwd_offsets = fwd_offsets
        self.fwd_targets = fwd_targets
        self.fwd_weights = fwd_weights
        self.rev_offsets = rev_offsets
        self.rev_targets = rev_targets
        self.rev_weights = rev_weights
        #: ``True`` when the flat arrays live in externally owned buffers
        #: (a :class:`~repro.serving.shm.SharedArtifactSegment` mapping).
        #: Buffer-backed snapshots are strictly read-only: an in-place weight
        #: patch would silently mutate every process mapping the segment.
        self.buffer_backed = False
        self._fwd_adj: Optional[List[Tuple[Tuple[int, float], ...]]] = None
        self._rev_adj: Optional[List[Tuple[Tuple[int, float], ...]]] = None
        #: ``True`` when some edge weight is ``<= 0``.  The kernel's
        #: accelerated SSSP path reconstructs predecessors from the settle
        #: order, which is only provably identical to the dict heap's under
        #: strictly positive weights; this flag routes such graphs onto the
        #: faithful simulation loop.  Weight patches are validated positive,
        #: so the flag can only stay or clear at the next full build.
        self.has_nonpositive_weight = _has_nonpositive(fwd_weights)
        #: Accelerator cache slot (numpy/scipy views built lazily by the
        #: kernel; ``None`` until first use, shared by reference so in-place
        #: weight patches propagate without rebuilding).
        self._accel = None

    # ------------------------------------------------------------------
    # Adjacency views
    # ------------------------------------------------------------------
    @property
    def fwd_adj(self):
        """Per-index forward adjacency (tuples of ``(neighbor_index, weight)``).

        This is what the kernel's faithful inner loop iterates -- one list
        index instead of one dict hash per node.  Materialized lazily from
        the flat arrays; buffer-backed snapshots get a non-materializing
        :class:`_FlatAdjacency` view instead, so N serving workers mapping
        one shared segment never build N tuple copies of the edge list.
        """
        if self._fwd_adj is None:
            self._fwd_adj = self._adjacency_view(
                self.fwd_offsets, self.fwd_targets, self.fwd_weights
            )
        return self._fwd_adj

    @property
    def rev_adj(self):
        """Per-index reverse adjacency (see :attr:`fwd_adj`)."""
        if self._rev_adj is None:
            self._rev_adj = self._adjacency_view(
                self.rev_offsets, self.rev_targets, self.rev_weights
            )
        return self._rev_adj

    def _adjacency_view(self, offsets, targets, weights):
        if self.buffer_backed:
            return _FlatAdjacency(offsets, targets, weights)
        return self._zip_adjacency(offsets, targets, weights)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _zip_adjacency(
        offsets: array, targets: array, weights: array
    ) -> List[Tuple[Tuple[int, float], ...]]:
        return [
            tuple(zip(targets[offsets[i] : offsets[i + 1]], weights[offsets[i] : offsets[i + 1]]))
            for i in range(len(offsets) - 1)
        ]

    @classmethod
    def _compile(
        cls,
        ids: List[int],
        index_of: Dict[int, int],
        neighbor_lists: Iterable[Sequence[Tuple[int, float]]],
    ) -> Tuple[array, array, array]:
        offsets = array("l", [0])
        targets = array("l")
        weights = array("d")
        for neighbors in neighbor_lists:
            for target, weight in neighbors:
                targets.append(index_of[target])
                weights.append(weight)
            offsets.append(len(targets))
        return offsets, targets, weights

    @classmethod
    def from_network(cls, network) -> "CSRGraph":
        """Compile a :class:`~repro.network.graph.RoadNetwork` snapshot.

        Per-node edge order follows the network's adjacency lists exactly
        (forward lists for the forward arrays, the incrementally maintained
        reverse lists for the reverse arrays), preserving relaxation order.
        """
        ids = sorted(network.node_ids())
        index_of = {nid: i for i, nid in enumerate(ids)}
        adjacency = network.adjacency()
        reverse = network.reverse_adjacency()
        fwd = cls._compile(ids, index_of, (adjacency[nid] for nid in ids))
        rev = cls._compile(ids, index_of, (reverse[nid] for nid in ids))
        return cls(ids, *fwd, *rev, name=f"{network.name}-csr")

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Mapping[int, Sequence[Tuple[int, float]]],
        extra_nodes: Iterable[int] = (),
        name: str = "adjacency-csr",
    ) -> "CSRGraph":
        """Compile a raw ``{node: [(target, weight), ...]}`` mapping.

        Used for overlay graphs (HiTi's super-edge blocks) that never
        materialize a :class:`RoadNetwork`.  Nodes appearing only as edge
        targets, plus any ``extra_nodes``, are included with empty spans so
        a search may start from them.
        """
        node_set = set(adjacency)
        node_set.update(extra_nodes)
        for neighbors in adjacency.values():
            node_set.update(target for target, _ in neighbors)
        ids = sorted(node_set)
        index_of = {nid: i for i, nid in enumerate(ids)}
        fwd = cls._compile(ids, index_of, (adjacency.get(nid, ()) for nid in ids))
        reverse: Dict[int, List[Tuple[int, float]]] = {nid: [] for nid in ids}
        for nid in ids:
            for target, weight in adjacency.get(nid, ()):
                reverse[target].append((nid, weight))
        rev = cls._compile(ids, index_of, (reverse[nid] for nid in ids))
        return cls(ids, *fwd, *rev, name=name)

    @classmethod
    def from_buffers(
        cls,
        ids: Sequence[int],
        fwd_offsets,
        fwd_targets,
        fwd_weights,
        rev_offsets,
        rev_targets,
        rev_weights,
        name: str = "csr",
    ) -> "CSRGraph":
        """Wire a snapshot directly over externally owned array buffers.

        The six flat arrays may be any buffer-protocol objects with int64
        offsets/targets and float64 weights -- in practice ``memoryview``
        casts over one :class:`multiprocessing.shared_memory.SharedMemory`
        segment, so N worker processes share a single physical copy of the
        index.  No array data is copied: only the id list and the
        id -> index map are per-process.  The resulting snapshot is
        read-only (:attr:`buffer_backed`); :meth:`patch_weight` refuses to
        touch it because a write would leak into every mapping process.

        Bit-identity with a locally compiled snapshot holds because both the
        faithful kernel loop and the accelerated path read the same values
        in the same order -- index order, adjacency order and weight bytes
        are exactly those the build process serialized.
        """
        graph = cls.__new__(cls)
        graph.name = name
        graph.ids = list(ids)
        graph.index_of = {nid: i for i, nid in enumerate(graph.ids)}
        graph.fwd_offsets = fwd_offsets
        graph.fwd_targets = fwd_targets
        graph.fwd_weights = fwd_weights
        graph.rev_offsets = rev_offsets
        graph.rev_targets = rev_targets
        graph.rev_weights = rev_weights
        graph.buffer_backed = True
        graph._fwd_adj = None
        graph._rev_adj = None
        graph.has_nonpositive_weight = _has_nonpositive(fwd_weights)
        graph._accel = None
        return graph

    @classmethod
    def from_columnar(cls, table, name: Optional[str] = None) -> "CSRGraph":
        """Compile a snapshot straight from a columnar edge table, dict-free.

        Two streaming passes over the table's edge chunks -- a degree count
        and a scatter placement -- build the flat arrays without ever
        materializing a :class:`RoadNetwork` (no per-node lists, no per-edge
        tuples).  Transient memory is O(chunk) beyond the output arrays
        themselves: the scatter writes through numpy views directly into
        the final ``array`` storage.

        Bit-identity with ``from_network(table.to_network())`` holds by
        construction: node index order is ascending id order (``np.sort``),
        and each node's span lists its edges in table order, which the
        importers define as input-file order -- the same order a dict
        network built row-by-row would hold in its adjacency lists.
        """
        import numpy as np

        id_chunks = [np.asarray(ids, dtype=np.int64) for ids, _, _ in table.iter_node_chunks()]
        ids_np = (
            np.sort(np.concatenate(id_chunks)) if id_chunks else np.empty(0, dtype=np.int64)
        )
        del id_chunks
        if len(ids_np) > 1 and bool((ids_np[1:] == ids_np[:-1]).any()):
            raise ValueError("columnar table declares duplicate node ids")
        n = int(len(ids_np))

        def locate(values) -> "np.ndarray":
            indexes = np.searchsorted(ids_np, values)
            clipped = np.minimum(indexes, max(n - 1, 0))
            if n == 0 or bool((ids_np[clipped] != values).any()):
                raise ValueError(
                    "columnar table has edges referencing undeclared nodes"
                )
            return clipped

        fwd_deg = np.zeros(n, dtype=np.int64)
        rev_deg = np.zeros(n, dtype=np.int64)
        num_edges = 0
        for src, dst, _ in table.iter_edge_chunks():
            fwd_deg += np.bincount(locate(src), minlength=n)
            rev_deg += np.bincount(locate(dst), minlength=n)
            num_edges += len(src)

        # The degree arrays become the offsets *and* the scatter cursors:
        # the final ``array('l')`` offsets are copied out immediately so no
        # extra n-sized numpy offset arrays stay live through the scatter
        # pass (the RSS budget at continental scale is tight enough that
        # each full-length transient shows up in the benchmark).
        fwd_offsets_np = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(fwd_deg, out=fwd_offsets_np[1:])
        rev_offsets_np = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(rev_deg, out=rev_offsets_np[1:])
        del fwd_deg, rev_deg
        fwd_offsets = array("l")
        fwd_offsets.frombytes(fwd_offsets_np.tobytes())
        rev_offsets = array("l")
        rev_offsets.frombytes(rev_offsets_np.tobytes())
        fwd_cursor = fwd_offsets_np[:-1]
        rev_cursor = rev_offsets_np[:-1]
        del fwd_offsets_np, rev_offsets_np

        # Allocate the final array storage up front and scatter through
        # writable numpy views -- no full-size numpy intermediate to copy.
        fwd_targets = array("l", [0]) * num_edges
        fwd_weights = array("d", [0.0]) * num_edges
        rev_targets = array("l", [0]) * num_edges
        rev_weights = array("d", [0.0]) * num_edges
        if num_edges:
            views = {
                "fwd_t": np.frombuffer(fwd_targets, dtype=np.int64),
                "fwd_w": np.frombuffer(fwd_weights, dtype=np.float64),
                "rev_t": np.frombuffer(rev_targets, dtype=np.int64),
                "rev_w": np.frombuffer(rev_weights, dtype=np.float64),
            }
            def scatter(t_view, w_view, cursor, group, values, weights) -> None:
                # Stable sort by source keeps within-chunk file order inside
                # each group; the per-group cursor keeps it across chunks.
                order = np.argsort(group, kind="stable")
                grouped = group[order]
                first = np.searchsorted(grouped, grouped, side="left")
                positions = cursor[grouped] + (np.arange(len(grouped)) - first)
                t_view[positions] = values[order]
                w_view[positions] = weights[order]
                # Chunk-sized cursor advance (``bincount(minlength=n)`` would
                # allocate a full-length transient per chunk).
                uniq, counts = np.unique(grouped, return_counts=True)
                cursor[uniq] += counts

            for src, dst, weights_chunk in table.iter_edge_chunks():
                u = locate(src)
                v = locate(dst)
                w = np.asarray(weights_chunk, dtype=np.float64)
                scatter(views["fwd_t"], views["fwd_w"], fwd_cursor, u, v, w)
                scatter(views["rev_t"], views["rev_w"], rev_cursor, v, u, w)
            del views
        del fwd_cursor, rev_cursor

        # Flat id storage, not ``tolist()``: a list of n distinct boxed ints
        # costs ~36 bytes/node, which alone would break the continental
        # build's memory budget.  Every consumer indexes or iterates, and
        # ``array`` hands back plain ints either way.
        ids_arr = array("l")
        ids_arr.frombytes(ids_np.tobytes())
        return cls(
            ids_arr,
            fwd_offsets,
            fwd_targets,
            fwd_weights,
            rev_offsets,
            rev_targets,
            rev_weights,
            name=name or f"{table.name}-csr",
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        return len(self.fwd_targets)

    def size_bytes(self) -> int:
        """Approximate memory of the flat arrays (not the derived views)."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (
                self.fwd_offsets,
                self.fwd_targets,
                self.fwd_weights,
                self.rev_offsets,
                self.rev_targets,
                self.rev_weights,
            )
        )

    def adjacency_of(self, node_id: int) -> Tuple[Tuple[int, float], ...]:
        """Forward ``(neighbor_index, weight)`` pairs of ``node_id``."""
        return self.fwd_adj[self.index_of[node_id]]

    # ------------------------------------------------------------------
    # In-place weight patching (dynamic networks)
    # ------------------------------------------------------------------
    def patch_weight(
        self, source: int, target: int, old_weight: float, new_weight: float
    ) -> None:
        """Update one directed edge's weight without recompiling.

        Mirrors :meth:`RoadNetwork.update_edge_weight`'s choice among
        parallel edges: the patched entry is the *first* occurrence of
        ``(target, old_weight)`` in the source's span (adjacency order is
        preserved by construction, so this is the same physical edge the
        network updated).  Raises ``KeyError`` when no such entry exists --
        the snapshot would be silently stale otherwise.

        Buffer-backed snapshots (:meth:`from_buffers`) raise
        :class:`ImmutableSnapshotError` (a ``TypeError``): their arrays live
        in a shared segment mapped by other processes, so an in-place patch
        would mutate every worker's view at once.
        """
        if self.buffer_backed:
            raise ImmutableSnapshotError(
                "serving snapshots are immutable; refresh via re-publish "
                "(the snapshot's arrays live in a shared read-only segment "
                "mapped by other workers)"
            )
        u = self.index_of[source]
        v = self.index_of[target]
        self._patch_span(
            self.fwd_offsets, self.fwd_targets, self.fwd_weights, u, v, old_weight, new_weight
        )
        self.fwd_adj[u] = self._rezip(self.fwd_offsets, self.fwd_targets, self.fwd_weights, u)
        self._patch_span(
            self.rev_offsets, self.rev_targets, self.rev_weights, v, u, old_weight, new_weight
        )
        self.rev_adj[v] = self._rezip(self.rev_offsets, self.rev_targets, self.rev_weights, v)
        if new_weight <= 0.0:  # update_edge_weight validates > 0; stay safe
            self.has_nonpositive_weight = True
        # The accelerator's numpy views share the arrays' buffers, so the
        # weight change is already visible there; nothing to rebuild.

    @staticmethod
    def _patch_span(
        offsets: array,
        targets: array,
        weights: array,
        node: int,
        other: int,
        old_weight: float,
        new_weight: float,
    ) -> None:
        for position in range(offsets[node], offsets[node + 1]):
            if targets[position] == other and weights[position] == old_weight:
                weights[position] = new_weight
                return
        raise KeyError(
            f"no CSR entry for edge {node} -> {other} with weight {old_weight!r}"
        )

    @staticmethod
    def _rezip(
        offsets: array, targets: array, weights: array, node: int
    ) -> Tuple[Tuple[int, float], ...]:
        start, end = offsets[node], offsets[node + 1]
        return tuple(zip(targets[start:end], weights[start:end]))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CSRGraph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


class _FlatAdjacency:
    """Index-on-demand adjacency over flat (possibly shared) arrays.

    Quacks like the materialized ``fwd_adj`` list where the kernel needs it
    to -- ``view[u]`` yields the node's ``(neighbor_index, weight)`` tuple in
    adjacency order -- but zips each span on access instead of holding
    per-process tuple objects for the whole edge list.  Spans are tiny (road
    networks average ~2.3 edges/node), so the per-access zip is cheap while
    the savings scale with worker count.
    """

    __slots__ = ("_offsets", "_targets", "_weights")

    def __init__(self, offsets, targets, weights) -> None:
        self._offsets = offsets
        self._targets = targets
        self._weights = weights

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> Tuple[Tuple[int, float], ...]:
        start, end = self._offsets[index], self._offsets[index + 1]
        return tuple(zip(self._targets[start:end], self._weights[start:end]))

    def __iter__(self):
        return (self[i] for i in range(len(self)))

    def __eq__(self, other) -> bool:
        if isinstance(other, (list, tuple, _FlatAdjacency)):
            return len(self) == len(other) and all(
                self[i] == other[i] for i in range(len(self))
            )
        return NotImplemented
