"""Road-network substrate: graphs, generators, datasets, and algorithms."""

from repro.network.csr import CSRGraph
from repro.network.delta import EdgeUpdate, NetworkDelta, WeightChange
from repro.network.graph import Edge, Node, RoadNetwork
from repro.network.generators import (
    GeneratorConfig,
    generate_grid_network,
    generate_road_network,
)
from repro.network import algorithms, datasets, io

__all__ = [
    "CSRGraph",
    "Edge",
    "EdgeUpdate",
    "NetworkDelta",
    "Node",
    "RoadNetwork",
    "WeightChange",
    "GeneratorConfig",
    "generate_grid_network",
    "generate_road_network",
    "algorithms",
    "datasets",
    "io",
]
