"""Directed, weighted, spatially embedded road-network graph.

The paper (Section 2.1) models a road network as a directed weighted graph
``G = (V, E)`` where every node carries an identifier and Euclidean
coordinates ``<id, x, y>`` and every edge is a triplet ``<id_i, id_j, w_ij>``.
:class:`RoadNetwork` is that model, with the adjacency-list layout the
broadcast schemes serialize on the air.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.network.csr import CSRGraph, ImmutableSnapshotError
from repro.network.delta import NetworkDelta, WeightChange

__all__ = ["Node", "Edge", "RoadNetwork"]

#: Modulus of the fingerprint's 128-bit multiset sum (see ``fingerprint()``).
_FINGERPRINT_MOD = 1 << 128


def _element_hash(part: str) -> int:
    """128-bit hash of one fingerprint element (node or edge record)."""
    return int.from_bytes(hashlib.sha256(part.encode()).digest()[:16], "big")


@dataclass(frozen=True)
class Node:
    """A network node ``<id, x, y>`` (paper Section 2.1)."""

    node_id: int
    x: float
    y: float

    def coordinates(self) -> Tuple[float, float]:
        """Return the ``(x, y)`` coordinate pair."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Edge:
    """A directed edge ``<id_i, id_j, w_ij>`` (paper Section 2.1)."""

    source: int
    target: int
    weight: float

    def reversed(self) -> "Edge":
        """Return the edge with source and target swapped."""
        return Edge(self.target, self.source, self.weight)


class RoadNetwork:
    """A directed weighted graph with node coordinates.

    The class keeps both forward and reverse adjacency lists so that
    forward and backward Dijkstra searches (needed by the pre-computation
    indexes) are equally cheap.

    Parameters
    ----------
    name:
        Optional human-readable name (e.g. ``"germany"``) used by the
        experiment harness when reporting results.
    """

    def __init__(self, name: str = "road-network") -> None:
        self.name = name
        self._nodes: Dict[int, Node] = {}
        self._adjacency: Dict[int, List[Tuple[int, float]]] = {}
        self._reverse_adjacency: Dict[int, List[Tuple[int, float]]] = {}
        self._num_edges = 0
        self._fingerprint_cache: Optional[str] = None
        #: 128-bit multiset sum behind ``fingerprint()``; ``None`` until the
        #: first full computation, then maintained in O(1) per mutation.
        self._fingerprint_sum: Optional[int] = None
        # Pending-change tracking (see pending_delta()): weight changes are
        # coalesced per directed edge; structural mutations set a flag that
        # forces consumers onto the full-rebuild path.
        self._pending_changes: Dict[Tuple[int, int], WeightChange] = {}
        self._dirty_nodes: set = set()
        self._structurally_dirty = False
        # CSR snapshot cache (see csr_snapshot()): one compiled CSRGraph per
        # fingerprint, patched in place on weight updates and invalidated by
        # structural mutations, which change index maps and adjacency spans.
        self._csr: Optional[CSRGraph] = None
        self._csr_fingerprint: Optional[str] = None
        self._csr_builds = 0
        self._csr_patches = 0

    # ------------------------------------------------------------------
    # Fingerprint maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _node_element(node: Node) -> str:
        return f"n{node.node_id}:{node.x!r}:{node.y!r};"

    @staticmethod
    def _edge_element(source: int, target: int, weight: float) -> str:
        return f"e{source}>{target}:{weight!r};"

    def _fingerprint_add(self, part: str) -> None:
        self._fingerprint_cache = None
        if self._fingerprint_sum is not None:
            self._fingerprint_sum = (
                self._fingerprint_sum + _element_hash(part)
            ) % _FINGERPRINT_MOD

    def _fingerprint_remove(self, part: str) -> None:
        self._fingerprint_cache = None
        if self._fingerprint_sum is not None:
            self._fingerprint_sum = (
                self._fingerprint_sum - _element_hash(part)
            ) % _FINGERPRINT_MOD

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, x: float, y: float) -> Node:
        """Add (or replace) a node and return it."""
        node = Node(node_id, float(x), float(y))
        previous = self._nodes.get(node_id)
        if previous is None:
            self._adjacency[node_id] = []
            self._reverse_adjacency[node_id] = []
        else:
            self._fingerprint_remove(self._node_element(previous))
        self._nodes[node_id] = node
        self._fingerprint_add(self._node_element(node))
        self._structurally_dirty = True
        self._csr = None
        self._dirty_nodes.add(node_id)
        return node

    def add_edge(self, source: int, target: int, weight: float) -> Edge:
        """Add a directed edge; both endpoints must already exist."""
        if source not in self._nodes:
            raise KeyError(f"unknown source node {source}")
        if target not in self._nodes:
            raise KeyError(f"unknown target node {target}")
        if weight < 0:
            raise ValueError(f"edge weight must be non-negative, got {weight}")
        self._adjacency[source].append((target, float(weight)))
        self._reverse_adjacency[target].append((source, float(weight)))
        self._num_edges += 1
        self._fingerprint_add(self._edge_element(source, target, float(weight)))
        self._structurally_dirty = True
        self._csr = None
        self._dirty_nodes.update((source, target))
        return Edge(source, target, float(weight))

    def add_bidirectional_edge(self, a: int, b: int, weight: float) -> None:
        """Add the pair of directed edges ``a -> b`` and ``b -> a``."""
        self.add_edge(a, b, weight)
        self.add_edge(b, a, weight)

    def remove_edge(self, source: int, target: int) -> Edge:
        """Remove one directed edge ``source -> target`` and return it.

        With parallel edges, the minimum-weight one (the one shortest paths
        use) is removed.  Raises ``KeyError`` if no such edge exists.
        """
        weights = [w for t, w in self._adjacency.get(source, ()) if t == target]
        if not weights:
            raise KeyError(f"no edge {source} -> {target}")
        weight = min(weights)
        self._adjacency[source].remove((target, weight))
        self._reverse_adjacency[target].remove((source, weight))
        self._num_edges -= 1
        self._fingerprint_remove(self._edge_element(source, target, weight))
        self._structurally_dirty = True
        self._csr = None
        self._dirty_nodes.update((source, target))
        return Edge(source, target, weight)

    # ------------------------------------------------------------------
    # Dynamic weight updates
    # ------------------------------------------------------------------
    def update_edge_weight(self, source: int, target: int, weight: float) -> WeightChange:
        """Change the weight of the existing edge ``source -> target``.

        With parallel edges, the minimum-weight one (the one shortest paths
        use) is updated -- consistent with :meth:`edge_weight` and
        :meth:`remove_edge`.  Unlike :meth:`add_edge`, the new weight must be
        strictly positive: dynamic updates model travel costs (congestion,
        closures), and a non-positive cost would let a "closure" act as a
        free teleport.  Raises ``KeyError`` if the edge does not exist and
        ``ValueError`` for a non-positive weight.

        The change is recorded in the network's pending delta (see
        :meth:`pending_delta`), coalesced per edge, so the engine's
        incremental refresh knows exactly which edges moved and by how much.
        """
        new_weight = float(weight)
        if new_weight <= 0:
            raise ValueError(
                f"updated edge weight must be positive, got {weight}"
            )
        if self._csr is not None and self._csr.buffer_backed:
            # Refuse *before* touching the adjacency lists: the cached
            # snapshot maps a shared read-only segment, so the patch below
            # would fail after the dict state had already moved, leaving
            # network and snapshot permanently disagreeing.
            raise ImmutableSnapshotError(
                "serving snapshots are immutable; refresh via re-publish "
                f"(network {self.name!r} serves a shared-memory snapshot, "
                "so in-place weight updates cannot apply)"
            )
        neighbors = self._adjacency.get(source)
        if neighbors is None:
            raise KeyError(f"no edge {source} -> {target}")
        candidates = [(w, i) for i, (t, w) in enumerate(neighbors) if t == target]
        if not candidates:
            raise KeyError(f"no edge {source} -> {target}")
        old_weight, index = min(candidates)
        change = WeightChange(source, target, old_weight, new_weight)
        if new_weight == old_weight:
            return change
        neighbors[index] = (target, new_weight)
        reverse = self._reverse_adjacency[target]
        reverse[reverse.index((source, old_weight))] = (source, new_weight)
        self._fingerprint_remove(self._edge_element(source, target, old_weight))
        self._fingerprint_add(self._edge_element(source, target, new_weight))
        if self._csr is not None:
            # Weight-only delta: keep the snapshot fresh by patching the one
            # CSR entry in place instead of recompiling the arrays.
            self._csr.patch_weight(source, target, old_weight, new_weight)
            self._csr_patches += 1
            self._csr_fingerprint = self.fingerprint()
        self._dirty_nodes.update((source, target))
        key = (source, target)
        pending = self._pending_changes.get(key)
        if pending is None:
            self._pending_changes[key] = change
        elif pending.old_weight == new_weight:
            # The edge is back where the last refresh saw it: net no-op.
            del self._pending_changes[key]
        else:
            self._pending_changes[key] = WeightChange(
                source, target, pending.old_weight, new_weight
            )
        return change

    def apply_updates(self, updates: Iterable) -> List[WeightChange]:
        """Apply a batch of edge-weight updates and return the changes.

        Each update may be an :class:`~repro.network.delta.EdgeUpdate`, any
        object with ``source``/``target``/``weight`` attributes, or a plain
        ``(source, target, weight)`` tuple.  Updates are applied in order
        through :meth:`update_edge_weight`, so the same validation (and the
        same pending-delta coalescing) applies to every item.
        """
        changes: List[WeightChange] = []
        for update in updates:
            if hasattr(update, "source") and hasattr(update, "target"):
                source, target, weight = update.source, update.target, update.weight
            else:
                source, target, weight = update
            changes.append(self.update_edge_weight(source, target, weight))
        return changes

    def pending_delta(self) -> NetworkDelta:
        """A snapshot of everything changed since :meth:`clear_delta`.

        The engine's :meth:`~repro.engine.system.AirSystem.refresh` reads
        this to route cached schemes through their incremental rebuilds
        (weight-only deltas) or a full rebuild (structural deltas).
        """
        return NetworkDelta(
            changes=tuple(self._pending_changes.values()),
            structural=self._structurally_dirty,
            dirty_nodes=frozenset(self._dirty_nodes),
        )

    def clear_delta(self) -> None:
        """Reset pending-change tracking (the current state is the baseline)."""
        self._pending_changes.clear()
        self._dirty_nodes.clear()
        self._structurally_dirty = False

    @property
    def has_pending_delta(self) -> bool:
        """``True`` when mutations happened since the last :meth:`clear_delta`."""
        return bool(
            self._pending_changes or self._dirty_nodes or self._structurally_dirty
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the network."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the network."""
        return self._num_edges

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> Node:
        """Return the :class:`Node` for ``node_id``."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """Return ``True`` if ``node_id`` is a node of the network."""
        return node_id in self._nodes

    def has_edge(self, source: int, target: int) -> bool:
        """Return ``True`` if the directed edge ``source -> target`` exists."""
        return any(t == target for t, _ in self._adjacency.get(source, ()))

    def edge_weight(self, source: int, target: int) -> float:
        """Return the weight of ``source -> target``.

        If parallel edges exist, the minimum weight is returned (the one any
        shortest path would use).
        """
        weights = [w for t, w in self._adjacency.get(source, ()) if t == target]
        if not weights:
            raise KeyError(f"no edge {source} -> {target}")
        return min(weights)

    def node_ids(self) -> List[int]:
        """Return all node identifiers (insertion order)."""
        return list(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all :class:`Node` objects."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all directed :class:`Edge` objects."""
        for source, neighbors in self._adjacency.items():
            for target, weight in neighbors:
                yield Edge(source, target, weight)

    def neighbors(self, node_id: int) -> List[Tuple[int, float]]:
        """Return the out-neighbors of ``node_id`` as ``(target, weight)``."""
        return list(self._adjacency[node_id])

    def in_neighbors(self, node_id: int) -> List[Tuple[int, float]]:
        """Return the in-neighbors of ``node_id`` as ``(source, weight)``."""
        return list(self._reverse_adjacency[node_id])

    def out_degree(self, node_id: int) -> int:
        """Number of outgoing edges of ``node_id``."""
        return len(self._adjacency[node_id])

    def in_degree(self, node_id: int) -> int:
        """Number of incoming edges of ``node_id``."""
        return len(self._reverse_adjacency[node_id])

    def adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        """Return the forward adjacency mapping (shared, do not mutate)."""
        return self._adjacency

    def reverse_adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        """Return the reverse adjacency mapping (shared, do not mutate)."""
        return self._reverse_adjacency

    def coordinates(self, node_id: int) -> Tuple[float, float]:
        """Return the ``(x, y)`` coordinates of ``node_id``."""
        node = self._nodes[node_id]
        return (node.x, node.y)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)`` over all nodes."""
        if not self._nodes:
            raise ValueError("bounding box of an empty network is undefined")
        xs = [node.x for node in self._nodes.values()]
        ys = [node.y for node in self._nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    def euclidean_distance(self, a: int, b: int) -> float:
        """Euclidean distance between the coordinates of nodes ``a`` and ``b``."""
        node_a = self._nodes[a]
        node_b = self._nodes[b]
        return ((node_a.x - node_b.x) ** 2 + (node_a.y - node_b.y) ** 2) ** 0.5

    def total_weight(self) -> float:
        """Sum of all edge weights (used for sanity statistics)."""
        return sum(w for neighbors in self._adjacency.values() for _, w in neighbors)

    # ------------------------------------------------------------------
    # Derived networks
    # ------------------------------------------------------------------
    def subgraph(self, node_ids: Iterable[int], name: Optional[str] = None) -> "RoadNetwork":
        """Return the induced subgraph over ``node_ids``.

        Edges are kept only when both endpoints are inside the node set.
        The air-index clients use this to run Dijkstra in the union of the
        received regions.
        """
        keep = set(node_ids)
        sub = RoadNetwork(name=name or f"{self.name}-subgraph")
        for node_id in keep:
            node = self._nodes[node_id]
            sub.add_node(node.node_id, node.x, node.y)
        for node_id in keep:
            for target, weight in self._adjacency[node_id]:
                if target in keep:
                    sub.add_edge(node_id, target, weight)
        sub.clear_delta()  # a finished artifact, not a pile of pending updates
        return sub

    def reversed(self) -> "RoadNetwork":
        """Return a copy of the network with every edge direction flipped."""
        rev = RoadNetwork(name=f"{self.name}-reversed")
        for node in self._nodes.values():
            rev.add_node(node.node_id, node.x, node.y)
        for source, neighbors in self._adjacency.items():
            for target, weight in neighbors:
                rev.add_edge(target, source, weight)
        rev.clear_delta()
        return rev

    def copy(self) -> "RoadNetwork":
        """Return a deep copy of the network."""
        dup = RoadNetwork(name=self.name)
        for node in self._nodes.values():
            dup.add_node(node.node_id, node.x, node.y)
        for source, neighbors in self._adjacency.items():
            for target, weight in neighbors:
                dup.add_edge(source, target, weight)
        dup.clear_delta()
        return dup

    # ------------------------------------------------------------------
    # Connectivity helpers
    # ------------------------------------------------------------------
    def weakly_connected_components(self) -> List[List[int]]:
        """Return the weakly connected components (lists of node ids)."""
        seen: Dict[int, bool] = {}
        components: List[List[int]] = []
        for start in self._nodes:
            if start in seen:
                continue
            stack = [start]
            seen[start] = True
            component = []
            while stack:
                current = stack.pop()
                component.append(current)
                for neighbor, _ in self._adjacency[current]:
                    if neighbor not in seen:
                        seen[neighbor] = True
                        stack.append(neighbor)
                for neighbor, _ in self._reverse_adjacency[current]:
                    if neighbor not in seen:
                        seen[neighbor] = True
                        stack.append(neighbor)
            components.append(component)
        return components

    def largest_component(self) -> "RoadNetwork":
        """Return the induced subgraph of the largest weakly connected component."""
        components = self.weakly_connected_components()
        if not components:
            return RoadNetwork(name=self.name)
        largest = max(components, key=len)
        return self.subgraph(largest, name=self.name)

    def is_weakly_connected(self) -> bool:
        """Return ``True`` if the network forms a single weak component."""
        if not self._nodes:
            return True
        return len(self.weakly_connected_components()) == 1

    def fingerprint(self) -> str:
        """A stable digest of the network's structure and weights.

        Two networks with the same nodes, coordinates, edges and weights get
        the same fingerprint regardless of insertion order.  The engine uses
        it to key cached broadcast cycles, so a rebuilt-but-identical network
        hits the cache while any topological change misses it.

        The digest is the 128-bit sum, modulo ``2**128``, of one sha256-based
        hash per element (node records and edge records), i.e. a multiset
        hash.  That construction is what makes dynamic networks cheap: every
        mutating method (``add_node``/``add_edge``/``remove_edge``/
        ``update_edge_weight``) adjusts the sum in O(1) instead of forcing an
        O(V + E) re-hash, so the engine can re-key its cycle cache after each
        weight-update batch at constant cost.  The full sum is computed
        lazily on first use; repeated calls on an unchanged network cost a
        dictionary read.
        """
        if self._fingerprint_cache is not None:
            return self._fingerprint_cache
        if self._fingerprint_sum is None:
            total = 0
            for node in self._nodes.values():
                total += _element_hash(self._node_element(node))
                for target, weight in self._adjacency[node.node_id]:
                    total += _element_hash(self._edge_element(node.node_id, target, weight))
            self._fingerprint_sum = total % _FINGERPRINT_MOD
        self._fingerprint_cache = f"{self._fingerprint_sum:032x}"
        return self._fingerprint_cache

    # ------------------------------------------------------------------
    # CSR snapshots (the array kernel's input)
    # ------------------------------------------------------------------
    def csr_snapshot(self) -> Optional[CSRGraph]:
        """The cached CSR snapshot, or ``None`` when absent or stale.

        The cache is keyed by :meth:`fingerprint`: structural mutations drop
        the snapshot outright (index maps and spans change), while
        :meth:`update_edge_weight` patches it in place and re-keys it, so a
        weight-only update stream never pays a recompile.  The shortest path
        entry points in :mod:`repro.network.algorithms.dijkstra` dispatch to
        the array kernel exactly when this returns a snapshot.
        """
        if self._csr is not None and self._csr_fingerprint == self.fingerprint():
            return self._csr
        return None

    def ensure_csr(self) -> CSRGraph:
        """The fresh CSR snapshot, compiling one if absent or stale."""
        snapshot = self.csr_snapshot()
        if snapshot is None:
            snapshot = CSRGraph.from_network(self)
            self._csr = snapshot
            self._csr_fingerprint = self.fingerprint()
            self._csr_builds += 1
        return snapshot

    def adopt_csr(self, snapshot: CSRGraph) -> CSRGraph:
        """Install an externally compiled CSR snapshot for the current state.

        Serving workers map one shared-memory snapshot per published cycle
        (:meth:`CSRGraph.from_buffers`) instead of each compiling their own;
        adopting it keys the cache to the network's current fingerprint so
        :meth:`csr_snapshot` serves the shared arrays to every shortest path
        run.  Only shape is sanity-checked here -- the caller vouches that
        the snapshot was compiled from a network with this fingerprint (the
        serving layer pins both to the same artifact publication).
        """
        if (
            snapshot.num_nodes != self.num_nodes
            or snapshot.num_edges != self.num_edges
        ):
            raise ValueError(
                f"snapshot shape ({snapshot.num_nodes} nodes, "
                f"{snapshot.num_edges} edges) does not match network "
                f"({self.num_nodes} nodes, {self.num_edges} edges)"
            )
        self._csr = snapshot
        self._csr_fingerprint = self.fingerprint()
        return snapshot

    def csr_stats(self) -> Dict[str, int]:
        """Snapshot cache counters (surfaced by ``AirSystem.cache_info``)."""
        return {
            "builds": self._csr_builds,
            "patches": self._csr_patches,
            "fresh": int(self.csr_snapshot() is not None),
        }

    # ------------------------------------------------------------------
    # Representation
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"RoadNetwork(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )

    def validate(self) -> None:
        """Raise ``ValueError`` if internal invariants are violated.

        Checked invariants: adjacency endpoints exist, weights are
        non-negative, and the forward/reverse adjacency lists agree.
        """
        forward_count = 0
        for source, neighbors in self._adjacency.items():
            if source not in self._nodes:
                raise ValueError(f"adjacency references unknown node {source}")
            for target, weight in neighbors:
                forward_count += 1
                if target not in self._nodes:
                    raise ValueError(f"edge {source}->{target} targets unknown node")
                if weight < 0:
                    raise ValueError(f"edge {source}->{target} has negative weight")
        reverse_count = sum(len(v) for v in self._reverse_adjacency.values())
        if forward_count != reverse_count or forward_count != self._num_edges:
            raise ValueError(
                "forward/reverse adjacency disagree: "
                f"{forward_count} vs {reverse_count} vs {self._num_edges}"
            )


def build_network(
    nodes: Sequence[Tuple[int, float, float]],
    edges: Sequence[Tuple[int, int, float]],
    name: str = "road-network",
) -> RoadNetwork:
    """Convenience constructor from plain node and edge tuples."""
    network = RoadNetwork(name=name)
    for node_id, x, y in nodes:
        network.add_node(node_id, x, y)
    for source, target, weight in edges:
        network.add_edge(source, target, weight)
    network.clear_delta()
    return network
