"""Synthetic road-network generators.

The paper evaluates on five real road networks (Milan, Germany, Argentina,
India, San Francisco).  Those datasets are not redistributable, so this module
builds synthetic networks with the same *structural* properties that the
algorithms depend on:

* planar, spatially embedded topology (nodes have meaningful x/y coordinates),
* low average degree (road networks average roughly 2-2.6 directed edges per
  node),
* edge weights correlated with Euclidean length (plus noise, so that no exact
  Euclidean lower bound holds -- the paper explicitly assumes *general*
  networks where A* lower bounds are unavailable), and
* a single weakly connected component.

The generator starts from a perturbed grid (which gives planarity and a road
like degree distribution), removes a random fraction of edges to reach a
target edge count, adds a few "highway" shortcuts, and keeps the largest
component.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.network.graph import RoadNetwork

__all__ = ["GeneratorConfig", "generate_grid_network", "generate_road_network"]


@dataclass
class GeneratorConfig:
    """Parameters controlling synthetic road-network generation.

    Attributes
    ----------
    num_nodes:
        Target number of nodes.  The realized count may be slightly smaller
        because the generator keeps only the largest weakly connected
        component.
    num_edges:
        Target number of *directed* edges.  The generator aims for this count
        by pruning grid edges; the realized count is approximate.
    coordinate_extent:
        Side length of the square area nodes are embedded in.
    weight_noise:
        Relative noise applied to Euclidean edge lengths when deriving
        weights (``0.3`` means weights vary within +/-30% of the Euclidean
        length).  Non-zero noise guarantees the Euclidean distance is *not*
        a valid lower bound, matching the paper's "general network"
        assumption.
    jitter:
        Fraction of one grid cell by which node coordinates are perturbed.
    shortcut_fraction:
        Fraction of nodes that receive an extra longer-range "highway" edge.
    seed:
        Seed for the deterministic pseudo-random generator.
    """

    num_nodes: int
    num_edges: int
    coordinate_extent: float = 10_000.0
    weight_noise: float = 0.3
    jitter: float = 0.35
    shortcut_fraction: float = 0.01
    seed: int = 0


def generate_grid_network(
    rows: int,
    cols: int,
    extent: float = 1_000.0,
    seed: int = 0,
    weight_noise: float = 0.0,
    name: str = "grid",
) -> RoadNetwork:
    """Generate a bidirectional grid network of ``rows x cols`` nodes.

    Grid networks are used heavily in unit tests because their shortest
    paths are easy to reason about (with ``weight_noise=0`` all edges in a
    row/column cost the same).
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    rng = random.Random(seed)
    network = RoadNetwork(name=name)
    dx = extent / max(cols - 1, 1)
    dy = extent / max(rows - 1, 1)

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            network.add_node(node_id(r, c), c * dx, r * dy)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                weight = dx * _noise_factor(rng, weight_noise)
                network.add_bidirectional_edge(node_id(r, c), node_id(r, c + 1), weight)
            if r + 1 < rows:
                weight = dy * _noise_factor(rng, weight_noise)
                network.add_bidirectional_edge(node_id(r, c), node_id(r + 1, c), weight)
    network.clear_delta()  # construction is not a pending update stream
    return network


def generate_road_network(config: GeneratorConfig, name: str = "synthetic") -> RoadNetwork:
    """Generate a synthetic road network per :class:`GeneratorConfig`.

    The construction follows four steps:

    1. lay out an approximately square grid with jittered coordinates,
    2. connect neighboring grid cells bidirectionally,
    3. prune random edges until the directed edge count approaches the
       target (never disconnecting the graph on purpose -- the largest
       component is kept at the end), and
    4. add sparse longer-range shortcuts ("highways").
    """
    if config.num_nodes < 4:
        raise ValueError("synthetic networks need at least 4 nodes")
    rng = random.Random(config.seed)

    cols = max(2, int(math.sqrt(config.num_nodes)))
    rows = max(2, (config.num_nodes + cols - 1) // cols)
    extent = config.coordinate_extent
    dx = extent / max(cols - 1, 1)
    dy = extent / max(rows - 1, 1)

    network = RoadNetwork(name=name)
    positions: List[Tuple[int, float, float]] = []
    count = 0
    for r in range(rows):
        for c in range(cols):
            if count >= config.num_nodes:
                break
            x = c * dx + rng.uniform(-config.jitter, config.jitter) * dx
            y = r * dy + rng.uniform(-config.jitter, config.jitter) * dy
            network.add_node(count, x, y)
            positions.append((count, x, y))
            count += 1

    def node_id(r: int, c: int) -> Optional[int]:
        idx = r * cols + c
        return idx if idx < count else None

    # Candidate bidirectional grid edges.
    candidates: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            here = node_id(r, c)
            if here is None:
                continue
            right = node_id(r, c + 1) if c + 1 < cols else None
            down = node_id(r + 1, c) if r + 1 < rows else None
            if right is not None:
                candidates.append((here, right))
            if down is not None:
                candidates.append((here, down))

    # Each kept candidate contributes two directed edges. Shortcuts add a few
    # more, so aim slightly below the target.
    num_shortcuts = int(config.shortcut_fraction * count)
    target_pairs = max(count - 1, (config.num_edges - 2 * num_shortcuts) // 2)
    rng.shuffle(candidates)

    # Keep a random spanning tree of the grid first so the network stays
    # connected (real road networks are), then fill up to the target with the
    # remaining candidates.
    parent = list(range(count))

    def find(node: int) -> int:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    tree_pairs = []
    extra_pairs = []
    for a, b in candidates:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b
            tree_pairs.append((a, b))
        else:
            extra_pairs.append((a, b))
    remaining = max(0, target_pairs - len(tree_pairs))
    kept = tree_pairs + extra_pairs[:remaining]

    for a, b in kept:
        euclid = network.euclidean_distance(a, b)
        weight = max(euclid, 1e-9) * _noise_factor(rng, config.weight_noise)
        network.add_bidirectional_edge(a, b, weight)

    # Highway shortcuts between random node pairs that are a few cells apart.
    node_ids = network.node_ids()
    for _ in range(num_shortcuts):
        a = rng.choice(node_ids)
        b = rng.choice(node_ids)
        if a == b:
            continue
        euclid = network.euclidean_distance(a, b)
        # Highways are faster than surface streets: weight below Euclidean
        # noise ceiling but never below 60% of the straight-line length.
        weight = max(euclid * rng.uniform(0.6, 0.9), 1e-9)
        network.add_bidirectional_edge(a, b, weight)

    connected = network.largest_component()
    connected.name = name
    connected.validate()
    return connected


def _noise_factor(rng: random.Random, noise: float) -> float:
    """Return a multiplicative noise factor in ``[1 - noise, 1 + noise]``."""
    if noise <= 0:
        return 1.0
    return 1.0 + rng.uniform(-noise, noise)
