"""Plain-text persistence for road networks.

The format is the common node-list / edge-list pair used by road-network
benchmarks::

    # nodes
    n <id> <x> <y>
    ...
    # edges
    e <source> <target> <weight>
    ...

Both sections live in a single file; lines starting with ``#`` are comments.
"""

from __future__ import annotations

import math
import os
from typing import Union

from repro.network.graph import RoadNetwork

__all__ = ["save_network", "load_network"]


def save_network(network: RoadNetwork, path: Union[str, os.PathLike]) -> None:
    """Write ``network`` to ``path`` in the node/edge list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# road network: {network.name}\n")
        handle.write(f"# nodes: {network.num_nodes} edges: {network.num_edges}\n")
        for node in network.nodes():
            handle.write(f"n {node.node_id} {node.x!r} {node.y!r}\n")
        for edge in network.edges():
            handle.write(f"e {edge.source} {edge.target} {edge.weight!r}\n")


def load_network(path: Union[str, os.PathLike], name: str = "") -> RoadNetwork:
    """Read a network previously written by :func:`save_network`.

    Malformed input is rejected with a ``ValueError`` whose message starts
    with ``{path}:{line}``: unrecognized lines, duplicate node ids (which
    ``RoadNetwork.add_node`` would otherwise silently overwrite), edges
    referencing undeclared nodes (otherwise a bare ``KeyError`` from deep
    inside the graph), and NaN or infinite coordinates or weights.
    """
    network = RoadNetwork(name=name or os.path.basename(str(path)))
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if fields[0] == "n" and len(fields) == 4:
                try:
                    node_id = int(fields[1])
                    x = float(fields[2])
                    y = float(fields[3])
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: malformed node line {line!r}"
                    ) from None
                if network.has_node(node_id):
                    raise ValueError(
                        f"{path}:{line_number}: duplicate node id {node_id}"
                    )
                if not (math.isfinite(x) and math.isfinite(y)):
                    raise ValueError(
                        f"{path}:{line_number}: non-finite coordinates "
                        f"({fields[2]}, {fields[3]}) for node {node_id}"
                    )
                network.add_node(node_id, x, y)
            elif fields[0] == "e" and len(fields) == 4:
                try:
                    source = int(fields[1])
                    target = int(fields[2])
                    weight = float(fields[3])
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: malformed edge line {line!r}"
                    ) from None
                if not math.isfinite(weight):
                    raise ValueError(
                        f"{path}:{line_number}: non-finite weight {fields[3]} "
                        f"on edge {source} -> {target}"
                    )
                for endpoint in (source, target):
                    if not network.has_node(endpoint):
                        raise ValueError(
                            f"{path}:{line_number}: edge references "
                            f"undeclared node {endpoint}"
                        )
                network.add_edge(source, target, weight)
            else:
                raise ValueError(f"{path}:{line_number}: unrecognized line {line!r}")
    network.clear_delta()  # a loaded file is a baseline, not pending updates
    return network
