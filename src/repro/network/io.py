"""Plain-text persistence for road networks.

The format is the common node-list / edge-list pair used by road-network
benchmarks::

    # nodes
    n <id> <x> <y>
    ...
    # edges
    e <source> <target> <weight>
    ...

Both sections live in a single file; lines starting with ``#`` are comments.
"""

from __future__ import annotations

import os
from typing import Union

from repro.network.graph import RoadNetwork

__all__ = ["save_network", "load_network"]


def save_network(network: RoadNetwork, path: Union[str, os.PathLike]) -> None:
    """Write ``network`` to ``path`` in the node/edge list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# road network: {network.name}\n")
        handle.write(f"# nodes: {network.num_nodes} edges: {network.num_edges}\n")
        for node in network.nodes():
            handle.write(f"n {node.node_id} {node.x!r} {node.y!r}\n")
        for edge in network.edges():
            handle.write(f"e {edge.source} {edge.target} {edge.weight!r}\n")


def load_network(path: Union[str, os.PathLike], name: str = "") -> RoadNetwork:
    """Read a network previously written by :func:`save_network`."""
    network = RoadNetwork(name=name or os.path.basename(str(path)))
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if fields[0] == "n" and len(fields) == 4:
                network.add_node(int(fields[1]), float(fields[2]), float(fields[3]))
            elif fields[0] == "e" and len(fields) == 4:
                network.add_edge(int(fields[1]), int(fields[2]), float(fields[3]))
            else:
                raise ValueError(f"{path}:{line_number}: unrecognized line {line!r}")
    network.clear_delta()  # a loaded file is a baseline, not pending updates
    return network
