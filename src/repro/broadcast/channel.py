"""Broadcast channel simulator and client tuning sessions.

A :class:`ClientSession` models one client processing one query:

* the client *tunes in* at an arbitrary packet position,
* it may *receive* packets (each received packet counts toward tuning time
  and may be lost, per the channel's :class:`PacketLossModel`),
* it may *sleep* until a later packet position (no tuning cost), and
* at the end, its tuning time is the number of packets received and its
  access latency the number of packets elapsed since tune-in (paper
  Section 3.1).

Positions are *global*: they increase monotonically across cycle repetitions
(the server transmits identical cycles back to back), while
``position % cycle.total_packets`` gives the offset within the cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.packet import Segment

__all__ = ["PacketLossModel", "SegmentReception", "ClientSession", "BroadcastChannel"]


class PacketLossModel:
    """Independent (Bernoulli) per-packet loss with a fixed rate."""

    def __init__(self, loss_rate: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.loss_rate = loss_rate
        self._rng = random.Random(seed)

    def is_lost(self) -> bool:
        """Whether the next received packet is lost."""
        if self.loss_rate == 0.0:
            return False
        return self._rng.random() < self.loss_rate


@dataclass
class SegmentReception:
    """Outcome of receiving (part of) a segment."""

    segment: Segment
    #: Global packet position where the receive started.
    start_position: int
    #: Packet offsets *within the segment* that were requested.
    requested_offsets: List[int] = field(default_factory=list)
    #: Subset of requested offsets that were lost on the air.
    lost_offsets: List[int] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """``True`` when no requested packet was lost."""
        return not self.lost_offsets

    @property
    def packets_received(self) -> int:
        """Number of packets the radio listened to for this reception."""
        return len(self.requested_offsets)


class ClientSession:
    """One client's interaction with the broadcast channel for one query."""

    def __init__(
        self,
        cycle: BroadcastCycle,
        start_position: int,
        loss_model: Optional[PacketLossModel] = None,
    ) -> None:
        self.cycle = cycle
        self.start_position = start_position
        self.position = start_position
        self.loss_model = loss_model or PacketLossModel(0.0)
        self.tuning_packets = 0
        self.lost_packets = 0

    # ------------------------------------------------------------------
    # Elementary operations
    # ------------------------------------------------------------------
    def sleep_until(self, global_position: int) -> None:
        """Doze (radio off) until ``global_position``; no tuning cost."""
        if global_position < self.position:
            raise ValueError(
                f"cannot sleep backwards: at {self.position}, asked for {global_position}"
            )
        self.position = global_position

    def receive_one_packet(self) -> Segment:
        """Receive the packet currently on the air and advance one position.

        Used by clients right after tuning in, to read the pointer to the
        next index copy that every packet carries.
        """
        segment = self.cycle.segment_at(self.position)
        self._charge(1)
        self.position += 1
        return segment

    def receive_segment(self, name: str) -> SegmentReception:
        """Sleep until the named segment is next on the air and receive all of it."""
        segment = self.cycle.segment(name)
        return self.receive_segment_packets(name, range(segment.num_packets))

    def receive_segment_packets(
        self, name: str, packet_offsets: Sequence[int]
    ) -> SegmentReception:
        """Receive only the given packet offsets of the named segment.

        The client sleeps until the segment's next broadcast, listens only
        during the requested offsets (sleeping through the others), and ends
        positioned right after the last requested packet.
        """
        segment = self.cycle.segment(name)
        offsets = sorted(set(int(o) for o in packet_offsets))
        if not offsets:
            raise ValueError("packet_offsets must be non-empty")
        if offsets[0] < 0 or offsets[-1] >= segment.num_packets:
            raise ValueError(
                f"packet offsets {offsets} outside segment of {segment.num_packets} packets"
            )
        segment_start = self.cycle.next_segment_named(name, self.position)
        self.sleep_until(segment_start + offsets[0])
        lost: List[int] = []
        for offset in offsets:
            self.sleep_until(segment_start + offset)
            self._charge(1)
            self.position = segment_start + offset + 1
            if self.loss_model.is_lost():
                lost.append(offset)
                self.lost_packets += 1
        return SegmentReception(
            segment=segment,
            start_position=segment_start,
            requested_offsets=offsets,
            lost_offsets=lost,
        )

    def receive_full_cycle(self, max_retry_cycles: int = 50) -> int:
        """Receive one entire broadcast cycle starting from the current packet.

        This is what the full-cycle adaptations (Dijkstra, ArcFlag, Landmark)
        do: listen to every packet of one cycle, wherever the client happens
        to have tuned in.  Packets lost on the air are re-received in later
        cycle repetitions (charging tuning time again and extending the
        access latency), because a missing adjacency list would make the
        local search incorrect (paper Section 6.2).

        Returns the total number of packets received, retries included.
        """
        total = self.cycle.total_packets
        lost_offsets: List[int] = []
        for _ in range(total):
            self._charge(1)
            if self.loss_model.is_lost():
                lost_offsets.append(self.position % total)
                self.lost_packets += 1
            self.position += 1

        retries = 0
        received = total
        while lost_offsets and retries < max_retry_cycles:
            retries += 1
            still_lost: List[int] = []
            for offset in sorted(lost_offsets, key=lambda o: (o - self.position) % total):
                delta = (offset - self.position) % total
                self.sleep_until(self.position + delta)
                self._charge(1)
                received += 1
                self.position += 1
                if self.loss_model.is_lost():
                    still_lost.append(offset)
                    self.lost_packets += 1
            lost_offsets = still_lost
        return received

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def elapsed_packets(self) -> int:
        """Access latency so far: packets elapsed since tune-in."""
        return self.position - self.start_position

    def _charge(self, packets: int) -> None:
        self.tuning_packets += packets

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ClientSession(start={self.start_position}, position={self.position}, "
            f"tuned={self.tuning_packets})"
        )


class BroadcastChannel:
    """A broadcast cycle transmitted repeatedly, with optional packet loss."""

    def __init__(
        self,
        cycle: BroadcastCycle,
        loss_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.cycle = cycle
        self.loss_rate = loss_rate
        self._seed = seed
        self._session_count = 0

    def session(self, tune_in_offset: Optional[int] = None) -> ClientSession:
        """Open a client session.

        ``tune_in_offset`` fixes the cycle offset at which the client tunes
        in; when omitted, a deterministic pseudo-random offset is drawn (so
        repeated experiment runs are reproducible but different queries see
        different phases of the cycle, as in the paper's evaluation).
        """
        self._session_count += 1
        rng = random.Random(self._seed * 1_000_003 + self._session_count)
        if tune_in_offset is None:
            tune_in_offset = rng.randrange(self.cycle.total_packets)
        loss = PacketLossModel(self.loss_rate, seed=rng.randrange(2**31))
        return ClientSession(self.cycle, tune_in_offset, loss)
