"""Vectorized fleet replay: columnar trace tables + bulk numpy passes.

:func:`repro.broadcast.replay.replay_trace` serves one device with O(ops)
packet arithmetic, but a fleet of N devices still pays a Python function
call (and a per-op rotation scan) per device.  This module turns the whole
fleet into a handful of array passes:

* a :class:`SessionTrace` compiles once into a :class:`TraceTable` -- the
  per-op kind / packet-count / last-offset / anchor fields as flat ``int64``
  columns, plus the rotation lookup tables;
* a :class:`BroadcastCycle` compiles once into a :class:`CycleLayout` --
  for each segment name, the sorted array of its on-air anchor offsets --
  so the per-op ``next_segment_named`` lookup becomes one
  ``np.searchsorted`` over all devices at once;
* :func:`replay_trace_bulk` then replays the trace for N tune-in positions
  in O(ops) vectorized passes, independent of N's Python-level cost.

**Bit-identity contract.**  For every device position, the bulk kernel
produces exactly the tuning time and access latency :func:`replay_trace`
would: the position-anchored head executes first, the body rotates to the
reception next on the air after the device's position (ties broken by
recorded op order, exactly as the scalar ``min`` does), and every segment
reception lands on the same global packet.  The property suite
(``tests/test_properties_replay_bulk.py``) asserts this across all seven
schemes; the scalar :func:`replay_trace` stays as the reference
implementation and as the fallback when numpy is absent.

How the per-device rotation stays vectorized: the rotated op sequence is a
cyclic shift of the trace body, so the kernel walks ``2 * len(body)``
steps; at step ``j`` it applies body op ``j % len(body)`` to exactly the
devices whose rotation start ``s`` satisfies ``s <= j < s + len(body)``.
Each step is one masked array pass, so the total work is O(ops) passes
regardless of how many distinct rotations the fleet spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.broadcast.replay import OpKind, SessionTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.broadcast.cycle import BroadcastCycle

__all__ = [
    "HAVE_NUMPY",
    "USE_BULK_REPLAY",
    "BulkReplayOutcome",
    "CycleLayout",
    "TraceTable",
    "numpy_or_none",
    "replay_trace_bulk",
]

try:  # pragma: no cover - exercised implicitly by whichever env runs the suite
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

#: Module-level switch (primarily for tests and A/B benchmarks): set to
#: ``False`` to force the fleet simulator onto the scalar per-device
#: :func:`~repro.broadcast.replay.replay_trace` loop even when numpy is
#: installed.  Mirrors ``repro.network.algorithms.kernel.USE_ACCELERATOR``.
USE_BULK_REPLAY = True

#: Integer op codes of the :class:`TraceTable` ``kinds`` column.
KIND_ONE_PACKET = 0
KIND_FULL_CYCLE = 1
KIND_SEGMENT = 2

_KIND_CODES = {
    OpKind.ONE_PACKET: KIND_ONE_PACKET,
    OpKind.FULL_CYCLE: KIND_FULL_CYCLE,
    OpKind.SEGMENT: KIND_SEGMENT,
}


def numpy_or_none():
    """The ``numpy`` module when the bulk path is importable *and* enabled."""
    return _np if (HAVE_NUMPY and USE_BULK_REPLAY) else None


def _require_numpy():
    if _np is None:  # pragma: no cover - numpy is present in CI and dev envs
        raise RuntimeError(
            "the vectorized replay kernel requires numpy; use "
            "repro.broadcast.replay.replay_trace (the scalar reference) instead"
        )
    return _np


class CycleLayout:
    """Compiled positional index of one :class:`BroadcastCycle`.

    For each segment name the layout holds the sorted ``int64`` array of the
    segment's on-air anchor offsets within the cycle (one entry per
    broadcast of the segment; exactly one today, since cycle segment names
    are unique -- the array form keeps multi-copy layouts possible).
    :meth:`next_starts` is the vectorized ``cycle.next_segment_named``: one
    ``np.searchsorted`` answers the "next broadcast of this segment after
    position p" question for every device at once.

    Layouts are immutable, like the cycles they compile (every incremental
    refresh path constructs a *new* cycle object); get one from
    :meth:`BroadcastCycle.compiled_layout`, which caches it per cycle.
    """

    __slots__ = ("total_packets", "names", "index_of", "anchors", "segment_packets")

    def __init__(self, cycle: "BroadcastCycle") -> None:
        np = _require_numpy()
        self.total_packets: int = cycle.total_packets
        self.names: Tuple[str, ...] = tuple(seg.name for seg in cycle.segments)
        self.index_of: Dict[str, int] = {
            name: position for position, name in enumerate(self.names)
        }
        self.anchors: Tuple["_np.ndarray", ...] = tuple(
            np.asarray([cycle.segment_start(name)], dtype=np.int64)
            for name in self.names
        )
        self.segment_packets: Tuple[int, ...] = tuple(
            seg.num_packets for seg in cycle.segments
        )

    def segment_anchors(self, name: str):
        """Sorted on-air anchor offsets of the named segment (``int64``)."""
        return self.anchors[self.index_of[name]]

    def next_starts(self, segment_index: int, positions):
        """Global start of the named segment's next broadcast, per position.

        Vectorized equivalent of ``cycle.next_segment_named(name, p)`` for
        an array of global positions ``p``: the smallest anchor at or after
        each position's cycle offset, wrapping into the next repetition when
        the segment already passed.
        """
        np = _np
        anchors = self.anchors[segment_index]
        offsets = positions % self.total_packets
        ranks = np.searchsorted(anchors, offsets, side="left")
        wrapped = ranks == len(anchors)
        ranks[wrapped] = 0
        starts = anchors[ranks]
        return positions - offsets + np.where(wrapped, starts + self.total_packets, starts)


class TraceTable:
    """One :class:`SessionTrace` as flat ``int64`` columns.

    Columns are per recorded op: ``kinds`` (the :data:`KIND_ONE_PACKET` /
    :data:`KIND_FULL_CYCLE` / :data:`KIND_SEGMENT` codes), ``packets``
    (packets the radio listened to), ``last_offsets`` (final listened packet
    offset within the segment), ``anchors`` (cycle offset of the op's first
    listened packet) and ``segment_index`` (the op's segment resolved to its
    :class:`CycleLayout` position; ``-1`` for non-segment ops), plus the
    cumulative-tuning prefix sums (``tuning_prefix``).  ``head_len`` splits
    the position-anchored head (the leading non-``SEGMENT`` reads) from the
    rotatable body; ``rotation_anchors`` / ``rotation_start`` are the body's
    sorted distinct segment-op anchors and, per anchor, the earliest body
    index holding it -- one ``np.searchsorted`` against a device's tune-in
    offset yields its rotation.
    """

    __slots__ = (
        "cycle_packets",
        "loss_rate",
        "tuning_packets",
        "num_ops",
        "head_len",
        "kinds",
        "packets",
        "last_offsets",
        "anchors",
        "segment_index",
        "tuning_prefix",
        "rotation_anchors",
        "rotation_start",
    )

    def __init__(self, trace: SessionTrace, layout: CycleLayout) -> None:
        np = _require_numpy()
        if trace.cycle_packets != layout.total_packets:
            raise ValueError(
                f"trace was recorded against a {trace.cycle_packets}-packet cycle, "
                f"got a layout of {layout.total_packets} packets"
            )
        ops = trace.ops
        count = len(ops)
        self.cycle_packets = trace.cycle_packets
        self.loss_rate = trace.loss_rate
        self.tuning_packets = trace.tuning_packets
        self.num_ops = count
        self.kinds = np.fromiter(
            (_KIND_CODES[op.kind] for op in ops), dtype=np.int64, count=count
        )
        self.packets = np.fromiter(
            (op.packets for op in ops), dtype=np.int64, count=count
        )
        self.last_offsets = np.fromiter(
            (op.last_offset for op in ops), dtype=np.int64, count=count
        )
        self.anchors = np.fromiter(
            (op.anchor for op in ops), dtype=np.int64, count=count
        )
        self.segment_index = np.fromiter(
            (
                layout.index_of[op.name] if op.kind is OpKind.SEGMENT else -1
                for op in ops
            ),
            dtype=np.int64,
            count=count,
        )
        self.tuning_prefix = np.cumsum(self.packets)

        head = 0
        while head < count and ops[head].kind is not OpKind.SEGMENT:
            head += 1
        self.head_len = head

        # Rotation lookup: the scalar replay rotates to the body segment op
        # minimizing ``((anchor - position) % total, op order)``.  For a
        # device offset q that is the op with the smallest anchor >= q
        # (wrapping to the smallest anchor overall), ties on equal anchors
        # going to the earliest op -- so one sorted distinct-anchor array
        # with the earliest body index per anchor answers every device.
        first_at_anchor: Dict[int, int] = {}
        for body_index in range(head, count):
            if ops[body_index].kind is OpKind.SEGMENT:
                anchor = ops[body_index].anchor
                if anchor not in first_at_anchor:
                    first_at_anchor[anchor] = body_index - head
        ordered = sorted(first_at_anchor.items())
        self.rotation_anchors = np.asarray(
            [anchor for anchor, _ in ordered], dtype=np.int64
        )
        self.rotation_start = np.asarray(
            [start for _, start in ordered], dtype=np.int64
        )

    @classmethod
    def compile(cls, trace: SessionTrace, layout: CycleLayout) -> "TraceTable":
        """Compile a recorded session into its columnar form."""
        return cls(trace, layout)


@dataclass(frozen=True)
class BulkReplayOutcome:
    """Channel-level metrics of N replayed sessions.

    ``tuning_packets`` is a scalar: tuning time is a property of the trace's
    reception multiset, not of the tune-in position, so every replayed
    device shares it.  ``access_latency_packets`` is an ``int64`` array
    aligned with the ``start_positions`` passed to
    :func:`replay_trace_bulk`.
    """

    tuning_packets: int
    access_latency_packets: "_np.ndarray"


def replay_trace_bulk(
    table: TraceTable, layout: CycleLayout, start_positions
) -> BulkReplayOutcome:
    """Replay one recorded packet stream for N devices in bulk array passes.

    Semantically ``[replay_trace(trace, cycle, p) for p in start_positions]``
    (bit-identical, asserted by the property suite and the fleet benchmark),
    but the cost is O(ops) vectorized passes over the position array rather
    than O(ops) Python work per device.
    """
    np = _require_numpy()
    if table.loss_rate != 0.0:
        raise ValueError(
            f"cannot replay a trace recorded under loss rate {table.loss_rate}; "
            "lossy sessions must be simulated natively"
        )
    if table.cycle_packets != layout.total_packets:
        raise ValueError(
            f"trace was recorded against a {table.cycle_packets}-packet cycle, "
            f"got one of {layout.total_packets} packets"
        )
    total = table.cycle_packets
    starts = np.asarray(start_positions, dtype=np.int64)
    positions = starts.copy()

    kinds = table.kinds
    last_offsets = table.last_offsets
    segment_index = table.segment_index

    # Position-anchored head: reads of "whatever is on the air right now".
    # Head ops are never SEGMENT receptions, so each is a constant advance.
    for op in range(table.head_len):
        positions += 1 if kinds[op] == KIND_ONE_PACKET else total

    body_len = table.num_ops - table.head_len
    if body_len:
        # Rotate to the reception next on the air after the current position:
        # one searchsorted over all devices at once.
        offsets = positions % total
        ranks = np.searchsorted(table.rotation_anchors, offsets, side="left")
        ranks[ranks == len(table.rotation_anchors)] = 0
        rotation = table.rotation_start[ranks]

        # The rotated sequence is a cyclic shift of the body: walk the body
        # twice, applying op ``j % body_len`` to the devices whose rotation
        # window covers step ``j``.
        for step in range(2 * body_len):
            body_op = step % body_len
            op = table.head_len + body_op
            active = (rotation <= step) & (step < rotation + body_len)
            kind = kinds[op]
            if kind == KIND_SEGMENT:
                segment_starts = layout.next_starts(int(segment_index[op]), positions)
                positions = np.where(
                    active, segment_starts + int(last_offsets[op]) + 1, positions
                )
            elif kind == KIND_ONE_PACKET:
                positions = np.where(active, positions + 1, positions)
            else:
                positions = np.where(active, positions + total, positions)

    return BulkReplayOutcome(
        tuning_packets=table.tuning_packets,
        access_latency_packets=positions - starts,
    )
