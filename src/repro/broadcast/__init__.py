"""Wireless broadcast substrate: packets, cycles, devices, channel simulator."""

from repro.broadcast.packet import PACKET_SIZE_BYTES, Segment, SegmentKind, packets_for_bytes
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.interleave import interleave_one_m, optimal_m
from repro.broadcast.device import (
    CHANNEL_2MBPS,
    CHANNEL_384KBPS,
    ChannelRate,
    DeviceProfile,
    J2ME_CLAMSHELL,
)
from repro.broadcast.channel import BroadcastChannel, ClientSession, PacketLossModel
from repro.broadcast.metrics import ClientMetrics, MemoryTracker, ServerMetrics
from repro.broadcast.replay import (
    RecordingSession,
    ReplayOutcome,
    SessionTrace,
    replay_trace,
)
from repro.broadcast.replay_bulk import (
    BulkReplayOutcome,
    CycleLayout,
    TraceTable,
    replay_trace_bulk,
)

__all__ = [
    "BulkReplayOutcome",
    "CycleLayout",
    "TraceTable",
    "replay_trace_bulk",
    "PACKET_SIZE_BYTES",
    "BroadcastChannel",
    "BroadcastCycle",
    "CHANNEL_2MBPS",
    "CHANNEL_384KBPS",
    "ChannelRate",
    "ClientMetrics",
    "ClientSession",
    "DeviceProfile",
    "J2ME_CLAMSHELL",
    "MemoryTracker",
    "PacketLossModel",
    "RecordingSession",
    "ReplayOutcome",
    "Segment",
    "SessionTrace",
    "replay_trace",
    "SegmentKind",
    "ServerMetrics",
    "interleave_one_m",
    "optimal_m",
    "packets_for_bytes",
]
