"""(1, m) index interleaving (paper Section 2.2, [Imielinski et al. 1997]).

In the (1, m) scheme the data are placed into ``m`` equi-sized segments
interleaved with ``m`` copies of the index.  The optimal balance between the
wait for the index and the wait for the data is achieved for

    m = sqrt(data_packets / index_packets).

EB follows this scheme but forces index copies to fall *between* regions so
that a region's adjacency data are never cut in two by index packets
(Section 4.1).  :func:`interleave_one_m` implements exactly that placement.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.broadcast.packet import Segment

__all__ = ["optimal_m", "interleave_one_m"]


def optimal_m(data_packets: int, index_packets: int) -> int:
    """The optimal number of index copies, ``sqrt(data/index)``, at least 1."""
    if data_packets < 0 or index_packets < 0:
        raise ValueError("packet counts must be non-negative")
    if index_packets == 0:
        return 1
    return max(1, int(round(math.sqrt(data_packets / index_packets))))


def interleave_one_m(
    data_segments: Sequence[Segment],
    index_segments: Sequence[Segment],
    m: int,
) -> List[Segment]:
    """Interleave ``m`` copies of the index between data segments.

    The data segments are split into ``m`` groups of consecutive segments
    with approximately equal packet counts; a copy of the index precedes each
    group.  Index copies are cloned with distinct names
    (``"<name>#copy<k>"``) so the resulting cycle has unique segment names.

    Because copies are placed only at data-segment boundaries, a region's
    data are never interrupted by index packets -- the EB requirement.
    """
    if m < 1:
        raise ValueError("m must be at least 1")
    if not data_segments:
        raise ValueError("need at least one data segment")
    data_segments = list(data_segments)
    index_segments = list(index_segments)
    m = min(m, len(data_segments))

    total_packets = sum(segment.num_packets for segment in data_segments)
    target_per_group = total_packets / m

    cycle: List[Segment] = []
    group_index = 0
    group_packets = 0.0
    cycle.extend(_clone_index(index_segments, 0))
    for position, segment in enumerate(data_segments):
        remaining_segments = len(data_segments) - position
        remaining_groups = m - group_index
        # Start a new group (and emit an index copy) when the current group
        # has reached its share, while keeping enough segments for the
        # remaining groups.
        if (
            group_index < m - 1
            and group_packets >= target_per_group
            and remaining_segments >= remaining_groups
        ):
            group_index += 1
            group_packets = 0.0
            cycle.extend(_clone_index(index_segments, group_index))
        cycle.append(segment)
        group_packets += segment.num_packets
    return cycle


def _clone_index(index_segments: Sequence[Segment], copy: int) -> List[Segment]:
    """Clone the index segments with per-copy unique names."""
    clones: List[Segment] = []
    for segment in index_segments:
        clones.append(
            Segment(
                name=f"{segment.name}#copy{copy}",
                kind=segment.kind,
                size_bytes=segment.size_bytes,
                region=segment.region,
                payload=segment.payload,
                metadata={**segment.metadata, "index_copy": copy},
            )
        )
    return clones
