"""Packets and segments of the broadcast cycle.

The broadcast cycle consists of fixed-size packets, "the smallest information
unit transmitted" (paper Section 2.2).  The paper fixes the packet size at
128 bytes in the evaluation (Section 7).  We model the cycle one level above
individual packets: a *segment* is a contiguous run of packets carrying one
logical unit (an index copy, a region's cross-border data, a local NR index,
...), sized in bytes and converted to packets by ceiling division.

Every packet, regardless of its contents, carries a small header with a
pointer (offset) to the next index copy in the cycle (paper Section 4.1);
:data:`PACKET_HEADER_BYTES` accounts for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "PACKET_SIZE_BYTES",
    "PACKET_HEADER_BYTES",
    "PACKET_PAYLOAD_BYTES",
    "Segment",
    "SegmentKind",
    "packets_for_bytes",
]

#: Fixed packet size used throughout the paper's evaluation (Section 7).
PACKET_SIZE_BYTES = 128

#: Per-packet header: 4-byte offset to the next index copy (Section 4.1)
#: plus a 4-byte packet sequence number / checksum.
PACKET_HEADER_BYTES = 8

#: Payload capacity of one packet.
PACKET_PAYLOAD_BYTES = PACKET_SIZE_BYTES - PACKET_HEADER_BYTES


class SegmentKind(enum.Enum):
    """What a segment of the broadcast cycle carries."""

    #: Global air index (EB's two components, or a full-cycle method's index).
    INDEX = "index"
    #: NR's per-region local index Am.
    LOCAL_INDEX = "local_index"
    #: Adjacency lists of a region's cross-border nodes.
    REGION_CROSS_BORDER = "region_cross_border"
    #: Adjacency lists of a region's local (non cross-border) nodes.
    REGION_LOCAL = "region_local"
    #: Adjacency lists without any region structure (full-cycle methods).
    NETWORK_DATA = "network_data"
    #: Pre-computed per-node/per-edge information (flags, vectors, quad-trees).
    PRECOMPUTED = "precomputed"


@dataclass
class Segment:
    """A contiguous run of packets carrying one logical unit.

    Attributes
    ----------
    name:
        Unique name within its cycle (e.g. ``"region-7-cross"``).
    kind:
        The :class:`SegmentKind` of the content.
    size_bytes:
        Payload bytes carried (before packetization).
    region:
        Region index this segment belongs to, when applicable.
    payload:
        Arbitrary server-side object describing the content; clients read it
        only after "receiving" the segment through a
        :class:`~repro.broadcast.channel.ClientSession`, which charges the
        corresponding tuning/latency/memory costs.
    metadata:
        Free-form annotations (e.g. which index copy this is).
    """

    name: str
    kind: SegmentKind
    size_bytes: int
    region: Optional[int] = None
    payload: Any = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_packets(self) -> int:
        """Number of packets the segment occupies on the air."""
        return packets_for_bytes(self.size_bytes)


def packets_for_bytes(size_bytes: int) -> int:
    """Packets needed to carry ``size_bytes`` of payload (at least 1)."""
    if size_bytes < 0:
        raise ValueError(f"size_bytes must be non-negative, got {size_bytes}")
    return max(1, -(-size_bytes // PACKET_PAYLOAD_BYTES))
