"""Performance factor accounting (paper Section 3.1).

The paper evaluates every method on five factors:

* **tuning time** -- packets received (determines energy),
* **memory** -- peak bytes held at the client,
* **access latency** -- packets elapsed between posing the query and
  receiving the last needed packet,
* **CPU time** -- client-side computation, and
* **pre-computation time** -- server-side, one-off.

:class:`ClientMetrics` records the first four for one query;
:class:`ServerMetrics` records the last together with the cycle size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.broadcast.device import ChannelRate, DeviceProfile

__all__ = ["MemoryTracker", "ClientMetrics", "ServerMetrics"]


class MemoryTracker:
    """Tracks the client's working-set size and its peak.

    The client allocates bytes when it retains received data or builds local
    structures, and releases bytes when it discards them (e.g. after turning
    a region into super-edges, Section 6.1).
    """

    def __init__(self) -> None:
        self._current = 0
        self._peak = 0

    def allocate(self, num_bytes: int) -> None:
        """Account for ``num_bytes`` newly held by the client."""
        if num_bytes < 0:
            raise ValueError("allocate() takes a non-negative byte count")
        self._current += num_bytes
        self._peak = max(self._peak, self._current)

    def release(self, num_bytes: int) -> None:
        """Account for ``num_bytes`` no longer held by the client."""
        if num_bytes < 0:
            raise ValueError("release() takes a non-negative byte count")
        self._current = max(0, self._current - num_bytes)

    @property
    def current_bytes(self) -> int:
        """Bytes currently held."""
        return self._current

    @property
    def peak_bytes(self) -> int:
        """Largest working set observed so far."""
        return self._peak


@dataclass
class ClientMetrics:
    """Per-query client-side measurements."""

    tuning_time_packets: int = 0
    access_latency_packets: int = 0
    peak_memory_bytes: int = 0
    cpu_seconds: float = 0.0
    lost_packets: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def tuning_time_seconds(self, rate: ChannelRate) -> float:
        """Time spent with the radio in receive state."""
        return rate.packets_to_seconds(self.tuning_time_packets)

    def access_latency_seconds(self, rate: ChannelRate) -> float:
        """Wall-clock responsiveness of the query at the given channel rate."""
        return rate.packets_to_seconds(self.access_latency_packets)

    def energy_joules(self, device: DeviceProfile, rate: ChannelRate) -> float:
        """Total energy charged to the device for this query."""
        return device.energy_joules(
            self.tuning_time_packets,
            self.access_latency_packets,
            self.cpu_seconds,
            rate,
        )

    def fits_device(self, device: DeviceProfile) -> bool:
        """Whether the peak working set fits the device heap (Table 2)."""
        return device.fits_in_heap(self.peak_memory_bytes)

    def merge_max(self, other: "ClientMetrics") -> "ClientMetrics":
        """Element-wise maximum (used when aggregating worst-case behaviour)."""
        return ClientMetrics(
            tuning_time_packets=max(self.tuning_time_packets, other.tuning_time_packets),
            access_latency_packets=max(
                self.access_latency_packets, other.access_latency_packets
            ),
            peak_memory_bytes=max(self.peak_memory_bytes, other.peak_memory_bytes),
            cpu_seconds=max(self.cpu_seconds, other.cpu_seconds),
            lost_packets=max(self.lost_packets, other.lost_packets),
        )


@dataclass
class ServerMetrics:
    """Server-side, one-off measurements for one broadcast scheme."""

    scheme: str
    cycle_packets: int
    cycle_bytes: int
    precomputation_seconds: float
    index_packets: int = 0
    data_packets: int = 0
    notes: Optional[str] = None
    #: Incremental cycle refreshes applied to this scheme (dynamic networks)
    #: and the total server time they cost; both stay zero for a scheme that
    #: was never refreshed in place.
    refreshes: int = 0
    refresh_seconds: float = 0.0

    def cycle_seconds(self, rate: ChannelRate) -> float:
        """Duration of one broadcast cycle at the given channel rate."""
        return rate.packets_to_seconds(self.cycle_packets)


def average_metrics(metrics: list) -> ClientMetrics:
    """Arithmetic mean of a list of :class:`ClientMetrics` (empty -> zeros)."""
    if not metrics:
        return ClientMetrics()
    count = len(metrics)
    return ClientMetrics(
        tuning_time_packets=int(round(sum(m.tuning_time_packets for m in metrics) / count)),
        access_latency_packets=int(
            round(sum(m.access_latency_packets for m in metrics) / count)
        ),
        peak_memory_bytes=int(round(sum(m.peak_memory_bytes for m in metrics) / count)),
        cpu_seconds=sum(m.cpu_seconds for m in metrics) / count,
        lost_packets=int(round(sum(m.lost_packets for m in metrics) / count)),
    )
