"""Shared-session fast path: record one tuning session, replay it per device.

A broadcast cycle serves an unbounded audience, and on a loss-free channel a
client's protocol is *data independent of time*: which packets it receives is
decided by its query (and, for the handful of position-dependent choices such
as "the next index copy on the air", by the segment boundary it tuned in
behind), never by the wall clock.  The fleet simulator exploits that: it runs
one real *probe* session per distinct query, materializes the probe's packet
stream as a :class:`SessionTrace`, and then *replays* the trace for every
further device with pure packet arithmetic -- no per-packet loops, no loss
draws, no local shortest path computation.

Replay semantics (documented contract, asserted by the tests):

* **Tuning time** is exact: it is the number of packets received, which is a
  property of the trace's reception multiset, not of the replay order.
* **Access latency** is exact for the full-cycle schemes (DJ, LD, AF, SPQ,
  whose reception order is the rotation of one fixed segment sequence): the
  replay rotates the recorded stream to start at the reception that is next
  on the air after the device's tune-in offset.  For selective-tuning schemes
  (EB, NR, HiTi) the rotated replay can differ from a freshly simulated
  session by up to the spacing between index copies, because the probe's
  concrete index copy is replayed instead of the copy nearest to the device.
* Replay is only valid for **lossless** sessions; lossy devices must be
  simulated natively (their per-packet Bernoulli draws are part of the
  result).  :func:`replay_trace` refuses traces recorded under loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property
from typing import List, Optional, Sequence, Tuple

from repro.broadcast.channel import ClientSession, PacketLossModel
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.packet import Segment

__all__ = [
    "OpKind",
    "TraceOp",
    "SessionTrace",
    "RecordingSession",
    "ReplayOutcome",
    "replay_trace",
]


class OpKind(Enum):
    """Kinds of elementary channel operations a client performs."""

    #: Read the packet currently on the air (used to find the next index).
    ONE_PACKET = "one-packet"
    #: Receive selected packet offsets of a named segment.
    SEGMENT = "segment"
    #: Listen to one entire cycle from the current position.
    FULL_CYCLE = "full-cycle"


@dataclass(frozen=True)
class TraceOp:
    """One recorded channel operation.

    ``SEGMENT`` ops are compacted to what replay arithmetic needs --
    ``packet_count`` (packets listened to) and ``last_offset`` (the final
    listened packet offset within the segment, which decides the end
    position) -- rather than the full offset list, so a trace stays O(ops)
    in memory even for whole-segment receptions.  ``anchor`` is the cycle
    offset at which the operation's first listened packet is broadcast, used
    to rotate the stream to a device's tune-in position.
    """

    kind: OpKind
    name: Optional[str] = None
    packet_count: int = 0
    last_offset: int = 0
    anchor: int = 0

    @property
    def packets(self) -> int:
        """Packets the radio listened to for this operation (retries, if the
        recording session was lossy, included)."""
        return 1 if self.kind is OpKind.ONE_PACKET else self.packet_count


@dataclass(frozen=True)
class SessionTrace:
    """The materialized packet stream of one recorded tuning session."""

    ops: Tuple[TraceOp, ...]
    #: Cycle length the trace was recorded against (guards stale replays).
    cycle_packets: int
    #: Loss rate of the recording session; replay requires ``0.0``.
    loss_rate: float = 0.0

    @cached_property
    def tuning_packets(self) -> int:
        """Total packets received by the recorded session.

        Cached: a fleet replays one trace for thousands of devices, and the
        sum is a pure function of the frozen op tuple.
        """
        return sum(op.packets for op in self.ops)

    @cached_property
    def replay_plan(self) -> Tuple[int, Tuple[TraceOp, ...], Tuple[Tuple[int, TraceOp], ...]]:
        """``(head_len, body, segment_ops)`` -- the replay's fixed structure.

        The position-anchored head length, the rotatable body, and the
        body's ``SEGMENT`` ops with their body indices are properties of the
        trace alone, so :func:`replay_trace` hoists this scan out of the
        per-device hot path when the trace is reused across a fleet.
        """
        head = 0
        while head < len(self.ops) and self.ops[head].kind is not OpKind.SEGMENT:
            head += 1
        body = self.ops[head:]
        segment_ops = tuple(
            (index, op) for index, op in enumerate(body) if op.kind is OpKind.SEGMENT
        )
        return head, body, segment_ops


class RecordingSession(ClientSession):
    """A :class:`ClientSession` that also materializes its packet stream.

    Every elementary operation behaves exactly as in the base class (the
    probe is a *real* simulation); the session additionally appends one
    :class:`TraceOp` per operation so the stream can be replayed for other
    devices.  ``receive_segment`` needs no override: the base implementation
    delegates to :meth:`receive_segment_packets`.
    """

    def __init__(
        self,
        cycle: BroadcastCycle,
        start_position: int,
        loss_model: Optional[PacketLossModel] = None,
    ) -> None:
        super().__init__(cycle, start_position, loss_model)
        self._ops: List[TraceOp] = []

    def receive_one_packet(self) -> Segment:
        segment = super().receive_one_packet()
        self._ops.append(
            TraceOp(OpKind.ONE_PACKET, anchor=(self.position - 1) % self.cycle.total_packets)
        )
        return segment

    def receive_segment_packets(self, name: str, packet_offsets: Sequence[int]):
        reception = super().receive_segment_packets(name, packet_offsets)
        anchor = (reception.start_position + reception.requested_offsets[0]) % (
            self.cycle.total_packets
        )
        self._ops.append(
            TraceOp(
                OpKind.SEGMENT,
                name=name,
                packet_count=len(reception.requested_offsets),
                last_offset=reception.requested_offsets[-1],
                anchor=anchor,
            )
        )
        return reception

    def receive_full_cycle(self, max_retry_cycles: int = 50) -> int:
        received = super().receive_full_cycle(max_retry_cycles)
        self._ops.append(TraceOp(OpKind.FULL_CYCLE, packet_count=received))
        return received

    def trace(self) -> SessionTrace:
        """The materialized packet stream recorded so far."""
        return SessionTrace(
            ops=tuple(self._ops),
            cycle_packets=self.cycle.total_packets,
            loss_rate=self.loss_model.loss_rate,
        )


@dataclass(frozen=True)
class ReplayOutcome:
    """Channel-level metrics of one replayed session."""

    tuning_packets: int
    access_latency_packets: int


def replay_trace(
    trace: SessionTrace, cycle: BroadcastCycle, start_position: int
) -> ReplayOutcome:
    """Replay a recorded packet stream for a device tuning in elsewhere.

    The stream's position-anchored head (the ``ONE_PACKET`` reads a client
    performs right after tuning in) executes first; the remaining receptions
    are rotated so the replay starts with the reception that is next on the
    air after the device's position, then proceeds in recorded (on-air)
    order.  Every operation is O(1) packet arithmetic -- this is what makes
    per-device cost independent of cycle length and of the client's local
    computation.
    """
    if trace.loss_rate != 0.0:
        raise ValueError(
            f"cannot replay a trace recorded under loss rate {trace.loss_rate}; "
            "lossy sessions must be simulated natively"
        )
    if trace.cycle_packets != cycle.total_packets:
        raise ValueError(
            f"trace was recorded against a {trace.cycle_packets}-packet cycle, "
            f"got one of {cycle.total_packets} packets"
        )
    total = cycle.total_packets
    position = start_position
    tuning = 0

    def apply(op: TraceOp) -> None:
        nonlocal position, tuning
        if op.kind is OpKind.ONE_PACKET:
            tuning += 1
            position += 1
        elif op.kind is OpKind.FULL_CYCLE:
            # Lossless by construction (lossy traces are rejected above), so
            # the recorded count is exactly one cycle with no retries.
            tuning += op.packet_count
            position += total
        else:
            assert op.name is not None
            start = cycle.next_segment_named(op.name, position)
            tuning += op.packet_count
            position = start + op.last_offset + 1

    # Position-anchored head: reads of "whatever is on the air right now".
    # The head/body/segment-op structure is a property of the trace alone,
    # computed once per trace (not per device) via the cached replay plan.
    head_len, body, segment_ops = trace.replay_plan
    for op in trace.ops[:head_len]:
        apply(op)

    if segment_ops:
        # Rotate to the reception next on the air after the current position.
        rotation = min(
            range(len(segment_ops)),
            key=lambda i: ((segment_ops[i][1].anchor - position) % total, i),
        )
        start_at = segment_ops[rotation][0]
        for op in body[start_at:]:
            apply(op)
        for op in body[:start_at]:
            apply(op)
    else:
        for op in body:
            apply(op)

    return ReplayOutcome(
        tuning_packets=tuning, access_latency_packets=position - start_position
    )
