"""Client device and channel models (paper Sections 3.1 and 7).

The paper evaluates on a simulated generic GPS-enabled clamshell phone
(J2ME, CLDC-1.1 / MIDP-2.1) with an 8 MB default heap, an ARM processor with
a ~200 mW peak consumption, and an 802.11 WaveLAN radio consuming 1.65 W /
1.4 W / 0.045 W in transmit / receive / sleep.  Channel rates considered are
2 Mbps (static device) and 384 Kbps (moving device), typical of 3G.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broadcast.packet import PACKET_SIZE_BYTES

__all__ = [
    "ChannelRate",
    "DeviceProfile",
    "J2ME_CLAMSHELL",
    "MODERN_SMARTPHONE",
    "CHANNEL_2MBPS",
    "CHANNEL_384KBPS",
]


@dataclass(frozen=True)
class ChannelRate:
    """A broadcast channel rate."""

    name: str
    bits_per_second: float

    @property
    def packets_per_second(self) -> float:
        """Packets broadcast per second at this rate."""
        return self.bits_per_second / (PACKET_SIZE_BYTES * 8)

    def packets_to_seconds(self, packets: float) -> float:
        """Convert a packet count into seconds on the air."""
        return packets / self.packets_per_second


#: 3G rate for a static device (paper Table 1).
CHANNEL_2MBPS = ChannelRate("2Mbps", 2_000_000.0)
#: 3G rate for a moving device (paper Table 1; the text says 384 Kbps).
CHANNEL_384KBPS = ChannelRate("384Kbps", 384_000.0)


@dataclass(frozen=True)
class DeviceProfile:
    """Energy and memory constants of a client device.

    Attributes
    ----------
    heap_bytes:
        Application heap limit; methods whose working set exceeds it are
        inapplicable (paper Table 2).
    receive_watts / sleep_watts:
        Radio power in the receive and sleep (doze) states.
    cpu_watts:
        Peak processor power while computing.
    cpu_slowdown:
        Multiplier applied to host CPU time to approximate the device's
        processor (a 3 GHz host vs a ~200 MHz-class ARM).
    """

    name: str
    heap_bytes: int
    receive_watts: float = 1.4
    sleep_watts: float = 0.045
    cpu_watts: float = 0.2
    cpu_slowdown: float = 15.0

    def fits_in_heap(self, bytes_needed: int) -> bool:
        """Whether a working set of ``bytes_needed`` fits the device heap."""
        return bytes_needed <= self.heap_bytes

    def energy_joules(
        self,
        tuning_packets: int,
        latency_packets: int,
        cpu_seconds: float,
        rate: ChannelRate,
    ) -> float:
        """Total energy for a query.

        Receiving ``tuning_packets`` costs receive power; the remainder of
        the access latency is spent sleeping; computation adds CPU energy.
        """
        receive_seconds = rate.packets_to_seconds(tuning_packets)
        sleep_seconds = max(
            0.0, rate.packets_to_seconds(latency_packets) - receive_seconds
        )
        return (
            receive_seconds * self.receive_watts
            + sleep_seconds * self.sleep_watts
            + cpu_seconds * self.cpu_watts
        )


#: The paper's evaluation device: generic J2ME clamshell phone, 8 MB heap.
J2ME_CLAMSHELL = DeviceProfile(name="j2me-clamshell", heap_bytes=8 * 1024 * 1024)

#: A present-day comparison point used by the examples.
MODERN_SMARTPHONE = DeviceProfile(
    name="modern-smartphone",
    heap_bytes=512 * 1024 * 1024,
    receive_watts=0.8,
    sleep_watts=0.01,
    cpu_watts=2.0,
    cpu_slowdown=1.0,
)
