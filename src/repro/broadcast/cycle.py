"""Broadcast cycle: an ordered sequence of segments with packet positions.

The server repeatedly transmits identical broadcast cycles (paper Section
2.2).  :class:`BroadcastCycle` lays its segments out over consecutive packet
positions and answers the positional queries clients need: where does a
segment start, which segment is on the air at a given offset, and when is the
next segment of a given kind broadcast after a given moment.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.broadcast.packet import PACKET_SIZE_BYTES, Segment, SegmentKind

__all__ = ["BroadcastCycle"]


class BroadcastCycle:
    """An immutable layout of segments over packet positions ``[0, length)``."""

    def __init__(self, segments: Sequence[Segment], name: str = "cycle") -> None:
        if not segments:
            raise ValueError("a broadcast cycle needs at least one segment")
        self.name = name
        self.segments: List[Segment] = list(segments)
        self._starts: List[int] = []
        self._by_name: Dict[str, int] = {}
        #: Lazily compiled :class:`~repro.broadcast.replay_bulk.CycleLayout`
        #: (cycles are immutable by contract, so one compilation serves the
        #: cycle's whole lifetime).
        self._compiled_layout = None
        offset = 0
        for position, segment in enumerate(self.segments):
            if segment.name in self._by_name:
                raise ValueError(f"duplicate segment name {segment.name!r}")
            self._by_name[segment.name] = position
            self._starts.append(offset)
            offset += segment.num_packets
        self._total_packets = offset

    # ------------------------------------------------------------------
    # Global properties
    # ------------------------------------------------------------------
    @property
    def total_packets(self) -> int:
        """Length of one broadcast cycle in packets."""
        return self._total_packets

    @property
    def total_bytes(self) -> int:
        """Total payload bytes in one cycle (before packetization)."""
        return sum(segment.size_bytes for segment in self.segments)

    def duration_seconds(self, bits_per_second: float) -> float:
        """Time to broadcast one full cycle at the given channel rate."""
        return self._total_packets * PACKET_SIZE_BYTES * 8 / bits_per_second

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.segments)

    # ------------------------------------------------------------------
    # Positional queries
    # ------------------------------------------------------------------
    def segment(self, name: str) -> Segment:
        """Segment with the given name."""
        return self.segments[self._by_name[name]]

    def has_segment(self, name: str) -> bool:
        """Whether a segment with this name exists."""
        return name in self._by_name

    def segment_start(self, name: str) -> int:
        """Packet offset (within the cycle) where the named segment starts."""
        return self._starts[self._by_name[name]]

    def segment_range(self, name: str) -> Tuple[int, int]:
        """``(start_offset, num_packets)`` of the named segment."""
        index = self._by_name[name]
        return (self._starts[index], self.segments[index].num_packets)

    def segment_at(self, offset: int) -> Segment:
        """Segment on the air at cycle offset ``offset`` (0-based packet)."""
        offset %= self._total_packets
        # Binary search over the start offsets.
        low, high = 0, len(self._starts) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        return self.segments[low]

    def segments_of_kind(self, kind: SegmentKind) -> List[Segment]:
        """All segments of the given kind, in broadcast order."""
        return [segment for segment in self.segments if segment.kind == kind]

    def segments_of_region(self, region: int) -> List[Segment]:
        """All segments annotated with the given region, in broadcast order."""
        return [segment for segment in self.segments if segment.region == region]

    def next_segment_of_kind(self, kind: SegmentKind, after_offset: int) -> Tuple[Segment, int]:
        """First segment of ``kind`` starting at or after ``after_offset``.

        The returned offset is a *global* packet position (it may lie in the
        next repetition of the cycle), so the caller can wait for it directly.
        """
        candidates = [
            (start, segment)
            for start, segment in zip(self._starts, self.segments)
            if segment.kind == kind
        ]
        if not candidates:
            raise LookupError(f"cycle has no segment of kind {kind}")
        cycle_offset = after_offset % self._total_packets
        base = after_offset - cycle_offset
        for start, segment in candidates:
            if start >= cycle_offset:
                return segment, base + start
        # Wrap to the next cycle repetition.
        start, segment = candidates[0]
        return segment, base + self._total_packets + start

    def next_segment_named(self, name: str, after_offset: int) -> int:
        """Global packet position of the next broadcast of the named segment."""
        start = self.segment_start(name)
        cycle_offset = after_offset % self._total_packets
        base = after_offset - cycle_offset
        if start >= cycle_offset:
            return base + start
        return base + self._total_packets + start

    def compiled_layout(self):
        """The cycle's :class:`~repro.broadcast.replay_bulk.CycleLayout`.

        Compiled on first access and cached for the cycle's lifetime (safe:
        cycles are immutable -- every incremental refresh path constructs a
        new cycle object rather than mutating segments in place).  The
        layout backs the vectorized fleet-replay kernel; requires numpy.
        """
        if self._compiled_layout is None:
            from repro.broadcast.replay_bulk import CycleLayout

            self._compiled_layout = CycleLayout(self)
        return self._compiled_layout

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def signature(self) -> Tuple[Tuple, ...]:
        """A value-level digest of the on-air layout, for equality checks.

        One tuple per segment -- name, kind, payload size, packet count,
        region annotation, and a normalized payload (integer lists become
        tuples; scalar values pass through; anything else is reduced to its
        type name) -- in broadcast order.  Two cycles with equal signatures
        occupy identical packet positions with identical content layout,
        which is what the dynamic-network tests and benchmarks mean by
        "bit-identical cycles" between an incremental refresh and a
        from-scratch rebuild.
        """

        def normalize(value):
            if isinstance(value, (list, tuple)):
                return tuple(value)
            if isinstance(value, (int, float, str, bool, type(None))):
                return value
            return type(value).__name__

        return tuple(
            (
                segment.name,
                segment.kind.value,
                segment.size_bytes,
                segment.num_packets,
                segment.region,
                tuple(sorted((key, normalize(val)) for key, val in segment.payload.items())),
            )
            for segment in self.segments
        )

    def composition(self) -> Dict[str, int]:
        """Packets per :class:`SegmentKind` (for cycle-length breakdowns)."""
        breakdown: Dict[str, int] = {}
        for segment in self.segments:
            key = segment.kind.value
            breakdown[key] = breakdown.get(key, 0) + segment.num_packets
        return breakdown

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BroadcastCycle(name={self.name!r}, segments={len(self.segments)}, "
            f"packets={self._total_packets})"
        )
