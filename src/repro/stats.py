"""Small shared statistics helpers.

One home for the aggregation primitives the reporting layers share --
fleet result tables, the serving load generator, and the CLI all quote
percentiles, and they must quote the *same* percentile definition or two
reports over identical samples would disagree.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["percentile", "summarize_latencies"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` is in ``[0, 100]``; an empty sequence yields ``0.0`` so aggregate
    tables stay printable for degenerate fleets.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(len(ordered) * q / 100.0))
    return float(ordered[min(rank, len(ordered)) - 1])


def summarize_latencies(values: Sequence[float]) -> dict:
    """The standard latency digest every report quotes: p50/p90/p99/mean/max."""
    if not values:
        return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "mean": sum(values) / len(values),
        "max": float(max(values)),
    }
