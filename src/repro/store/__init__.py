"""Content-addressed on-disk store for build artifacts (the disk tier).

:class:`ArtifactStore` persists :class:`~repro.serialize.BuildArtifact`
files keyed by ``(scheme, params fingerprint, network fingerprint, format
version)`` so that every process serving the same network shares one set of
pre-computed indexes: the engine's :class:`~repro.engine.AirSystem` uses it
as the second tier of its cycle cache (memory -> disk -> build).
"""

from repro.store.store import ArtifactStore, StoreEntry

__all__ = ["ArtifactStore", "StoreEntry"]
