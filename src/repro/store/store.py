"""The content-addressed artifact store.

Layout on disk (everything under one root directory)::

    <root>/objects/<k0k1>/<key>.artifact     one file per store key
    <root>/quarantine/<name>.<n>             corrupted files, moved aside

The store key is the sha256 digest of ``scheme | params fingerprint |
network fingerprint | format version``: content addressing over the *build
inputs*, so identical builds land on identical paths and two processes
racing to publish the same artifact are idempotent.  Durability and
concurrency come from write-then-rename: an artifact is staged as a unique
temporary file in the final directory and atomically ``os.replace``d into
place, so readers only ever observe complete files and the last of several
concurrent writers wins with an equivalent artifact.

Failure handling on read is three-way, mirroring the exception taxonomy of
:mod:`repro.serialize.artifacts`:

* **corruption** (bad magic, truncation, checksum mismatch) quarantines the
  file -- it is moved to ``quarantine/`` for post-mortem rather than
  deleted, and the read reports a miss so the caller rebuilds;
* **format-version mismatch** deletes the stale file and reports a miss --
  a clean rebuild re-publishes under the current version's key anyway;
* **key mismatch** (a file whose header does not match the requested key)
  is treated as corruption.

The byte-size cap is LRU over *use*: every hit bumps the file's mtime, and
:meth:`put`/:meth:`gc` evict oldest-used entries until the store fits.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import os
import pathlib
import uuid
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.faults import runtime as faults
from repro.serialize.artifacts import (
    FORMAT_VERSION,
    ArtifactChecksumError,
    ArtifactError,
    ArtifactVersionError,
    BuildArtifact,
    params_fingerprint,
)

__all__ = ["ArtifactStore", "StoreEntry"]

_SUFFIX = ".artifact"


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """Metadata of one stored artifact (header only, checksum unverified)."""

    key: str
    path: pathlib.Path
    scheme: str
    params: Dict[str, Any]
    network_fingerprint: str
    format_version: int
    size_bytes: int
    #: Last-use time in nanoseconds (mtime; bumped on every store hit).
    used_ns: int


class ArtifactStore:
    """A directory of build artifacts with an LRU byte-size cap.

    Parameters
    ----------
    root:
        Store directory; created on first write.
    max_bytes:
        Soft cap on the total size of stored objects.  ``None`` (default)
        disables eviction; otherwise every :meth:`put` evicts least
        recently *used* entries until the store fits.
    """

    def __init__(self, root, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.objects_dir = self.root / "objects"
        self.quarantine_dir = self.root / "quarantine"
        # Per-instance counters, surfaced through AirSystem.cache_info().
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.quarantined = 0
        self.stale_versions = 0

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(
        scheme: str,
        params_fp: str,
        network_fingerprint: str,
        format_version: int = FORMAT_VERSION,
    ) -> str:
        """The store key (content address) for a build-input tuple."""
        material = f"{scheme}|{params_fp}|{network_fingerprint}|{format_version}"
        return hashlib.sha256(material.encode("ascii")).hexdigest()

    @staticmethod
    def key_of(artifact: BuildArtifact) -> str:
        """The store key an artifact files under."""
        return ArtifactStore.key_for(
            artifact.scheme,
            artifact.params_fingerprint(),
            artifact.network_fingerprint,
            artifact.format_version,
        )

    def _path_for(self, key: str) -> pathlib.Path:
        return self.objects_dir / key[:2] / f"{key}{_SUFFIX}"

    def object_path(
        self, scheme: str, params: Mapping[str, Any], network_fingerprint: str
    ) -> pathlib.Path:
        """Where the object for this key lives (whether or not it exists)."""
        return self._path_for(
            self.key_for(scheme, params_fingerprint(params), network_fingerprint)
        )

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def put(self, artifact: BuildArtifact) -> pathlib.Path:
        """Publish an artifact; atomic and idempotent per key.

        The bytes are staged under a unique temporary name in the final
        directory and renamed into place, so concurrent writers of the same
        key never expose a partial file.  Returns the object path.

        The ``store.put.torn`` fault point simulates a writer killed
        mid-``put``: the staging file is truncated and left on disk (the
        debris a real SIGKILL leaves), and :class:`FaultInjected` raised --
        the object path itself is never touched, which is the property the
        torn-write tests pin down.
        """
        key = self.key_of(artifact)
        path = self._path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        staging = path.parent / f".{key}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        keep_staging = False
        try:
            # Streamed, not ``write_bytes(artifact.to_bytes())``: the framed
            # body of a continental CSR payload is never concatenated in
            # memory (see ``BuildArtifact.write_to``).
            with staging.open("wb") as handle:
                artifact.write_to(handle)
            event = faults.inject("store.put.torn", key=key)
            if event is not None:
                written = staging.stat().st_size
                keep = max(1, int(written * float(event.param("fraction", 0.5))))
                with staging.open("rb+") as handle:
                    handle.truncate(keep)
                keep_staging = True
                raise faults.FaultInjected(event)
            os.replace(staging, path)
        finally:
            if not keep_staging and staging.exists():  # pragma: no cover - failed replace
                staging.unlink()
        self.writes += 1
        if self.max_bytes is not None:
            self._evict_to(self.max_bytes, keep={path})
        return path

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def get(
        self,
        scheme: str,
        params: Mapping[str, Any],
        network_fingerprint: str,
    ) -> Optional[BuildArtifact]:
        """Look up the artifact for ``(scheme, params, network)``.

        Returns ``None`` on any miss: absent key, stale format version
        (file deleted, clean rebuild), or corruption (file quarantined).
        A hit verifies the checksum, bumps the entry's LRU clock, and
        cross-checks the decoded header against the requested key.
        """
        key = self.key_for(scheme, params_fingerprint(params), network_fingerprint)
        path = self._path_for(key)
        try:
            # Streamed restore: the payload lands in one buffer with the
            # checksum verified incrementally, instead of read_bytes()
            # materializing the whole framed file first.
            with path.open("rb") as handle:
                event = faults.inject("store.get.corrupt", key=key)
                if event is not None:
                    # Simulated bit rot: flip one payload byte of what the
                    # reader sees, driving the real corruption-to-quarantine
                    # path below without damaging the test's disk.
                    raw = bytearray(handle.read())
                    if raw:
                        raw[(len(raw) * 3) // 4] ^= 0xFF
                    artifact = BuildArtifact.read_from(io.BytesIO(bytes(raw)))
                else:
                    artifact = BuildArtifact.read_from(handle)
        except OSError:
            # Absent key, but also any read failure (permissions, transient
            # I/O): the disk tier degrades to a miss, never to a crash.
            self.misses += 1
            return None
        except ArtifactVersionError:
            # Written by another format version; its key embeds that
            # version, so this is a hash collision across versions only in
            # theory -- but either way the file cannot serve this reader.
            self._discard(path)
            self.stale_versions += 1
            self.misses += 1
            return None
        except ArtifactError:
            self._quarantine(path)
            self.misses += 1
            return None
        if artifact.scheme != scheme or artifact.network_fingerprint != network_fingerprint:
            self._quarantine(path)
            self.misses += 1
            return None
        self._touch(path)
        self.hits += 1
        return artifact

    def contains(
        self, scheme: str, params: Mapping[str, Any], network_fingerprint: str
    ) -> bool:
        """Whether an object file exists for the key (no validation)."""
        key = self.key_for(scheme, params_fingerprint(params), network_fingerprint)
        return self._path_for(key).exists()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def _object_paths(self) -> List[pathlib.Path]:
        if not self.objects_dir.is_dir():
            return []
        return sorted(self.objects_dir.glob(f"*/*{_SUFFIX}"))

    #: Bounded per-entry read for listings; real headers are well under 64
    #: KB (scheme name, params, fingerprints).  A header that somehow grows
    #: past this falls back to a full read before being judged corrupt.
    _HEADER_READ_BYTES = 64 * 1024

    def entries(self) -> List[StoreEntry]:
        """Metadata of every stored object, oldest-used first.

        Reads a bounded header prefix per object (no payload, no checksum
        verification -- see :meth:`verify`).  Corrupt files are quarantined
        as they are encountered; files written by a *foreign format
        version* are skipped but left in place -- they are valid for their
        own version's readers and their header encoding is not ours to
        interpret.
        """
        entries: List[StoreEntry] = []
        for path in self._object_paths():
            try:
                stat = path.stat()
                with path.open("rb") as handle:
                    prefix = handle.read(self._HEADER_READ_BYTES)
                try:
                    header = BuildArtifact.read_header(prefix, total_size=stat.st_size)
                except ArtifactChecksumError:
                    if stat.st_size <= len(prefix):
                        raise
                    # Oversized header: judge the full bytes, not a prefix.
                    header = BuildArtifact.read_header(path.read_bytes())
            except ArtifactVersionError:
                continue
            except (OSError, ArtifactChecksumError):
                self._quarantine(path)
                continue
            entries.append(
                StoreEntry(
                    key=path.stem,
                    path=path,
                    scheme=header["scheme"],
                    params=header["params"],
                    network_fingerprint=header["network_fingerprint"],
                    format_version=header["format_version"],
                    size_bytes=stat.st_size,
                    used_ns=stat.st_mtime_ns,
                )
            )
        entries.sort(key=lambda entry: (entry.used_ns, entry.key))
        return entries

    @staticmethod
    def _size_of(path: pathlib.Path) -> int:
        """File size, 0 when a concurrent process removed it meanwhile."""
        try:
            return path.stat().st_size
        except OSError:
            return 0

    def total_bytes(self) -> int:
        """Total size of all stored object files."""
        return sum(self._size_of(path) for path in self._object_paths())

    def stats(self) -> Dict[str, int]:
        """Counters plus current occupancy (for ``AirSystem.cache_info``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "stale_versions": self.stale_versions,
            "entries": len(self._object_paths()),
            "bytes": self.total_bytes(),
        }

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def verify(self) -> Dict[str, int]:
        """Checksum-verify every object; quarantine the ones that fail.

        Version-stale files are left in place (they are valid for their own
        version's readers).  Returns ``{"checked": n, "ok": n, "stale": n,
        "quarantined": n}``.
        """
        checked = ok = stale = quarantined = 0
        for path in self._object_paths():
            checked += 1
            try:
                with path.open("rb") as handle:
                    BuildArtifact.read_from(handle)
            except ArtifactVersionError:
                stale += 1
            except (OSError, ArtifactError):
                self._quarantine(path)
                quarantined += 1
            else:
                ok += 1
        return {"checked": checked, "ok": ok, "stale": stale, "quarantined": quarantined}

    def clean_staging(self) -> int:
        """Remove abandoned staging files (writers killed mid-``put``).

        Staging names are process-unique dotfiles in the object shards; a
        writer that died between staging and rename leaves one behind.  They
        are invisible to readers (``get`` only opens final paths), so this
        is pure debris collection.  Returns the number removed.
        """
        removed = 0
        if not self.objects_dir.is_dir():
            return removed
        for path in sorted(self.objects_dir.glob("*/.*.tmp")):
            self._discard(path)
            removed += 1
        return removed

    def gc(self, max_bytes: Optional[int] = None, purge_quarantine: bool = False) -> Dict[str, int]:
        """Enforce a byte cap (default: the store's own) and tidy up.

        Evicts least recently used objects until the store fits, optionally
        deletes quarantined files, removes abandoned staging files and
        empty shard directories.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        evicted = self._evict_to(cap) if cap is not None else 0
        staging_removed = self.clean_staging()
        purged = 0
        if purge_quarantine and self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                path.unlink()
                purged += 1
        if self.objects_dir.is_dir():
            for shard in sorted(self.objects_dir.iterdir()):
                if shard.is_dir() and not any(shard.iterdir()):
                    try:
                        shard.rmdir()
                    except OSError:  # pragma: no cover - concurrent writer
                        pass
        return {
            "evicted": evicted,
            "purged_quarantine": purged,
            "staging_removed": staging_removed,
            "remaining_entries": len(self._object_paths()),
            "remaining_bytes": self.total_bytes(),
        }

    def prune(self, network_fingerprints: Iterable[str]) -> int:
        """Drop every object built over one of the given network fingerprints.

        The engine calls this with its superseded-fingerprint lineage so a
        long-lived mutate/refresh loop does not accumulate one dead artifact
        set per network version.  Returns the number of objects removed.
        """
        doomed = set(network_fingerprints)
        removed = 0
        for entry in self.entries():
            if entry.network_fingerprint in doomed:
                self._discard(entry.path)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - racing deletion
            pass

    @staticmethod
    def _discard(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deletion
            pass

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupted file aside (never delete evidence).

        Best effort: on a read-only or failing filesystem the move is
        abandoned -- reporting the miss to the caller matters more than the
        post-mortem copy.
        """
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            destination = self.quarantine_dir / path.name
            counter = 0
            while destination.exists():
                counter += 1
                destination = self.quarantine_dir / f"{path.name}.{counter}"
            os.replace(path, destination)
        except OSError:  # pragma: no cover - racing deletion / read-only fs
            return
        self.quarantined += 1

    def _evict_to(self, max_bytes: int, keep: Set[pathlib.Path] = frozenset()) -> int:
        """Evict oldest-used objects until total size fits ``max_bytes``.

        Paths in ``keep`` (the just-written artifact) are spared, so a cap
        smaller than a single artifact degrades to keeping the newest one.
        """
        sizes: List[Tuple[int, str, pathlib.Path, int]] = []
        for path in self._object_paths():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent deletion
                continue
            sizes.append((stat.st_mtime_ns, path.name, path, stat.st_size))
        total = sum(size for _, _, _, size in sizes)
        evicted = 0
        for _, _, path, size in sorted(sizes):
            if total <= max_bytes:
                break
            if path in keep:
                continue
            self._discard(path)
            self.evictions += 1
            evicted += 1
            total -= size
        return evicted
