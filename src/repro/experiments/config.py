"""Experiment configuration defaults (paper Section 7).

The paper's evaluation uses the Germany network by default, 400 random
shortest path queries, 128-byte packets, 32 regions for EB and NR, 16 for
ArcFlag, and 4 landmarks.  Because this reproduction runs the whole stack --
server pre-computation included -- in pure Python, the default
:data:`DEFAULT_SCALE` shrinks the networks proportionally; every benchmark
records the scale it used, and the scale can be raised via the
``REPRO_SCALE`` environment variable when more runtime is acceptable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro.broadcast.device import DeviceProfile, J2ME_CLAMSHELL

__all__ = ["ExperimentConfig", "DEFAULT_CONFIG", "DEFAULT_SCALE", "scale_from_env"]

#: Fraction of the paper's network sizes used by default in benchmarks.
DEFAULT_SCALE = 0.05


def scale_from_env(default: float = DEFAULT_SCALE) -> float:
    """Network scale factor, overridable through ``REPRO_SCALE``."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return default
    value = float(raw)
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be positive, got {value}")
    return value


@dataclass
class ExperimentConfig:
    """Knobs shared by the table/figure reproductions."""

    #: Default evaluation network (the paper uses Germany).
    network: str = "germany"
    #: Proportional down-scaling of the paper's network sizes.
    scale: float = field(default_factory=scale_from_env)
    #: Seed for network generation and query sampling.
    seed: int = 7
    #: Number of shortest path queries per experiment (the paper uses 400).
    num_queries: int = 40
    #: Regions used by EB and NR (paper fine-tuning: 32).
    eb_nr_regions: int = 32
    #: Regions used by ArcFlag (paper fine-tuning: 16).
    arcflag_regions: int = 16
    #: Regions used by HiTi.
    hiti_regions: int = 16
    #: Landmarks used by the Landmark method (paper fine-tuning: 4).
    num_landmarks: int = 4
    #: Packet loss rates for Figure 14.
    loss_rates: List[float] = field(default_factory=lambda: [0.001, 0.005, 0.01, 0.05, 0.10])
    #: Fine-tuning sweep: (regions, landmarks) pairs for Figure 11.
    finetune_settings: List[int] = field(default_factory=lambda: [16, 32, 64, 128])
    #: The client device (Table 2's 8 MB heap phone).
    device: DeviceProfile = J2ME_CLAMSHELL

    def __post_init__(self) -> None:
        """Fail fast on configurations no scheme builder could satisfy."""
        from repro.network import datasets

        known = datasets.available()
        if self.network not in known:
            raise ValueError(
                f"unknown network {self.network!r}; available: {', '.join(known)}"
            )
        if not self.scale > 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.num_queries <= 0:
            raise ValueError(f"num_queries must be positive, got {self.num_queries}")
        for field_name in ("eb_nr_regions", "arcflag_regions", "hiti_regions"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.num_landmarks <= 0:
            raise ValueError(f"num_landmarks must be positive, got {self.num_landmarks}")
        for rate in self.loss_rates:
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"loss rates must be in [0, 1), got {rate}")
        for setting in self.finetune_settings:
            if setting <= 0:
                raise ValueError(f"finetune settings must be positive, got {setting}")

    def landmarks_for_regions(self, regions: int) -> int:
        """The paper pairs 16/32/64/128 regions with 2/4/8/16 landmarks."""
        mapping: Dict[int, int] = {16: 2, 32: 4, 64: 8, 128: 16}
        return mapping.get(regions, max(2, regions // 8))


#: Shared default configuration.
DEFAULT_CONFIG = ExperimentConfig()
