"""Experiment harness reproducing the paper's tables and figures.

The benchmarks under ``benchmarks/`` are thin wrappers around this package:
each table/figure has a function here that builds the (scaled) network,
generates the query workload, runs the competing methods through the engine
layer (:class:`~repro.engine.system.AirSystem`), and returns the rows/series
the paper reports.

``build_scheme``/``compare_methods`` and the ``COMPARISON_METHODS``/
``ALL_METHODS`` constants are deprecated shims kept for older callers; the
scheme registry (``repro.air``) and the engine facade are the supported API.
"""

from typing import List

from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig, scale_from_env
from repro.experiments.workloads import (
    FLEET_SCENARIOS,
    Query,
    QueryWorkload,
    fleet_hot_destination,
    fleet_rush_hour,
    fleet_uniform_trickle,
)
from repro.experiments.runner import (
    MethodRun,
    build_network,
    build_scheme,
    compare_methods,
    run_workload,
)
from repro.experiments.applicability import (
    ApplicabilityResult,
    method_applicability,
    scaled_device,
)
from repro.experiments.finetune import FinetunePoint, finetune_sweep
from repro.experiments import report

__all__ = [
    "ALL_METHODS",
    "ApplicabilityResult",
    "COMPARISON_METHODS",
    "DEFAULT_CONFIG",
    "ExperimentConfig",
    "FLEET_SCENARIOS",
    "FinetunePoint",
    "fleet_hot_destination",
    "fleet_rush_hour",
    "fleet_uniform_trickle",
    "MethodRun",
    "Query",
    "QueryWorkload",
    "build_network",
    "build_scheme",
    "compare_methods",
    "finetune_sweep",
    "method_applicability",
    "report",
    "run_workload",
    "scale_from_env",
    "scaled_device",
]


def __getattr__(name: str) -> List[str]:
    """Deprecated method-list constants, forwarded to the runner's shims."""
    if name in ("COMPARISON_METHODS", "ALL_METHODS"):
        from repro.experiments import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
