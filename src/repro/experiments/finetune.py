"""Method fine-tuning sweep (paper Appendix C.1, Figure 11).

EB, NR and ArcFlag are swept over the number of regions and Landmark over
the number of landmarks (the paper pairs 16/32/64/128 regions with
2/4/8/16 landmarks on its x axis).  Dijkstra is included unchanged as the
flat reference line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.air import (
    ArcFlagBroadcastScheme,
    DijkstraBroadcastScheme,
    EllipticBoundaryScheme,
    LandmarkBroadcastScheme,
    NextRegionScheme,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import MethodRun, run_workload
from repro.experiments.workloads import QueryWorkload
from repro.network.graph import RoadNetwork

__all__ = ["FinetunePoint", "finetune_sweep"]


@dataclass
class FinetunePoint:
    """One x-axis setting of Figure 11: a regions/landmarks pair."""

    regions: int
    landmarks: int
    runs: Dict[str, MethodRun] = field(default_factory=dict)


def finetune_sweep(
    network: RoadNetwork,
    workload: QueryWorkload,
    config: ExperimentConfig,
    settings: Sequence[int] = (),
    methods: Sequence[str] = ("NR", "EB", "DJ", "LD", "AF"),
    max_arcflag_regions: int = 16,
) -> List[FinetunePoint]:
    """Run the Figure 11 sweep and return one point per setting.

    ArcFlag is only evaluated up to ``max_arcflag_regions`` regions; beyond
    that its flags exceed the client heap in the paper, and its
    pre-computation cost grows quadratically here.
    """
    settings = list(settings) or config.finetune_settings
    points: List[FinetunePoint] = []
    for regions in settings:
        landmarks = config.landmarks_for_regions(regions)
        point = FinetunePoint(regions=regions, landmarks=landmarks)
        for method in methods:
            if method == "NR":
                scheme = NextRegionScheme(network, num_regions=regions)
            elif method == "EB":
                scheme = EllipticBoundaryScheme(network, num_regions=regions)
            elif method == "DJ":
                scheme = DijkstraBroadcastScheme(network)
            elif method == "LD":
                scheme = LandmarkBroadcastScheme(network, num_landmarks=landmarks)
            elif method == "AF":
                if regions > max_arcflag_regions:
                    continue
                scheme = ArcFlagBroadcastScheme(network, num_regions=regions)
            else:
                raise ValueError(f"unknown method {method!r}")
            point.runs[method] = run_workload(scheme, workload, config)
        points.append(point)
    return points
