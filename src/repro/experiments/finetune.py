"""Method fine-tuning sweep (paper Appendix C.1, Figure 11).

EB, NR and ArcFlag are swept over the number of regions and Landmark over
the number of landmarks (the paper pairs 16/32/64/128 regions with
2/4/8/16 landmarks on its x axis).  Dijkstra is included unchanged as the
flat reference line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro import air
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import MethodRun, run_workload
from repro.experiments.workloads import QueryWorkload
from repro.network.graph import RoadNetwork

__all__ = ["FinetunePoint", "finetune_sweep"]

#: Which registry parameter each method's x-axis value feeds (Figure 11
#: sweeps regions for the border/flag methods and landmarks for LD; DJ has
#: nothing to tune and serves as the flat reference line).
_SWEPT_PARAM = {"NR": "num_regions", "EB": "num_regions", "AF": "num_regions", "LD": "num_landmarks"}


@dataclass
class FinetunePoint:
    """One x-axis setting of Figure 11: a regions/landmarks pair."""

    regions: int
    landmarks: int
    runs: Dict[str, MethodRun] = field(default_factory=dict)


def finetune_sweep(
    network: RoadNetwork,
    workload: QueryWorkload,
    config: ExperimentConfig,
    settings: Sequence[int] = (),
    methods: Sequence[str] = ("NR", "EB", "DJ", "LD", "AF"),
    max_arcflag_regions: int = 16,
) -> List[FinetunePoint]:
    """Run the Figure 11 sweep and return one point per setting.

    ArcFlag is only evaluated up to ``max_arcflag_regions`` regions; beyond
    that its flags exceed the client heap in the paper, and its
    pre-computation cost grows quadratically here.
    """
    settings = list(settings) or config.finetune_settings
    points: List[FinetunePoint] = []
    for regions in settings:
        landmarks = config.landmarks_for_regions(regions)
        point = FinetunePoint(regions=regions, landmarks=landmarks)
        for method in methods:
            name = air.canonical_name(method)
            if name not in _SWEPT_PARAM and name != "DJ":
                raise ValueError(
                    f"method {method!r} has no fine-tuning sweep; "
                    f"sweepable: {sorted(_SWEPT_PARAM)} (plus the DJ reference)"
                )
            if name == "AF" and regions > max_arcflag_regions:
                continue
            swept = _SWEPT_PARAM.get(name)
            params = {}
            if swept == "num_regions":
                params[swept] = regions
            elif swept == "num_landmarks":
                params[swept] = landmarks
            scheme = air.create(name, network, **params)
            point.runs[method] = run_workload(scheme, workload, config)
        points.append(point)
    return points
