"""Plain-text table formatting for the experiment reproductions.

The benchmarks print the same rows/series the paper's tables and figures
report; this module holds the small formatting helpers they share so the
output stays aligned and diff-able across runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_series", "bytes_to_mb", "packets_to_thousands"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned text table."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(name: str, points: Dict[str, float], unit: str = "") -> str:
    """Render one figure series (``label -> value``) as a single line."""
    parts = [f"{label}={value:,.3f}{unit}" for label, value in points.items()]
    return f"{name}: " + ", ".join(parts)


def bytes_to_mb(num_bytes: float) -> float:
    """Bytes to megabytes (the unit of the paper's memory plots)."""
    return num_bytes / (1024.0 * 1024.0)


def packets_to_thousands(packets: float) -> float:
    """Packets to thousands of packets (the unit of the paper's plots)."""
    return packets / 1000.0


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.3f}"
    return str(value)
