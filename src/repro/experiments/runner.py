"""Per-method experiment runner.

Glue between the air-index schemes and the table/figure reproductions: build
a scheme under the configured parameters, push a query workload through its
client, and aggregate the per-query metrics the way the paper reports them
(averages per method, per bucket, or per network).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.air import (
    ArcFlagBroadcastScheme,
    DijkstraBroadcastScheme,
    EllipticBoundaryScheme,
    HiTiBroadcastScheme,
    LandmarkBroadcastScheme,
    NextRegionScheme,
    SPQBroadcastScheme,
)
from repro.air.base import AirIndexScheme, QueryResult
from repro.broadcast.metrics import ClientMetrics, ServerMetrics, average_metrics
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import Query, QueryWorkload
from repro.network import datasets
from repro.network.graph import RoadNetwork

__all__ = [
    "MethodRun",
    "build_network",
    "build_scheme",
    "run_workload",
    "compare_methods",
    "COMPARISON_METHODS",
    "ALL_METHODS",
]

#: Methods included in the paper's device experiments (Figures 10-14).
COMPARISON_METHODS = ["NR", "EB", "DJ", "LD", "AF"]
#: All methods, including the two that only appear in Table 1.
ALL_METHODS = ["DJ", "NR", "EB", "LD", "AF", "SPQ", "HiTi"]


@dataclass
class MethodRun:
    """Aggregated outcome of one method over one workload."""

    method: str
    server: ServerMetrics
    per_query: List[ClientMetrics] = field(default_factory=list)
    mismatches: int = 0

    @property
    def mean(self) -> ClientMetrics:
        """Average client metrics over the workload."""
        return average_metrics(self.per_query)

    @property
    def peak_memory_bytes(self) -> int:
        """Worst-case client memory over the workload (Table 2's criterion)."""
        if not self.per_query:
            return 0
        return max(metrics.peak_memory_bytes for metrics in self.per_query)


def build_network(config: ExperimentConfig, name: Optional[str] = None) -> RoadNetwork:
    """Instantiate the configured (scaled) evaluation network."""
    return datasets.load(name or config.network, scale=config.scale, seed=config.seed)


def build_scheme(
    method: str, network: RoadNetwork, config: ExperimentConfig
) -> AirIndexScheme:
    """Construct the scheme for the paper's method abbreviation."""
    method = method.upper() if method.lower() != "hiti" else "HiTi"
    if method == "DJ":
        return DijkstraBroadcastScheme(network)
    if method == "NR":
        return NextRegionScheme(network, num_regions=config.eb_nr_regions)
    if method == "EB":
        return EllipticBoundaryScheme(network, num_regions=config.eb_nr_regions)
    if method == "LD":
        return LandmarkBroadcastScheme(network, num_landmarks=config.num_landmarks)
    if method == "AF":
        return ArcFlagBroadcastScheme(network, num_regions=config.arcflag_regions)
    if method == "SPQ":
        return SPQBroadcastScheme(network)
    if method == "HiTi":
        return HiTiBroadcastScheme(network, num_regions=config.hiti_regions)
    raise ValueError(f"unknown method {method!r}")


def run_workload(
    scheme: AirIndexScheme,
    queries: Iterable[Query],
    config: ExperimentConfig,
    loss_rate: float = 0.0,
    memory_bound: bool = False,
    loss_seed: int = 0,
) -> MethodRun:
    """Run every query through the scheme's client and collect metrics.

    ``mismatches`` counts queries whose returned distance differs from the
    ground truth -- it should always be zero and is asserted on by the tests.
    """
    channel = scheme.channel(loss_rate=loss_rate, seed=loss_seed)
    if memory_bound:
        client = scheme.client(config.device, memory_bound=True)  # type: ignore[call-arg]
    else:
        client = scheme.client(config.device)
    run = MethodRun(method=scheme.short_name, server=scheme.server_metrics())
    for query in queries:
        result: QueryResult = client.query(query.source, query.target, channel=channel)
        run.per_query.append(result.metrics)
        if abs(result.distance - query.true_distance) > 1e-6 * max(1.0, query.true_distance):
            run.mismatches += 1
    return run


def compare_methods(
    methods: Sequence[str],
    network: RoadNetwork,
    workload: QueryWorkload,
    config: ExperimentConfig,
    loss_rate: float = 0.0,
) -> Dict[str, MethodRun]:
    """Build each method once and run the same workload through all of them."""
    runs: Dict[str, MethodRun] = {}
    for method in methods:
        scheme = build_scheme(method, network, config)
        runs[method] = run_workload(scheme, workload, config, loss_rate=loss_rate)
    return runs
