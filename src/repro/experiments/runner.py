"""Per-method experiment runner.

Glue between the air-index schemes and the table/figure reproductions.  The
heavy lifting now lives in the engine layer: schemes are constructed through
the :mod:`repro.air.registry` and workloads execute via
:func:`repro.engine.system.execute_workload`, which is the same code path
:meth:`repro.engine.system.AirSystem.query_batch` uses -- so the harness and
the facade produce identical numbers by construction.

``build_scheme`` and ``compare_methods`` remain as thin deprecation shims for
code written against the pre-registry API; new code should use
``air.create(...)`` and :class:`~repro.engine.system.AirSystem` directly.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.air import registry
from repro.air.base import AirIndexScheme, ClientOptions
from repro.engine.results import MethodRun
from repro.engine.system import AirSystem, execute_workload
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import Query, QueryWorkload
from repro.network import datasets
from repro.network.graph import RoadNetwork

__all__ = [
    "MethodRun",
    "build_network",
    "build_scheme",
    "run_workload",
    "compare_methods",
]


def build_network(config: ExperimentConfig, name: Optional[str] = None) -> RoadNetwork:
    """Instantiate the configured (scaled) evaluation network."""
    return datasets.load(name or config.network, scale=config.scale, seed=config.seed)


def build_scheme(
    method: str, network: RoadNetwork, config: ExperimentConfig
) -> AirIndexScheme:
    """Construct the scheme for the paper's method abbreviation.

    .. deprecated::
        Use ``air.create(method, network, **params)`` or
        ``AirSystem.scheme(method)``; this shim resolves the configured
        parameters through the registry's ``config_map`` and raises the same
        ``ValueError`` for unknown methods.
    """
    warnings.warn(
        "build_scheme is deprecated; use air.create(...) or AirSystem.scheme(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    name = registry.canonical_name(method)
    return registry.create(name, network, **registry.params_from_config(name, config))


def run_workload(
    scheme: AirIndexScheme,
    queries: Iterable[Query],
    config: ExperimentConfig,
    loss_rate: float = 0.0,
    memory_bound: bool = False,
    loss_seed: int = 0,
) -> MethodRun:
    """Run every query through the scheme's client and collect metrics.

    ``mismatches`` counts queries whose returned distance differs from the
    ground truth -- it should always be zero and is asserted on by the tests.
    """
    options = ClientOptions(
        device=config.device,
        memory_bound=memory_bound,
        loss_rate=loss_rate,
        loss_seed=loss_seed,
    )
    return execute_workload(scheme, queries, options)


def compare_methods(
    methods: Sequence[str],
    network: RoadNetwork,
    workload: QueryWorkload,
    config: ExperimentConfig,
    loss_rate: float = 0.0,
) -> Dict[str, MethodRun]:
    """Build each method once and run the same workload through all of them.

    .. deprecated::
        Use ``AirSystem(network, config).compare(methods, workload, ...)``.
    """
    warnings.warn(
        "compare_methods is deprecated; use AirSystem.compare(...)",
        DeprecationWarning,
        stacklevel=2,
    )
    system = AirSystem(network, config=config)
    runs = system.compare(methods, workload, loss_rate=loss_rate)
    # The old function keyed the result by the method strings as given
    # (``runs["nr"]`` worked); AirSystem.compare keys by canonical name.
    return {method: runs[registry.canonical_name(method)] for method in methods}


_DEPRECATED_CONSTANTS = {
    # Methods included in the paper's device experiments (Figures 10-14).
    "COMPARISON_METHODS": registry.comparison_schemes,
    # All methods, including the two that only appear in Table 1.
    "ALL_METHODS": registry.available_schemes,
}


def __getattr__(name: str) -> List[str]:
    """Deprecated method-list constants, now answered by the registry."""
    try:
        supplier = _DEPRECATED_CONSTANTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    warnings.warn(
        f"{name} is deprecated; query the registry via "
        "air.comparison_schemes() / air.available_schemes()",
        DeprecationWarning,
        stacklevel=2,
    )
    return supplier()
