"""Query workload generation (paper Section 7).

The paper processes 400 shortest path queries between randomly selected
source and destination nodes, then classifies them into four shortest-path
length buckets (Figure 10).  :class:`QueryWorkload` reproduces that: it draws
random connected source/target pairs deterministically and can bucket them by
their true shortest path length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.algorithms.dijkstra import dijkstra_distances, shortest_path
from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork

__all__ = ["Query", "QueryWorkload"]


@dataclass(frozen=True)
class Query:
    """One shortest path query with its ground-truth distance."""

    source: int
    target: int
    true_distance: float


class QueryWorkload:
    """A reproducible set of random point-to-point queries."""

    def __init__(
        self,
        network: RoadNetwork,
        num_queries: int,
        seed: int = 0,
        distinct_endpoints: bool = True,
    ) -> None:
        self.network = network
        self.seed = seed
        rng = random.Random(seed)
        node_ids = network.node_ids()
        queries: List[Query] = []
        attempts = 0
        while len(queries) < num_queries and attempts < 50 * num_queries:
            attempts += 1
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            if distinct_endpoints and source == target:
                continue
            distance = shortest_path(network, source, target).distance
            if distance == INFINITY:
                continue
            queries.append(Query(source, target, distance))
        self.queries: List[Query] = queries

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    # ------------------------------------------------------------------
    # Figure 10 bucketing
    # ------------------------------------------------------------------
    def network_diameter_estimate(self, samples: int = 8) -> float:
        """Estimate the network diameter by a few single-source sweeps."""
        rng = random.Random(self.seed + 1)
        node_ids = self.network.node_ids()
        best = 0.0
        for _ in range(max(1, samples)):
            source = rng.choice(node_ids)
            distances = dijkstra_distances(self.network, source).distances
            finite = [d for d in distances.values() if d != INFINITY]
            if finite:
                best = max(best, max(finite))
        return best

    def bucket_by_length(self, num_buckets: int = 4) -> Dict[str, List[Query]]:
        """Group queries into equal-width shortest-path-length buckets.

        Mirrors Figure 10's x axis: the bucket edges split the observed
        distance range (0 to the maximum query distance) evenly.
        """
        if not self.queries:
            return {}
        upper = max(query.true_distance for query in self.queries)
        width = upper / num_buckets if upper > 0 else 1.0
        buckets: Dict[str, List[Query]] = {}
        for index in range(num_buckets):
            low = index * width
            high = (index + 1) * width
            label = f"{low:.0f}-{high:.0f}"
            buckets[label] = []
        labels = list(buckets)
        for query in self.queries:
            index = min(num_buckets - 1, int(query.true_distance / width))
            buckets[labels[index]].append(query)
        return buckets

    def pairs(self) -> List[Tuple[int, int]]:
        """The raw (source, target) pairs."""
        return [(query.source, query.target) for query in self.queries]
