"""Query and fleet workload generation (paper Section 7 and beyond).

The paper processes 400 shortest path queries between randomly selected
source and destination nodes, then classifies them into four shortest-path
length buckets (Figure 10).  :class:`QueryWorkload` reproduces that: it draws
random connected source/target pairs deterministically and can bucket them by
their true shortest path length.

The fleet scenario generators go past the paper's one-client-at-a-time
evaluation: each returns a population of :class:`~repro.fleet.DeviceSpec`
for :func:`repro.fleet.simulate_fleet`, differing in *when* devices tune in
(expressed as a cycle fraction, so the scenarios stay scheme-agnostic) and
in how skewed their queries are:

* :func:`fleet_rush_hour` -- a commute burst: devices tune in within a
  narrow window of the cycle and draw their query from a small pool of
  popular origin/destination pairs (rank-weighted, so the fast path's
  probe-once-replay-many sharing is realistic);
* :func:`fleet_uniform_trickle` -- independent devices, uniform tune-in
  moments, every query drawn fresh; and
* :func:`fleet_hot_destination` -- everyone heads to one of a few hot
  destinations (stadium, airport) from a random origin.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fleet.devices import DeviceSpec
from repro.network.algorithms import kernel
from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork

__all__ = [
    "Query",
    "QueryWorkload",
    "FLEET_SCENARIOS",
    "fleet_rush_hour",
    "fleet_uniform_trickle",
    "fleet_hot_destination",
]


@dataclass(frozen=True)
class Query:
    """One shortest path query with its ground-truth distance."""

    source: int
    target: int
    true_distance: float


class QueryWorkload:
    """A reproducible set of random point-to-point queries."""

    def __init__(
        self,
        network: RoadNetwork,
        num_queries: int,
        seed: int = 0,
        distinct_endpoints: bool = True,
    ) -> None:
        self.network = network
        self.seed = seed
        rng = random.Random(seed)
        node_ids = network.node_ids()
        # Ground truth runs through the kernel's early-terminating
        # point-to-point search over the network snapshot (identical
        # distances; no result-dict materialization per draw).
        arena = kernel.arena_for(network.ensure_csr())
        queries: List[Query] = []
        attempts = 0
        while len(queries) < num_queries and attempts < 50 * num_queries:
            attempts += 1
            source = rng.choice(node_ids)
            target = rng.choice(node_ids)
            if distinct_endpoints and source == target:
                continue
            distance = arena.point_to_point(source, target).distance_to(target)
            if distance == INFINITY:
                continue
            queries.append(Query(source, target, distance))
        self.queries: List[Query] = queries

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    # ------------------------------------------------------------------
    # Figure 10 bucketing
    # ------------------------------------------------------------------
    def network_diameter_estimate(self, samples: int = 8) -> float:
        """Estimate the network diameter by a few single-source sweeps."""
        rng = random.Random(self.seed + 1)
        node_ids = self.network.node_ids()
        arena = kernel.arena_for(self.network.ensure_csr())
        best = 0.0
        for _ in range(max(1, samples)):
            source = rng.choice(node_ids)
            labels = arena.sssp(source, need_predecessors=False).dist
            finite = [d for d in labels if d != INFINITY]
            if finite:
                best = max(best, max(finite))
        return best

    def bucket_by_length(self, num_buckets: int = 4) -> Dict[str, List[Query]]:
        """Group queries into equal-width shortest-path-length buckets.

        Mirrors Figure 10's x axis: the bucket edges split the observed
        distance range (0 to the maximum query distance) evenly.
        """
        if not self.queries:
            return {}
        upper = max(query.true_distance for query in self.queries)
        width = upper / num_buckets if upper > 0 else 1.0
        buckets: Dict[str, List[Query]] = {}
        for index in range(num_buckets):
            low = index * width
            high = (index + 1) * width
            label = f"{low:.0f}-{high:.0f}"
            buckets[label] = []
        labels = list(buckets)
        for query in self.queries:
            index = min(num_buckets - 1, int(query.true_distance / width))
            buckets[labels[index]].append(query)
        return buckets

    def pairs(self) -> List[Tuple[int, int]]:
        """The raw (source, target) pairs."""
        return [(query.source, query.target) for query in self.queries]


# ----------------------------------------------------------------------
# Fleet scenarios
# ----------------------------------------------------------------------
def _require_queryable(network: RoadNetwork) -> List[int]:
    """The network's node ids; raises if no source != target pair exists."""
    node_ids = network.node_ids()
    if len(node_ids) < 2:
        raise ValueError(
            f"fleet scenarios need at least 2 nodes, network {network.name!r} "
            f"has {len(node_ids)}"
        )
    return node_ids


def _connected_pair(
    network: RoadNetwork, rng: random.Random, node_ids: List[int]
) -> Tuple[int, int, float]:
    """One random connected source/target pair with its true distance."""
    arena = kernel.arena_for(network.ensure_csr())
    for _ in range(200):
        source, target = rng.choice(node_ids), rng.choice(node_ids)
        if source == target:
            continue
        distance = arena.point_to_point(source, target).distance_to(target)
        if distance != INFINITY:
            return source, target, distance
    raise ValueError(
        f"could not sample a connected query pair on network {network.name!r}"
    )


def _rank_weighted_sampler(
    count: int, skew: float
) -> Callable[[random.Random], int]:
    """Sampler of indexes in ``[0, count)`` with Zipf weights ``1/(i+1)^skew``.

    The cumulative weight table is built once per scenario; each draw is one
    ``rng.random()`` plus a bisection, which matters for fleet sizes in the
    hundreds of thousands.
    """
    cumulative = list(
        itertools.accumulate(1.0 / (index + 1) ** skew for index in range(count))
    )
    total = cumulative[-1]

    def draw(rng: random.Random) -> int:
        return min(count - 1, bisect.bisect_left(cumulative, rng.random() * total))

    return draw


def fleet_rush_hour(
    network: RoadNetwork,
    num_devices: int,
    *,
    seed: int = 0,
    hot_pairs: int = 24,
    pair_skew: float = 1.1,
    burst_center: float = 0.35,
    burst_width: float = 0.08,
    loss_rate: float = 0.0,
    with_ground_truth: bool = True,
) -> List[DeviceSpec]:
    """A commute burst: a narrow tune-in window, a small pool of hot routes.

    ``burst_center``/``burst_width`` place the tune-in moments (as cycle
    fractions) on a clamped Gaussian; queries are drawn rank-weighted from
    ``hot_pairs`` popular origin/destination pairs, whose ground truth is
    computed once per pair (cheap even for large fleets).
    """
    rng = random.Random(seed)
    node_ids = _require_queryable(network)
    # Distinct routes only: a duplicate draw would occupy several Zipf ranks
    # with one route, silently distorting the advertised pool skew.
    pool_size = max(1, min(hot_pairs, len(node_ids) * (len(node_ids) - 1)))
    pool: List[Tuple[int, int, float]] = []
    routes = set()
    attempts = 0
    while len(pool) < pool_size and attempts < 50 * pool_size:
        attempts += 1
        source, target, distance = _connected_pair(network, rng, node_ids)
        if (source, target) not in routes:
            routes.add((source, target))
            pool.append((source, target, distance))
    draw_pair = _rank_weighted_sampler(len(pool), pair_skew)
    devices: List[DeviceSpec] = []
    for device_id in range(num_devices):
        source, target, distance = pool[draw_pair(rng)]
        fraction = min(max(rng.gauss(burst_center, burst_width), 0.0), 1.0 - 1e-9)
        devices.append(
            DeviceSpec(
                device_id=device_id,
                source=source,
                target=target,
                tune_in_fraction=fraction,
                loss_rate=loss_rate,
                true_distance=distance if with_ground_truth else None,
            )
        )
    return devices


def fleet_uniform_trickle(
    network: RoadNetwork,
    num_devices: int,
    *,
    seed: int = 0,
    loss_rate: float = 0.0,
    with_ground_truth: bool = False,
) -> List[DeviceSpec]:
    """Independent devices: uniform tune-in moments, fresh random queries.

    Ground truth costs one shortest path computation per device, so it
    defaults to off for large fleets.
    """
    rng = random.Random(seed)
    node_ids = _require_queryable(network)
    devices: List[DeviceSpec] = []
    for device_id in range(num_devices):
        if with_ground_truth:
            source, target, distance = _connected_pair(network, rng, node_ids)
        else:
            source, target = rng.choice(node_ids), rng.choice(node_ids)
            while target == source:
                target = rng.choice(node_ids)
            distance = None
        devices.append(
            DeviceSpec(
                device_id=device_id,
                source=source,
                target=target,
                tune_in_fraction=rng.random(),
                loss_rate=loss_rate,
                true_distance=distance,
            )
        )
    return devices


def fleet_hot_destination(
    network: RoadNetwork,
    num_devices: int,
    *,
    seed: int = 0,
    num_destinations: int = 6,
    destination_skew: float = 1.3,
    loss_rate: float = 0.0,
    with_ground_truth: bool = False,
) -> List[DeviceSpec]:
    """Everyone heads to one of a few hot destinations from a random origin.

    With ground truth enabled, one reverse single-source sweep per hot
    destination prices every origin at once.
    """
    if num_destinations < 1:
        raise ValueError(f"num_destinations must be >= 1, got {num_destinations}")
    rng = random.Random(seed)
    node_ids = _require_queryable(network)
    destinations = rng.sample(node_ids, min(num_destinations, len(node_ids)))
    truth_to: Dict[int, Dict[int, float]] = {}
    if with_ground_truth:
        # One reverse distance-only kernel sweep per hot destination over
        # the forward network's snapshot -- no reversed-copy materialization.
        arena = kernel.arena_for(network.ensure_csr())
        for destination in destinations:
            truth_to[destination] = arena.sssp(
                destination, need_predecessors=False, reverse=True
            ).distances_dict()
    draw_destination = _rank_weighted_sampler(len(destinations), destination_skew)
    devices: List[DeviceSpec] = []
    for device_id in range(num_devices):
        target = destinations[draw_destination(rng)]
        source = rng.choice(node_ids)
        while source == target:
            source = rng.choice(node_ids)
        distance: Optional[float] = None
        if with_ground_truth:
            distance = truth_to[target].get(source, INFINITY)
            if distance == INFINITY:
                distance = None
        devices.append(
            DeviceSpec(
                device_id=device_id,
                source=source,
                target=target,
                tune_in_fraction=rng.random(),
                loss_rate=loss_rate,
                true_distance=distance,
            )
        )
    return devices


#: Scenario name -> generator, for the CLI's ``fleet --scenario`` choices.
FLEET_SCENARIOS: Dict[str, Callable[..., List[DeviceSpec]]] = {
    "rush-hour": fleet_rush_hour,
    "trickle": fleet_uniform_trickle,
    "hot-destination": fleet_hot_destination,
}
