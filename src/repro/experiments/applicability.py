"""Method applicability per network (paper Table 2).

A method is *applicable* on a network when the client-side working set of a
query fits the device heap (8 MB on the paper's phone).  For the full-cycle
methods the working set is essentially the whole broadcast cycle; for EB, NR
and HiTi it is the measured peak memory over a small probe workload.

The paper's Table 2 result -- only NR survives on the largest networks, with
EB next and the full-cycle methods dropping out one by one -- depends only on
those working-set sizes relative to each other and to the heap, so the shape
is reproduced at any network scale by scaling the heap alongside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.air import canonical_name
from repro.broadcast.device import DeviceProfile
from repro.engine.system import AirSystem
from repro.experiments.config import ExperimentConfig
from repro.experiments.workloads import QueryWorkload

__all__ = ["ApplicabilityResult", "scaled_device", "method_applicability"]


@dataclass
class ApplicabilityResult:
    """Outcome of the applicability check for one method on one network."""

    network: str
    method: str
    peak_memory_bytes: int
    heap_bytes: int

    @property
    def applicable(self) -> bool:
        """Whether the working set fits the heap (a check mark in Table 2)."""
        return self.peak_memory_bytes <= self.heap_bytes


def scaled_device(device: DeviceProfile, scale: float) -> DeviceProfile:
    """Scale the device heap along with the network size.

    Running the paper's networks at a fraction of their size shrinks every
    method's working set proportionally; scaling the 8 MB heap by the same
    factor preserves which methods fit and which do not.
    """
    return DeviceProfile(
        name=f"{device.name}-x{scale:g}",
        heap_bytes=max(1, int(device.heap_bytes * scale)),
        receive_watts=device.receive_watts,
        sleep_watts=device.sleep_watts,
        cpu_watts=device.cpu_watts,
        cpu_slowdown=device.cpu_slowdown,
    )


def method_applicability(
    methods: Sequence[str],
    network_names: Sequence[str],
    config: ExperimentConfig,
    probe_queries: int = 5,
    device: Optional[DeviceProfile] = None,
) -> List[ApplicabilityResult]:
    """Evaluate Table 2: per network, which methods fit the client heap."""
    device = device or scaled_device(config.device, config.scale)
    results: List[ApplicabilityResult] = []
    for name in network_names:
        system = AirSystem.from_config(config, network_name=name)
        workload = QueryWorkload(system.network, probe_queries, seed=config.seed)
        runs = system.compare(methods, workload)
        for method in methods:
            results.append(
                ApplicabilityResult(
                    network=name,
                    method=method,
                    peak_memory_bytes=runs[canonical_name(method)].peak_memory_bytes,
                    heap_bytes=device.heap_bytes,
                )
            )
    return results
