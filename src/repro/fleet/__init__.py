"""Fleet simulator: an event-driven population of devices on one broadcast.

The paper evaluates air indexes one client at a time; the whole point of a
wireless broadcast is that a single cycle serves an unbounded audience.  This
package models that audience: N devices tune into one shared cycle at
staggered offsets, each with its own query, loss model and memory bound.

Per-device cost is *session replay only*: lossless devices with a query that
some earlier device (the "probe") already ran get their channel metrics from
:mod:`repro.broadcast.replay` with O(ops) packet arithmetic, reusing the
probe's answer, working set and CPU cost.  Lossy devices are simulated
natively, packet by packet, with a pre-seeded loss model.

Determinism contract (same as ``AirSystem.query_batch``): every per-device
random draw -- tune-in offset and loss seed -- is made *in device order*
before any device is processed, and the probe for each trace key is the
first device with that key in device order (fixed before any probe runs),
so a fleet run is bit-identical regardless of the ``concurrency`` setting
(wall-clock fields excepted).
"""

from repro.fleet.devices import DeviceSpec
from repro.fleet.results import DeviceOutcome, FleetRun
from repro.fleet.simulator import simulate_fleet

__all__ = ["DeviceSpec", "DeviceOutcome", "FleetRun", "simulate_fleet"]
