"""Event-driven multi-client broadcast simulation.

One broadcast cycle, N devices.  The simulator partitions the fleet into

* **lossless** devices, served by the shared-session fast path: one real
  *probe* session per distinct ``(source, target, memory_bound)`` key
  materializes the packet stream (:mod:`repro.broadcast.replay`), and every
  device with that key replays it at its own tune-in offset.  With numpy the
  replay runs through the vectorized kernel
  (:func:`repro.broadcast.replay_bulk.replay_trace_bulk`): the trace compiles
  once into a columnar :class:`~repro.broadcast.replay_bulk.TraceTable` and
  the whole group's tuning/latency comes out of O(ops) array passes, so
  per-device Python cost vanishes; without numpy every device falls back to
  the scalar :func:`~repro.broadcast.replay.replay_trace` loop; and
* **lossy** devices, simulated natively packet by packet (their Bernoulli
  loss draws are part of the result and cannot be shared).

Replay -- bulk or scalar -- is pure array/packet arithmetic and runs inline
on the calling thread; the worker pool is reserved for the phases that do
real simulation work (probe sessions and native lossy devices), where
threads actually pay off.

Determinism: tune-in offsets and loss seeds are drawn from per-device RNGs
keyed by the device's position in the fleet, the probe for each key is the
first device with that key in device order (fixed before any probe runs, so
probes may fan out over the pool too), and every phase writes into
index-addressed column slots -- so the outcome is bit-identical regardless
of ``concurrency`` and of whether the bulk kernel is active (wall-clock
fields excepted).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.air.base import (
    MISMATCH_RTOL,
    AirClient,
    AirIndexScheme,
    ClientOptions,
    QueryResult,
    is_mismatch as _is_mismatch,
)
from repro.broadcast.channel import ClientSession, PacketLossModel
from repro.broadcast.metrics import ClientMetrics
from repro.broadcast.replay import RecordingSession, SessionTrace, replay_trace
from repro.broadcast.replay_bulk import TraceTable, numpy_or_none, replay_trace_bulk
from repro.concurrency import run_indexed

from repro.fleet.devices import DeviceSpec
from repro.fleet.results import FleetRun

__all__ = ["simulate_fleet", "MISMATCH_RTOL"]

#: Trace cache key: everything that shapes a lossless session's behaviour.
_TraceKey = Tuple[int, int, bool]


def _resolve_tune_in(
    spec: DeviceSpec, rng: Optional[random.Random], total: int
) -> int:
    if spec.tune_in_offset is not None:
        return spec.tune_in_offset % total
    if spec.tune_in_fraction is not None:
        return int(spec.tune_in_fraction * total) % total
    assert rng is not None  # callers create the RNG whenever a draw is due
    return rng.randrange(total)


def simulate_fleet(
    scheme: AirIndexScheme,
    devices: Sequence[DeviceSpec],
    options: Optional[ClientOptions] = None,
    *,
    concurrency: int = 1,
    seed: int = 0,
    chunk_size: Optional[int] = None,
) -> FleetRun:
    """Simulate a fleet of devices tuning into one scheme's broadcast.

    Parameters
    ----------
    scheme:
        A built scheme (its cycle is reused as-is -- no rebuilds).
    devices:
        The fleet, typically from a scenario generator in
        :mod:`repro.experiments.workloads`.
    options:
        Base client options; the per-device ``memory_bound`` flag overrides
        the option's, and per-device loss models replace the option's
        channel-level loss fields.
    concurrency:
        Worker threads for the probe/native phases (replay itself is bulk
        arithmetic and always runs inline).  Must be >= 1; results are
        bit-identical for every value.
    seed:
        Seed of the per-device tune-in/loss draws (for specs that leave
        them unset).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    specs = list(devices)
    network = scheme.network
    started = time.perf_counter()
    run = FleetRun(scheme=scheme.short_name, concurrency=concurrency)
    if not specs:
        run.wall_seconds = time.perf_counter() - started
        return run

    cycle = scheme.cycle
    total = cycle.total_packets
    run.cycle_packets = total
    run.allocate(specs)
    base_options = options or ClientOptions()

    # ------------------------------------------------------------------
    # One fused pass over the fleet, in device order: validate each distinct
    # query once (the error still names the first offending device),
    # resolve every random choice (determinism contract: the per-device RNG
    # draws the tune-in offset first, then the loss seed -- and is skipped
    # entirely when neither draw can be observed, which leaves the drawn
    # values bit-identical), and partition devices into lossless replay
    # groups and native lossy indices.
    # ------------------------------------------------------------------
    offsets: List[int] = [0] * len(specs)
    loss_seeds: List[int] = [0] * len(specs)
    groups: Dict[_TraceKey, List[int]] = {}
    native_indices: List[int] = []
    checked_pairs: set = set()
    memory_modes: set = set()
    for index, spec in enumerate(specs):
        pair = (spec.source, spec.target)
        if pair not in checked_pairs:
            if spec.source not in network or spec.target not in network:
                raise ValueError(
                    f"device {spec.device_id}: query {spec.source}->{spec.target} "
                    f"references nodes outside network {network.name!r}"
                )
            checked_pairs.add(pair)
        memory_modes.add(spec.memory_bound)
        explicit_tune_in = (
            spec.tune_in_offset is not None or spec.tune_in_fraction is not None
        )
        needs_loss_seed = spec.loss_seed is None and spec.loss_rate != 0.0
        rng = (
            random.Random(seed * 1_000_003 + index + 1)
            if (not explicit_tune_in or needs_loss_seed)
            else None
        )
        offsets[index] = _resolve_tune_in(spec, rng, total)
        if spec.loss_seed is not None:
            loss_seeds[index] = spec.loss_seed
        elif needs_loss_seed:
            loss_seeds[index] = rng.randrange(2**31)
        if spec.loss_rate == 0.0:
            groups.setdefault(
                (spec.source, spec.target, spec.memory_bound), []
            ).append(index)
        else:
            native_indices.append(index)

    # One client per memory mode present in the fleet, created up front so
    # the parallel phase only reads shared state; a memory-bound client on a
    # scheme without Section 6.1 support raises here, before any work runs.
    clients: Dict[bool, AirClient] = {
        memory_bound: scheme.client(
            options=base_options.replace(memory_bound=memory_bound, loss_rate=0.0)
        )
        for memory_bound in sorted(memory_modes)
    }

    def client_for(memory_bound: bool) -> AirClient:
        return clients[memory_bound]

    # ------------------------------------------------------------------
    # Probe phase: one real session per distinct lossless trace key, probed
    # at the first device of that key in device order (the dict preserves
    # first-seen order).  The probe set and every probe input are fixed
    # before any probe runs, so the probes themselves fan out over the pool
    # without affecting determinism -- which matters when most queries are
    # distinct and probing, not replay, dominates the wall clock.
    # ------------------------------------------------------------------
    probe_items: List[Tuple[_TraceKey, int]] = [
        (key, indices[0]) for key, indices in groups.items()
    ]

    def probe(item: int) -> Tuple[SessionTrace, QueryResult]:
        _, index = probe_items[item]
        spec = specs[index]
        session = RecordingSession(cycle, offsets[index])
        result = client_for(spec.memory_bound).query(
            spec.source, spec.target, session=session
        )
        return session.trace(), result

    traces: Dict[_TraceKey, Tuple[SessionTrace, QueryResult]] = {}
    for (key, _), recorded in zip(
        probe_items, run_indexed(probe, len(probe_items), concurrency)
    ):
        traces[key] = recorded
    run.probes = len(traces)

    # ------------------------------------------------------------------
    # Replay phase: bulk array passes per group (inline -- the kernel is
    # pure numpy arithmetic, a worker pool would only add handoff cost).
    # ------------------------------------------------------------------
    np = numpy_or_none()
    if np is not None and groups:
        layout = cycle.compiled_layout()
        offsets_arr = np.asarray(offsets, dtype=np.int64)
        for key, indices in groups.items():
            trace, probe_result = traces[key]
            table = TraceTable.compile(trace, layout)
            group_indices = np.asarray(indices, dtype=np.int64)
            group_offsets = offsets_arr[group_indices]
            replayed = replay_trace_bulk(table, layout, group_offsets)
            truths = {specs[i].true_distance for i in indices}
            if len(truths) == 1:
                # Common case: one ground truth per query -> one comparison.
                mismatches = _is_mismatch(probe_result.distance, truths.pop())
            else:
                mismatches = np.fromiter(
                    (
                        _is_mismatch(probe_result.distance, specs[i].true_distance)
                        for i in indices
                    ),
                    dtype=bool,
                    count=len(indices),
                )
            run.record_replay_group(
                indices=group_indices,
                offsets=group_offsets,
                tuning_packets=replayed.tuning_packets,
                latencies=replayed.access_latency_packets,
                distance=probe_result.distance,
                found=probe_result.found,
                mismatches=mismatches,
                peak_memory_bytes=probe_result.metrics.peak_memory_bytes,
                cpu_seconds=probe_result.metrics.cpu_seconds,
                extra_id=run.register_extra(probe_result.metrics.extra, copy=True),
            )
    elif groups:
        # Scalar fallback (no numpy, or the bulk kernel switched off):
        # per-device replay_trace, still inline -- O(ops) arithmetic per
        # device gains nothing from thread handoff under the GIL.
        for key, indices in groups.items():
            trace, probe_result = traces[key]
            extra_id = run.register_extra(probe_result.metrics.extra, copy=True)
            for index in indices:
                offset = offsets[index]
                replayed = replay_trace(trace, cycle, offset)
                run.record_device(
                    index=index,
                    offset=offset,
                    distance=probe_result.distance,
                    found=probe_result.found,
                    replay=True,
                    metrics=ClientMetrics(
                        tuning_time_packets=replayed.tuning_packets,
                        access_latency_packets=replayed.access_latency_packets,
                        peak_memory_bytes=probe_result.metrics.peak_memory_bytes,
                        cpu_seconds=probe_result.metrics.cpu_seconds,
                        lost_packets=0,
                    ),
                    mismatch=_is_mismatch(
                        probe_result.distance, specs[index].true_distance
                    ),
                    extra_id=extra_id,
                )
    run.replays = sum(len(indices) for indices in groups.values())

    # ------------------------------------------------------------------
    # Native phase (parallelizable: every input was pre-drawn; results come
    # back in index order and are scattered into the columns serially).
    # ------------------------------------------------------------------
    def process_native(item: int) -> QueryResult:
        index = native_indices[item]
        spec = specs[index]
        session = ClientSession(
            cycle, offsets[index], PacketLossModel(spec.loss_rate, seed=loss_seeds[index])
        )
        return client_for(spec.memory_bound).query(
            spec.source, spec.target, session=session
        )

    for index, result in zip(
        native_indices,
        run_indexed(process_native, len(native_indices), concurrency, chunk_size),
    ):
        run.record_device(
            index=index,
            offset=offsets[index],
            distance=result.distance,
            found=result.found,
            replay=False,
            metrics=result.metrics,
            mismatch=_is_mismatch(result.distance, specs[index].true_distance),
            extra_id=run.register_extra(result.metrics.extra, copy=False),
        )
    run.natives = len(native_indices)
    run.wall_seconds = time.perf_counter() - started
    return run
