"""Event-driven multi-client broadcast simulation.

One broadcast cycle, N devices.  The simulator partitions the fleet into

* **lossless** devices, served by the shared-session fast path: one real
  *probe* session per distinct ``(source, target, memory_bound)`` key
  materializes the packet stream (:mod:`repro.broadcast.replay`), and every
  device with that key replays it at its own tune-in offset with O(ops)
  packet arithmetic -- the probe's answer, working set and CPU cost are
  reused, so per-device cost is session replay only; and
* **lossy** devices, simulated natively packet by packet (their Bernoulli
  loss draws are part of the result and cannot be shared).

Determinism: tune-in offsets and loss seeds are drawn from per-device RNGs
keyed by the device's position in the fleet, the probe for each key is the
first device with that key in device order (fixed before any probe runs, so
probes may fan out over the pool too), and every phase writes into
index-addressed slots -- so the outcome is bit-identical regardless of
``concurrency`` (wall-clock fields excepted).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.air.base import (
    MISMATCH_RTOL,
    AirClient,
    AirIndexScheme,
    ClientOptions,
    QueryResult,
    is_mismatch as _is_mismatch,
)
from repro.broadcast.channel import ClientSession, PacketLossModel
from repro.broadcast.metrics import ClientMetrics
from repro.broadcast.replay import RecordingSession, SessionTrace, replay_trace
from repro.concurrency import run_indexed

from repro.fleet.devices import DeviceSpec
from repro.fleet.results import DeviceOutcome, FleetRun

__all__ = ["simulate_fleet", "MISMATCH_RTOL"]

#: Trace cache key: everything that shapes a lossless session's behaviour.
_TraceKey = Tuple[int, int, bool]


def _resolve_tune_in(spec: DeviceSpec, rng: random.Random, total: int) -> int:
    if spec.tune_in_offset is not None:
        return spec.tune_in_offset % total
    if spec.tune_in_fraction is not None:
        return int(spec.tune_in_fraction * total) % total
    return rng.randrange(total)


def simulate_fleet(
    scheme: AirIndexScheme,
    devices: Sequence[DeviceSpec],
    options: Optional[ClientOptions] = None,
    *,
    concurrency: int = 1,
    seed: int = 0,
    chunk_size: Optional[int] = None,
) -> FleetRun:
    """Simulate a fleet of devices tuning into one scheme's broadcast.

    Parameters
    ----------
    scheme:
        A built scheme (its cycle is reused as-is -- no rebuilds).
    devices:
        The fleet, typically from a scenario generator in
        :mod:`repro.experiments.workloads`.
    options:
        Base client options; the per-device ``memory_bound`` flag overrides
        the option's, and per-device loss models replace the option's
        channel-level loss fields.
    concurrency:
        Worker threads for the replay/native phase.  Must be >= 1; results
        are bit-identical for every value.
    seed:
        Seed of the per-device tune-in/loss draws (for specs that leave
        them unset).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    specs = list(devices)
    network = scheme.network
    for spec in specs:
        if spec.source not in network or spec.target not in network:
            raise ValueError(
                f"device {spec.device_id}: query {spec.source}->{spec.target} "
                f"references nodes outside network {network.name!r}"
            )
    started = time.perf_counter()
    run = FleetRun(scheme=scheme.short_name, concurrency=concurrency)
    if not specs:
        run.wall_seconds = time.perf_counter() - started
        return run

    cycle = scheme.cycle
    total = cycle.total_packets
    run.cycle_packets = total
    base_options = options or ClientOptions()

    # ------------------------------------------------------------------
    # Pre-draw every random choice in device order (determinism contract).
    # ------------------------------------------------------------------
    offsets: List[int] = []
    loss_seeds: List[int] = []
    for index, spec in enumerate(specs):
        rng = random.Random(seed * 1_000_003 + index + 1)
        offsets.append(_resolve_tune_in(spec, rng, total))
        loss_seeds.append(
            spec.loss_seed if spec.loss_seed is not None else rng.randrange(2**31)
        )

    # One client per memory mode present in the fleet, created up front so
    # the parallel phase only reads shared state; a memory-bound client on a
    # scheme without Section 6.1 support raises here, before any work runs.
    clients: Dict[bool, AirClient] = {
        memory_bound: scheme.client(
            options=base_options.replace(memory_bound=memory_bound, loss_rate=0.0)
        )
        for memory_bound in sorted({spec.memory_bound for spec in specs})
    }

    def client_for(memory_bound: bool) -> AirClient:
        return clients[memory_bound]

    # ------------------------------------------------------------------
    # Probe phase: one real session per distinct lossless trace key, probed
    # at the first device of that key in device order.  The probe set and
    # every probe input are fixed before any probe runs, so the probes
    # themselves fan out over the pool without affecting determinism --
    # which matters when most queries are distinct and probing, not replay,
    # dominates the wall clock.
    # ------------------------------------------------------------------
    probe_items: List[Tuple[_TraceKey, int]] = []
    seen: set = set()
    for index, spec in enumerate(specs):
        if spec.loss_rate != 0.0:
            continue
        key = (spec.source, spec.target, spec.memory_bound)
        if key not in seen:
            seen.add(key)
            probe_items.append((key, index))

    def probe(item: int) -> Tuple[SessionTrace, QueryResult]:
        _, index = probe_items[item]
        spec = specs[index]
        session = RecordingSession(cycle, offsets[index])
        result = client_for(spec.memory_bound).query(
            spec.source, spec.target, session=session
        )
        return session.trace(), result

    traces: Dict[_TraceKey, Tuple[SessionTrace, QueryResult]] = {}
    for (key, _), recorded in zip(
        probe_items, run_indexed(probe, len(probe_items), concurrency)
    ):
        traces[key] = recorded
    run.probes = len(traces)

    # ------------------------------------------------------------------
    # Replay/native phase (parallelizable: every input was pre-drawn).
    # ------------------------------------------------------------------
    def process(index: int) -> DeviceOutcome:
        spec = specs[index]
        offset = offsets[index]
        if spec.loss_rate == 0.0:
            trace, probe = traces[(spec.source, spec.target, spec.memory_bound)]
            replayed = replay_trace(trace, cycle, offset)
            metrics = ClientMetrics(
                tuning_time_packets=replayed.tuning_packets,
                access_latency_packets=replayed.access_latency_packets,
                peak_memory_bytes=probe.metrics.peak_memory_bytes,
                cpu_seconds=probe.metrics.cpu_seconds,
                lost_packets=0,
                extra=dict(probe.metrics.extra),
            )
            return DeviceOutcome(
                spec=spec,
                tune_in_offset=offset,
                distance=probe.distance,
                found=probe.found,
                mode="replay",
                metrics=metrics,
                mismatch=_is_mismatch(probe.distance, spec.true_distance),
            )
        session = ClientSession(
            cycle, offset, PacketLossModel(spec.loss_rate, seed=loss_seeds[index])
        )
        result = client_for(spec.memory_bound).query(
            spec.source, spec.target, session=session
        )
        return DeviceOutcome(
            spec=spec,
            tune_in_offset=offset,
            distance=result.distance,
            found=result.found,
            mode="native",
            metrics=result.metrics,
            mismatch=_is_mismatch(result.distance, spec.true_distance),
        )

    for outcome in run_indexed(process, len(specs), concurrency, chunk_size):
        run.outcomes.append(outcome)
        if outcome.mode == "replay":
            run.replays += 1
        else:
            run.natives += 1
    run.wall_seconds = time.perf_counter() - started
    return run
