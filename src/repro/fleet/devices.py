"""Device population specifications for fleet simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DeviceSpec"]


@dataclass(frozen=True)
class DeviceSpec:
    """One device in a fleet: its query, tune-in moment and channel model.

    Tune-in can be fixed three ways, in priority order: an absolute packet
    ``tune_in_offset``, a cycle-relative ``tune_in_fraction`` in ``[0, 1)``
    (scenario generators use this so they stay scheme-agnostic -- the cycle
    length is unknown until a scheme is chosen), or neither, in which case
    the simulator draws a deterministic pseudo-random offset in device order.
    """

    device_id: int
    source: int
    target: int
    #: Absolute tune-in packet offset; wins over ``tune_in_fraction``.
    tune_in_offset: Optional[int] = None
    #: Tune-in moment as a fraction of the broadcast cycle.
    tune_in_fraction: Optional[float] = None
    #: Bernoulli per-packet loss probability of this device's radio link.
    loss_rate: float = 0.0
    #: Loss-model seed; drawn deterministically in device order when ``None``.
    loss_seed: Optional[int] = None
    #: Section 6.1 super-edge client mode (supported schemes only).
    memory_bound: bool = False
    #: Ground-truth shortest path distance, when the scenario computed it.
    true_distance: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError(
                f"device {self.device_id}: loss rate must be in [0, 1), "
                f"got {self.loss_rate}"
            )
        if self.tune_in_fraction is not None and not 0.0 <= self.tune_in_fraction < 1.0:
            raise ValueError(
                f"device {self.device_id}: tune_in_fraction must be in [0, 1), "
                f"got {self.tune_in_fraction}"
            )
        if self.tune_in_offset is not None and self.tune_in_offset < 0:
            raise ValueError(
                f"device {self.device_id}: tune_in_offset must be non-negative, "
                f"got {self.tune_in_offset}"
            )
