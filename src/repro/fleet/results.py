"""Aggregated outcome of a fleet simulation, stored columnarly.

A million-device fleet cannot afford one :class:`DeviceOutcome` object per
device on the hot path, so :class:`FleetRun` keeps its per-device results as
flat index-addressed columns (numpy arrays when available, plain lists
otherwise): the simulator scatters whole replay groups into the columns with
vectorized writes, and the aggregate views -- nearest-rank percentiles,
means, per-fleet energy -- run as bulk array passes over the columns.  The
object-level API is preserved: :attr:`FleetRun.outcomes` materializes the
:class:`DeviceOutcome` list lazily (and caches it), so reporting and test
code keeps iterating devices exactly as before.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.broadcast.device import CHANNEL_2MBPS, ChannelRate, DeviceProfile, J2ME_CLAMSHELL
from repro.broadcast.metrics import ClientMetrics
from repro.broadcast.replay_bulk import numpy_or_none

from repro.fleet.devices import DeviceSpec
from repro.stats import percentile

__all__ = ["DeviceOutcome", "FleetRun", "percentile"]


@dataclass(frozen=True)
class DeviceOutcome:
    """One device's result: the answer and its channel/compute cost.

    ``mode`` records how the outcome was produced: ``"replay"`` for the
    shared-session fast path (lossless devices) or ``"native"`` for a full
    packet-by-packet simulation (lossy devices).
    """

    spec: DeviceSpec
    tune_in_offset: int
    distance: float
    found: bool
    mode: str
    metrics: ClientMetrics
    mismatch: bool = False

    def deterministic_fields(self) -> Tuple:
        """Everything the determinism contract covers (no wall-clock)."""
        return (
            self.spec.device_id,
            round(self.distance, 9) if self.found else float("inf"),
            self.metrics.tuning_time_packets,
            self.metrics.access_latency_packets,
            self.metrics.peak_memory_bytes,
            self.metrics.lost_packets,
            self.mismatch,
        )


#: :class:`ClientMetrics` field -> column name, for the aggregate views.
_METRIC_COLUMNS = {
    "tuning_time_packets": "tuning",
    "access_latency_packets": "latency",
    "peak_memory_bytes": "peak_memory",
    "cpu_seconds": "cpu",
    "lost_packets": "lost",
}


class _OutcomeColumns:
    """Index-addressed flat storage of per-device outcome fields.

    One slot per device, in device order.  With numpy the columns are typed
    arrays and group writes are fancy-index scatters; without it they are
    plain lists and the (already slow) scalar paths fill them one row at a
    time.  ``extra_id`` indexes into the run's shared table of
    ``metrics.extra`` source dicts, so a replay group of 100k devices stores
    one dict, not 100k copies.
    """

    __slots__ = (
        "count",
        "offsets",
        "tuning",
        "latency",
        "peak_memory",
        "cpu",
        "lost",
        "distance",
        "found",
        "mismatch",
        "replay",
        "extra_id",
    )

    def __init__(self, count: int) -> None:
        self.count = count
        np = numpy_or_none()
        if np is not None:
            self.offsets = np.zeros(count, dtype=np.int64)
            self.tuning = np.zeros(count, dtype=np.int64)
            self.latency = np.zeros(count, dtype=np.int64)
            self.peak_memory = np.zeros(count, dtype=np.int64)
            self.cpu = np.zeros(count, dtype=np.float64)
            self.lost = np.zeros(count, dtype=np.int64)
            self.distance = np.zeros(count, dtype=np.float64)
            self.found = np.zeros(count, dtype=bool)
            self.mismatch = np.zeros(count, dtype=bool)
            self.replay = np.zeros(count, dtype=bool)
            self.extra_id = np.full(count, -1, dtype=np.int64)
        else:
            self.offsets = [0] * count
            self.tuning = [0] * count
            self.latency = [0] * count
            self.peak_memory = [0] * count
            self.cpu = [0.0] * count
            self.lost = [0] * count
            self.distance = [0.0] * count
            self.found = [False] * count
            self.mismatch = [False] * count
            self.replay = [False] * count
            self.extra_id = [-1] * count


class FleetRun:
    """Aggregated outcome of one fleet over one broadcast cycle.

    Constructed empty by the simulator, sized with :meth:`allocate`, then
    filled through the columnar recorders (:meth:`record_replay_group` for
    whole bulk-replayed groups, :meth:`record_device` for one device).  All
    aggregate methods read the flat columns directly; per-device
    :class:`DeviceOutcome` objects exist only once :attr:`outcomes` is
    touched.
    """

    def __init__(self, scheme: str, concurrency: int = 1) -> None:
        self.scheme = scheme
        #: Distinct probe sessions actually simulated end to end.
        self.probes = 0
        #: Devices served by trace replay.
        self.replays = 0
        #: Devices simulated natively (lossy channels).
        self.natives = 0
        self.concurrency = concurrency
        self.wall_seconds = 0.0
        self.cycle_packets = 0
        self._specs: List[DeviceSpec] = []
        self._columns: Optional[_OutcomeColumns] = None
        #: ``extra_id`` -> ``(source_dict, copy_on_materialize)``.
        self._extra_sources: List[Tuple[Dict[str, float], bool]] = []
        self._outcomes: Optional[List[DeviceOutcome]] = None

    # ------------------------------------------------------------------
    # Columnar recording (simulator-facing)
    # ------------------------------------------------------------------
    def allocate(self, specs: Sequence[DeviceSpec]) -> None:
        """Size the columns for one slot per device, in device order."""
        self._specs = list(specs)
        self._columns = _OutcomeColumns(len(self._specs))
        self._outcomes = None

    def register_extra(self, source: Dict[str, float], copy: bool) -> int:
        """Intern one ``metrics.extra`` source dict; returns its ``extra_id``.

        ``copy=True`` materializes a fresh copy per device (the replay path,
        where devices must not share the probe's dict); ``copy=False`` hands
        the dict through as-is (the native path, whose dict is the session's
        own).
        """
        self._extra_sources.append((source, copy))
        return len(self._extra_sources) - 1

    def record_replay_group(
        self,
        indices: Any,
        offsets: Any,
        tuning_packets: int,
        latencies: Any,
        distance: float,
        found: bool,
        mismatches: Any,
        peak_memory_bytes: int,
        cpu_seconds: float,
        extra_id: int,
    ) -> None:
        """Scatter one bulk-replayed group into the columns.

        ``indices``/``offsets``/``latencies`` are aligned arrays (device
        index, tune-in offset, access latency); the remaining fields are the
        probe's, shared by the whole group.  ``mismatches`` may be a scalar
        (the common case: one ground truth per query) or a per-device array.
        """
        columns = self._columns
        assert columns is not None, "allocate() must run before recording"
        self._outcomes = None
        columns.offsets[indices] = offsets
        columns.tuning[indices] = tuning_packets
        columns.latency[indices] = latencies
        columns.peak_memory[indices] = peak_memory_bytes
        columns.cpu[indices] = cpu_seconds
        columns.distance[indices] = distance
        columns.found[indices] = found
        columns.mismatch[indices] = mismatches
        columns.replay[indices] = True
        columns.extra_id[indices] = extra_id

    def record_device(
        self,
        index: int,
        offset: int,
        distance: float,
        found: bool,
        replay: bool,
        metrics: ClientMetrics,
        mismatch: bool,
        extra_id: int,
    ) -> None:
        """Record one device's outcome (native and scalar-fallback paths)."""
        columns = self._columns
        assert columns is not None, "allocate() must run before recording"
        self._outcomes = None
        columns.offsets[index] = offset
        columns.tuning[index] = metrics.tuning_time_packets
        columns.latency[index] = metrics.access_latency_packets
        columns.peak_memory[index] = metrics.peak_memory_bytes
        columns.cpu[index] = metrics.cpu_seconds
        columns.lost[index] = metrics.lost_packets
        columns.distance[index] = distance
        columns.found[index] = found
        columns.mismatch[index] = mismatch
        columns.replay[index] = replay
        columns.extra_id[index] = extra_id

    # ------------------------------------------------------------------
    # Object-level view (lazy)
    # ------------------------------------------------------------------
    def _materialize_extra(self, extra_id: int) -> Dict[str, float]:
        if extra_id < 0:
            return {}
        source, copy = self._extra_sources[extra_id]
        return dict(source) if copy else source

    @property
    def outcomes(self) -> List[DeviceOutcome]:
        """Per-device outcomes, in device order (materialized lazily)."""
        if self._outcomes is None:
            columns = self._columns
            if columns is None:
                self._outcomes = []
                return self._outcomes
            rows = zip(
                self._specs,
                _as_list(columns.offsets),
                _as_list(columns.tuning),
                _as_list(columns.latency),
                _as_list(columns.peak_memory),
                _as_list(columns.cpu),
                _as_list(columns.lost),
                _as_list(columns.distance),
                _as_list(columns.found),
                _as_list(columns.mismatch),
                _as_list(columns.replay),
                _as_list(columns.extra_id),
            )
            self._outcomes = [
                DeviceOutcome(
                    spec=spec,
                    tune_in_offset=offset,
                    distance=distance,
                    found=found,
                    mode="replay" if replay else "native",
                    metrics=ClientMetrics(
                        tuning_time_packets=tuning,
                        access_latency_packets=latency,
                        peak_memory_bytes=peak,
                        cpu_seconds=cpu,
                        lost_packets=lost,
                        extra=self._materialize_extra(extra_id),
                    ),
                    mismatch=mismatch,
                )
                for (
                    spec,
                    offset,
                    tuning,
                    latency,
                    peak,
                    cpu,
                    lost,
                    distance,
                    found,
                    mismatch,
                    replay,
                    extra_id,
                ) in rows
            ]
        return self._outcomes

    # ------------------------------------------------------------------
    # Counts and throughput
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self._specs)

    @property
    def mismatches(self) -> int:
        """Devices whose on-air answer disagreed with the ground truth."""
        if self._columns is None:
            return 0
        return int(sum(self._columns.mismatch))

    @property
    def devices_per_second(self) -> float:
        """Simulation throughput (wall clock, so *not* deterministic)."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.num_devices / self.wall_seconds

    # ------------------------------------------------------------------
    # Aggregates (bulk array passes over the columns)
    # ------------------------------------------------------------------
    def _column(self, metric: str):
        try:
            name = _METRIC_COLUMNS[metric]
        except KeyError:
            raise AttributeError(
                f"unknown ClientMetrics field {metric!r} "
                f"(one of {sorted(_METRIC_COLUMNS)})"
            ) from None
        if self._columns is None:
            return []
        return getattr(self._columns, name)

    def _values(self, metric: str) -> List[float]:
        return [float(value) for value in self._column(metric)]

    def percentile(self, metric: str, q: float) -> float:
        """Nearest-rank percentile of a :class:`ClientMetrics` field.

        Same definition as :func:`repro.stats.percentile` (which remains the
        scalar reference), computed as one vectorized sort when numpy backs
        the columns.
        """
        column = self._column(metric)
        np = numpy_or_none()
        if np is None or isinstance(column, list):
            return percentile(self._values(metric), q)
        size = len(column)
        if size == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = np.sort(column.astype(np.float64))
        rank = max(1, math.ceil(size * q / 100.0))
        return float(ordered[min(rank, size) - 1])

    def latency_percentiles(self, qs: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {q: self.percentile("access_latency_packets", q) for q in qs}

    def tuning_percentiles(self, qs: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {q: self.percentile("tuning_time_packets", q) for q in qs}

    def mean(self, metric: str) -> float:
        column = self._column(metric)
        size = len(column)
        if size == 0:
            return 0.0
        np = numpy_or_none()
        if np is None or isinstance(column, list):
            return float(sum(float(value) for value in column)) / size
        return float(column.astype(np.float64).sum() / size)

    def mean_energy_joules(
        self,
        device: Optional[DeviceProfile] = None,
        rate: ChannelRate = CHANNEL_2MBPS,
    ) -> float:
        """Average per-query energy across the fleet.

        Vectorized over the flat tuning/latency/CPU columns when numpy is
        available; the scalar fallback sums
        :meth:`ClientMetrics.energy_joules` per device, same formula.
        """
        columns = self._columns
        if columns is None or columns.count == 0:
            return 0.0
        device = device or J2ME_CLAMSHELL
        np = numpy_or_none()
        if np is None or isinstance(columns.tuning, list):
            total = sum(o.metrics.energy_joules(device, rate) for o in self.outcomes)
            return total / columns.count
        packets_per_second = rate.packets_per_second
        receive_seconds = columns.tuning / packets_per_second
        sleep_seconds = np.maximum(
            0.0, columns.latency / packets_per_second - receive_seconds
        )
        energy = (
            receive_seconds * device.receive_watts
            + sleep_seconds * device.sleep_watts
            + columns.cpu * device.cpu_watts
        )
        return float(energy.sum() / columns.count)

    def signature(self) -> Tuple[Tuple, ...]:
        """Per-device deterministic fields, in device order.

        Two runs of the same fleet must produce identical signatures no
        matter the ``concurrency`` -- this is what the bit-identical tests
        and the scaling benchmark compare.
        """
        columns = self._columns
        if columns is None:
            return ()
        infinity = float("inf")
        return tuple(
            (
                spec.device_id,
                round(distance, 9) if found else infinity,
                tuning,
                latency,
                peak,
                lost,
                mismatch,
            )
            for spec, distance, found, tuning, latency, peak, lost, mismatch in zip(
                self._specs,
                _as_list(columns.distance),
                _as_list(columns.found),
                _as_list(columns.tuning),
                _as_list(columns.latency),
                _as_list(columns.peak_memory),
                _as_list(columns.lost),
                _as_list(columns.mismatch),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FleetRun(scheme={self.scheme!r}, devices={self.num_devices}, "
            f"probes={self.probes}, replays={self.replays}, natives={self.natives}, "
            f"mismatches={self.mismatches})"
        )


def _as_list(column: Any) -> List:
    """A column as a plain Python list (numpy ``tolist`` unboxes scalars)."""
    if isinstance(column, list):
        return column
    return column.tolist()
