"""Aggregated outcome of a fleet simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.broadcast.device import CHANNEL_2MBPS, ChannelRate, DeviceProfile, J2ME_CLAMSHELL
from repro.broadcast.metrics import ClientMetrics

from repro.fleet.devices import DeviceSpec
from repro.stats import percentile

__all__ = ["DeviceOutcome", "FleetRun", "percentile"]


@dataclass(frozen=True)
class DeviceOutcome:
    """One device's result: the answer and its channel/compute cost.

    ``mode`` records how the outcome was produced: ``"replay"`` for the
    shared-session fast path (lossless devices) or ``"native"`` for a full
    packet-by-packet simulation (lossy devices).
    """

    spec: DeviceSpec
    tune_in_offset: int
    distance: float
    found: bool
    mode: str
    metrics: ClientMetrics
    mismatch: bool = False

    def deterministic_fields(self) -> Tuple:
        """Everything the determinism contract covers (no wall-clock)."""
        return (
            self.spec.device_id,
            round(self.distance, 9) if self.found else float("inf"),
            self.metrics.tuning_time_packets,
            self.metrics.access_latency_packets,
            self.metrics.peak_memory_bytes,
            self.metrics.lost_packets,
            self.mismatch,
        )


@dataclass
class FleetRun:
    """Aggregated outcome of one fleet over one broadcast cycle."""

    scheme: str
    outcomes: List[DeviceOutcome] = field(default_factory=list)
    #: Distinct probe sessions actually simulated end to end.
    probes: int = 0
    #: Devices served by trace replay.
    replays: int = 0
    #: Devices simulated natively (lossy channels).
    natives: int = 0
    concurrency: int = 1
    wall_seconds: float = 0.0
    cycle_packets: int = 0

    # ------------------------------------------------------------------
    # Counts and throughput
    # ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.outcomes)

    @property
    def mismatches(self) -> int:
        """Devices whose on-air answer disagreed with the ground truth."""
        return sum(1 for outcome in self.outcomes if outcome.mismatch)

    @property
    def devices_per_second(self) -> float:
        """Simulation throughput (wall clock, so *not* deterministic)."""
        if self.wall_seconds <= 0.0:
            return float("inf")
        return self.num_devices / self.wall_seconds

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def _values(self, metric: str) -> List[float]:
        return [float(getattr(o.metrics, metric)) for o in self.outcomes]

    def percentile(self, metric: str, q: float) -> float:
        """Nearest-rank percentile of a :class:`ClientMetrics` field."""
        return percentile(self._values(metric), q)

    def latency_percentiles(self, qs: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {q: self.percentile("access_latency_packets", q) for q in qs}

    def tuning_percentiles(self, qs: Sequence[float] = (50, 90, 99)) -> Dict[float, float]:
        return {q: self.percentile("tuning_time_packets", q) for q in qs}

    def mean(self, metric: str) -> float:
        values = self._values(metric)
        return sum(values) / len(values) if values else 0.0

    def mean_energy_joules(
        self,
        device: Optional[DeviceProfile] = None,
        rate: ChannelRate = CHANNEL_2MBPS,
    ) -> float:
        """Average per-query energy across the fleet."""
        if not self.outcomes:
            return 0.0
        device = device or J2ME_CLAMSHELL
        total = sum(o.metrics.energy_joules(device, rate) for o in self.outcomes)
        return total / len(self.outcomes)

    def signature(self) -> Tuple[Tuple, ...]:
        """Per-device deterministic fields, in device order.

        Two runs of the same fleet must produce identical signatures no
        matter the ``concurrency`` -- this is what the bit-identical tests
        and the scaling benchmark compare.
        """
        return tuple(outcome.deterministic_fields() for outcome in self.outcomes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FleetRun(scheme={self.scheme!r}, devices={self.num_devices}, "
            f"probes={self.probes}, replays={self.replays}, natives={self.natives}, "
            f"mismatches={self.mismatches})"
        )
