"""Deterministic fault injection for the serving/refresh/store path.

The package splits into plain-data schedules (:mod:`~repro.faults.plan`),
the process-global runtime production code calls into
(:mod:`~repro.faults.runtime` -- a no-op unless a plan is installed),
curated named scenarios (:mod:`~repro.faults.scenarios`) and the live-daemon
chaos driver (:mod:`~repro.faults.chaos`).
"""

from repro.faults.plan import FaultClock, FaultEvent, FaultPlan, FaultSpec
from repro.faults.runtime import (
    FaultInjected,
    active,
    clear,
    fail_if,
    inject,
    install,
)
from repro.faults.scenarios import SCENARIOS, build_scenario, scenario_names

__all__ = [
    "FaultClock",
    "FaultEvent",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "SCENARIOS",
    "active",
    "build_scenario",
    "clear",
    "fail_if",
    "inject",
    "install",
    "scenario_names",
]
