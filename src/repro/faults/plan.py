"""Deterministic, seed-driven fault schedules over named injection points.

A :class:`FaultPlan` is a set of :class:`FaultSpec` rules evaluated against a
per-point tick counter (the :class:`FaultClock`).  Every time code reaches an
injection point it calls ``plan.fire(point)``; the clock advances by one tick
for that point and each spec matching the point decides -- deterministically,
from the plan seed -- whether the fault fires on this tick.  Two processes
installing the same plan with the same seed see the same decision sequence,
which is what makes chaos runs reproducible and their reports comparable.

Plans are plain data: ``to_dict()``/``from_dict()`` round-trip through JSON so
a client can ship a plan to a live daemon over the wire (the ``chaos`` op).
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


def _derive_seed(seed: int, point: str, index: int) -> int:
    """Stable per-(spec, point) RNG seed derived from the plan seed."""
    digest = hashlib.sha256(f"{seed}|{point}|{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class FaultSpec:
    """One rule: *when* a named injection point should fire.

    point        injection-point name (exact match), e.g. ``serving.frame.drop``.
    after        first tick (0-based) at which the spec is eligible.
    until        tick at which eligibility ends (exclusive); ``None`` = forever.
    period       fire on every ``period``-th eligible tick (cadence).
    probability  independent per-tick firing probability, decided by a
                 deterministic per-spec RNG stream.
    times        total firing budget; ``None`` = unlimited.
    params       free-form parameters handed to the injection site
                 (e.g. ``{"latency_ms": 50}``).
    """

    point: str
    after: int = 0
    until: Optional[int] = None
    period: int = 1
    probability: float = 1.0
    times: Optional[int] = None
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.point:
            raise ValueError("FaultSpec.point must be a non-empty string")
        if self.period < 1:
            raise ValueError("FaultSpec.period must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("FaultSpec.probability must be within [0, 1]")
        if self.times is not None and self.times < 1:
            raise ValueError("FaultSpec.times must be >= 1 when set")
        if self.until is not None and self.until <= self.after:
            raise ValueError("FaultSpec.until must be > after")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "after": self.after,
            "until": self.until,
            "period": self.period,
            "probability": self.probability,
            "times": self.times,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            point=payload["point"],
            after=int(payload.get("after", 0)),
            until=(None if payload.get("until") is None else int(payload["until"])),
            period=int(payload.get("period", 1)),
            probability=float(payload.get("probability", 1.0)),
            times=(None if payload.get("times") is None else int(payload["times"])),
            params=dict(payload.get("params") or {}),
        )


@dataclass(frozen=True)
class FaultEvent:
    """A fault decision: returned by ``FaultPlan.fire`` when a spec fires."""

    point: str
    tick: int
    spec_index: int
    params: Mapping[str, Any]

    def param(self, key: str, default: Any = None) -> Any:
        return self.params.get(key, default)


class FaultClock:
    """Per-injection-point tick counters with per-spec deterministic RNGs.

    The clock is what separates "the third query" from "the third frame": every
    point advances independently, so a plan targeting
    ``serving.frame.corrupt`` tick 10 means the tenth frame regardless of how
    many store reads happened in between.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._ticks: Dict[str, int] = {}
        self._rngs: Dict[Tuple[str, int], random.Random] = {}

    def tick(self, point: str) -> int:
        """Advance ``point`` by one tick and return the tick just consumed."""
        current = self._ticks.get(point, 0)
        self._ticks[point] = current + 1
        return current

    def rng(self, point: str, spec_index: int) -> random.Random:
        key = (point, spec_index)
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(_derive_seed(self.seed, point, spec_index))
            self._rngs[key] = rng
        return rng

    def ticks(self, point: str) -> int:
        return self._ticks.get(point, 0)

    def points(self) -> List[str]:
        """Every point that has ticked at least once."""
        return sorted(self._ticks)


class FaultPlan:
    """A seeded set of fault specs plus the runtime state to evaluate them.

    ``fire`` is thread-safe: the serving daemon evaluates plans from the
    asyncio loop thread and worker processes evaluate their own copies, each
    with an independent clock.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed
        self._clock = FaultClock(seed)
        self._fired: Dict[int, int] = {}
        self._events: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- evaluation ---------------------------------------------------------

    def fire(self, point: str, **context: Any) -> Optional[FaultEvent]:
        """Consume one tick of ``point``; return the firing event, if any.

        The first matching spec wins.  ``context`` keys are merged under the
        spec params (spec params take precedence) so injection sites can pass
        site-specific data through to handlers.
        """
        with self._lock:
            tick = self._clock.tick(point)
            for index, spec in enumerate(self.specs):
                if spec.point != point:
                    continue
                if tick < spec.after:
                    continue
                if spec.until is not None and tick >= spec.until:
                    continue
                if (tick - spec.after) % spec.period != 0:
                    continue
                budget = self._fired.get(index, 0)
                if spec.times is not None and budget >= spec.times:
                    continue
                if spec.probability < 1.0:
                    rng = self._clock.rng(point, index)
                    if rng.random() >= spec.probability:
                        continue
                self._fired[index] = budget + 1
                self._events[point] = self._events.get(point, 0) + 1
                params = dict(context)
                params.update(spec.params)
                return FaultEvent(point=point, tick=tick, spec_index=index, params=params)
            return None

    # -- introspection ------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Ticks seen and faults fired, per injection point."""
        with self._lock:
            points = sorted(
                {spec.point for spec in self.specs}
                | set(self._events)
                | set(self._clock.points())
            )
            return {
                "seed": self.seed,
                "ticks": {p: self._clock.ticks(p) for p in points if self._clock.ticks(p)},
                "fired": dict(sorted(self._events.items())),
                "total_fired": sum(self._events.values()),
            }

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        specs = [FaultSpec.from_dict(item) for item in payload.get("specs", [])]
        return cls(specs, seed=int(payload.get("seed", 0)))
