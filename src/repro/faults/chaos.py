"""Chaos driver: run a seeded fault plan against a live serving daemon.

:func:`run_chaos` is the shared engine behind the ``repro chaos`` CLI
sub-command, the CI chaos smoke step and ``benchmarks/bench_resilience.py``:
it installs a :class:`~repro.faults.plan.FaultPlan` on the daemon (server
*and* workers, over the ``chaos`` admin op), drives a query workload through
reconnecting clients with per-request deadlines, optionally fires refresh
batches mid-run, and measures what a client actually experiences --
availability of in-deadline requests, error taxonomy, staleness exposure,
bit-identity of answered requests and worker MTTR.

Identity checking is two-layered: every answered distance is recorded under
``(fingerprint, source, target)`` and any disagreement between two answers
for the same key is a violation (self-consistency -- catches torn reads and
half-applied swaps); when a ``reference`` callable is supplied, each answer
is additionally compared against the ground truth for its fingerprint
(catches a consistently-wrong replica).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.serving import protocol
from repro.serving.client import Address, ServingClient

__all__ = ["ChaosReport", "run_chaos"]

#: ``reference(fingerprint, source, target)`` returns the expected distance
#: for that cycle generation, or ``None`` when it has no opinion.
Reference = Callable[[str, int, int], Optional[float]]


@dataclass
class ChaosReport:
    """What one chaos run measured, from the client's side of the socket."""

    requests: int = 0
    ok: int = 0
    deadline_misses: int = 0
    reconnects: int = 0
    stale_responses: int = 0
    identity_violations: int = 0
    errors: Dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    refreshes: List[Dict[str, Any]] = field(default_factory=list)
    fault_stats: Dict[str, Any] = field(default_factory=dict)
    server: Dict[str, Any] = field(default_factory=dict)
    workers: Dict[str, int] = field(default_factory=dict)

    @property
    def availability(self) -> float:
        """Fraction of requests answered ``ok`` within their deadline."""
        return (self.ok / self.requests) if self.requests else 1.0

    @property
    def respawns(self) -> int:
        return int(self.server.get("respawns", 0))

    @property
    def mttr_s(self) -> Optional[float]:
        """Worst worker detection-to-restored time observed, seconds."""
        log = self.server.get("respawn_log") or []
        times = [entry["mttr_s"] for entry in log if "mttr_s" in entry]
        return max(times) if times else None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "availability": self.availability,
            "deadline_misses": self.deadline_misses,
            "reconnects": self.reconnects,
            "stale_responses": self.stale_responses,
            "identity_violations": self.identity_violations,
            "errors": dict(self.errors),
            "duration_s": self.duration_s,
            "qps": (self.ok / self.duration_s) if self.duration_s > 0 else 0.0,
            "refreshes": list(self.refreshes),
            "respawns": self.respawns,
            "mttr_s": self.mttr_s,
            "fault_stats": dict(self.fault_stats),
            "workers": dict(self.workers),
        }


class _Recorder:
    """Thread-safe accumulation of per-request outcomes."""

    def __init__(self, reference: Optional[Reference]) -> None:
        self.lock = threading.Lock()
        self.report = ChaosReport()
        self.reference = reference
        self._answers: Dict[Tuple[str, int, int], float] = {}

    def record_ok(self, response: Dict[str, Any], source: int, target: int) -> None:
        fingerprint = str(response.get("fingerprint"))
        distance = response.get("distance")
        with self.lock:
            self.report.requests += 1
            self.report.ok += 1
            if response.get("stale"):
                self.report.stale_responses += 1
            worker = str(response.get("worker"))
            self.report.workers[worker] = self.report.workers.get(worker, 0) + 1
            if distance is not None:
                key = (fingerprint, source, target)
                seen = self._answers.get(key)
                if seen is None:
                    self._answers[key] = float(distance)
                elif seen != float(distance):
                    self.report.identity_violations += 1
                if self.reference is not None:
                    expected = self.reference(fingerprint, source, target)
                    if expected is not None and float(distance) != float(expected):
                        self.report.identity_violations += 1

    def record_error(self, kind: str, deadline_missed: bool = False) -> None:
        with self.lock:
            self.report.requests += 1
            if deadline_missed:
                self.report.deadline_misses += 1
            self.report.errors[kind] = self.report.errors.get(kind, 0) + 1

    def record_reconnect(self) -> None:
        with self.lock:
            self.report.reconnects += 1

    def completed(self) -> int:
        with self.lock:
            return self.report.requests


def _drive(
    address: Address,
    batch: Sequence[Tuple[int, int]],
    method: str,
    deadline_ms: float,
    recorder: _Recorder,
) -> None:
    """One connection's worth of chaos load, reconnecting as needed."""
    client: Optional[ServingClient] = None

    def reconnect(deadline_at: float) -> Optional[ServingClient]:
        nonlocal client
        if client is not None:
            client.close()
            client = None
            recorder.record_reconnect()
        while time.perf_counter() < deadline_at:
            try:
                client = ServingClient(address, timeout=deadline_ms / 1000.0)
                return client
            except OSError:
                time.sleep(0.02)
        return None

    try:
        for source, target in batch:
            request = {
                "op": "query",
                "method": method,
                "source": int(source),
                "target": int(target),
                "tune_in_offset": 0,
            }
            deadline_at = time.perf_counter() + deadline_ms / 1000.0
            outcome: Optional[str] = None
            while True:
                remaining_ms = (deadline_at - time.perf_counter()) * 1000.0
                if remaining_ms <= 0:
                    outcome = outcome or "deadline"
                    break
                if client is None and reconnect(deadline_at) is None:
                    outcome = "connect"
                    break
                try:
                    response = client.call(request, deadline_ms=remaining_ms)
                except protocol.ServerBusy as busy:
                    time.sleep(
                        min(busy.retry_after_ms / 1000.0, max(remaining_ms / 1000.0, 0.0))
                    )
                    continue
                except protocol.DeadlineExceeded:
                    # The connection may hold a late answer to *this* request;
                    # never reuse it for the next one.
                    client.close()
                    client = None
                    outcome = "deadline"
                    break
                except protocol.ServerError:
                    outcome = "server_error"
                    break
                except (protocol.ProtocolError, OSError):
                    # Torn/corrupt frame or dead server: reconnect and retry
                    # within the remaining deadline budget.
                    outcome = "protocol"
                    if reconnect(deadline_at) is None:
                        outcome = "connect"
                        break
                    continue
                recorder.record_ok(response, int(source), int(target))
                outcome = None
                break
            if outcome == "deadline":
                recorder.record_error("deadline", deadline_missed=True)
            elif outcome is not None:
                recorder.record_error(outcome)
    finally:
        if client is not None:
            client.close()


def run_chaos(
    address: Address,
    plan: Optional[FaultPlan],
    pairs: Sequence[Tuple[int, int]],
    method: str = "NR",
    concurrency: int = 4,
    deadline_ms: float = 2000.0,
    refreshes: Sequence[Sequence[Tuple[int, int, float]]] = (),
    reference: Optional[Reference] = None,
) -> ChaosReport:
    """Install ``plan`` on the daemon at ``address`` and measure the damage.

    ``pairs`` are driven through ``concurrency`` reconnecting connections,
    each request under an end-to-end ``deadline_ms`` budget (busy retries,
    reconnects and protocol-error retries all spend the same budget).
    ``refreshes`` is a sequence of update batches fired from a dedicated
    admin connection at evenly spaced points of the run.  The plan is
    cleared from server and workers before returning, win or lose; pass
    ``plan=None`` to measure a fault-free baseline with the same driver.
    """
    recorder = _Recorder(reference)
    admin = ServingClient(address, timeout=60.0)
    try:
        if plan is not None:
            admin.call({"op": "chaos", "action": "install", "plan": plan.to_dict()})

        concurrency = max(1, min(concurrency, len(pairs) or 1))
        slices: List[List[Tuple[int, int]]] = [[] for _ in range(concurrency)]
        for index, pair in enumerate(pairs):
            slices[index % concurrency].append(pair)
        threads = [
            threading.Thread(
                target=_drive,
                args=(address, batch, method, deadline_ms, recorder),
                daemon=True,
            )
            for batch in slices
            if batch
        ]

        refresher: Optional[threading.Thread] = None
        if refreshes:
            marks = [
                int(len(pairs) * (index + 1) / (len(refreshes) + 1))
                for index in range(len(refreshes))
            ]

            def fire_refreshes() -> None:
                with ServingClient(address, timeout=600.0) as refresh_client:
                    for mark, updates in zip(marks, refreshes):
                        while recorder.completed() < mark:
                            time.sleep(0.01)
                        try:
                            result = refresh_client.call(
                                {
                                    "op": "refresh",
                                    "updates": [
                                        [int(s), int(t), float(w)] for s, t, w in updates
                                    ],
                                }
                            )
                        except (protocol.ServerError, protocol.ProtocolError, OSError) as exc:
                            result = {"status": "error", "error": str(exc)}
                        with recorder.lock:
                            recorder.report.refreshes.append(
                                {
                                    "degraded": bool(result.get("degraded")),
                                    "fingerprint": result.get("fingerprint"),
                                    "workers_swapped": result.get("workers_swapped"),
                                    "error": result.get("error"),
                                }
                            )

            refresher = threading.Thread(target=fire_refreshes, daemon=True)

        started = time.perf_counter()
        for thread in threads:
            thread.start()
        if refresher is not None:
            refresher.start()
        for thread in threads:
            thread.join()
        if refresher is not None:
            refresher.join(timeout=600.0)
        recorder.report.duration_s = time.perf_counter() - started

        if plan is not None:
            try:
                stats = admin.call({"op": "chaos", "action": "stats"})
                recorder.report.fault_stats = stats.get("faults") or {}
            except (protocol.ServerError, protocol.ProtocolError, OSError):
                pass
        try:
            recorder.report.server = admin.call({"op": "info"})
        except (protocol.ServerError, protocol.ProtocolError, OSError):
            pass
    finally:
        try:
            if plan is not None:
                admin.call({"op": "chaos", "action": "clear"})
        except (protocol.ServerError, protocol.ProtocolError, OSError):
            pass
        admin.close()
    return recorder.report
