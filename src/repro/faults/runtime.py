"""Process-global fault-injection runtime.

Production code threads injection points through hot paths as bare calls:

    event = faults.inject("serving.frame.corrupt", op=op)
    if event is not None:
        ...

With no plan installed (the default, and the production configuration)
``inject`` is a single attribute load plus a ``None`` check -- there is no
schedule evaluation, no locking, and no measurable overhead on the serving
path.  Installing a plan (tests, the ``chaos`` CLI, the resilience benchmark)
turns the same call sites into deterministic fault sources.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from .plan import FaultEvent, FaultPlan

_active: Optional[FaultPlan] = None
_lock = threading.Lock()


class FaultInjected(RuntimeError):
    """Raised by ``fail_if`` sites when their injection point fires."""

    def __init__(self, event: FaultEvent) -> None:
        super().__init__(f"injected fault at {event.point} (tick {event.tick})")
        self.event = event


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-global active plan and return it."""
    global _active
    with _lock:
        _active = plan
    return plan


def clear() -> None:
    """Remove the active plan; all injection points become no-ops again."""
    global _active
    with _lock:
        _active = None


def active() -> Optional[FaultPlan]:
    return _active


def inject(point: str, **context: Any) -> Optional[FaultEvent]:
    """Evaluate ``point`` against the active plan; ``None`` when quiet."""
    plan = _active
    if plan is None:
        return None
    return plan.fire(point, **context)


def fail_if(point: str, **context: Any) -> None:
    """Raise :class:`FaultInjected` when ``point`` fires; otherwise no-op."""
    plan = _active
    if plan is None:
        return
    event = plan.fire(point, **context)
    if event is not None:
        raise FaultInjected(event)
