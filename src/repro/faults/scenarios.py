"""Named chaos scenarios: curated fault schedules for the serving path.

Each scenario is a factory from a seed to a :class:`FaultPlan`.  The names are
stable CLI/CI surface (``repro chaos --scenario worker-churn``); tune their
shape here rather than in call sites so a scenario name always means the same
schedule.

Tick units are per-injection-point events (see ``FaultClock``): frame faults
tick once per data-path response frame, ``serving.worker.kill`` once per
dispatched data-path request, ``engine.refresh.fail`` once per refresh.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .plan import FaultPlan, FaultSpec

ScenarioFactory = Callable[[int], FaultPlan]

SCENARIOS: Dict[str, ScenarioFactory] = {}


def scenario(name: str) -> Callable[[ScenarioFactory], ScenarioFactory]:
    def register(factory: ScenarioFactory) -> ScenarioFactory:
        SCENARIOS[name] = factory
        return factory

    return register


def build_scenario(name: str, seed: int = 0) -> FaultPlan:
    try:
        factory = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(f"unknown chaos scenario {name!r} (known: {known})") from None
    return factory(seed)


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


@scenario("smoke")
def _smoke(seed: int) -> FaultPlan:
    """CI-sized: a couple of worker kills, sparse frame faults, one failed
    refresh -- enough to exercise every recovery path in a short burst."""
    return FaultPlan(
        [
            FaultSpec("serving.worker.kill", after=10, period=40, times=2),
            FaultSpec("serving.frame.corrupt", after=5, probability=0.01, times=3),
            FaultSpec("serving.frame.truncate", after=8, probability=0.01, times=2),
            FaultSpec("serving.frame.drop", after=12, probability=0.01, times=2),
            FaultSpec("engine.refresh.fail", times=1),
        ],
        seed=seed,
    )


@scenario("worker-churn")
def _worker_churn(seed: int) -> FaultPlan:
    """Kill a worker mid-request on a steady cadence; nothing else."""
    return FaultPlan(
        [FaultSpec("serving.worker.kill", after=20, period=60)],
        seed=seed,
    )


@scenario("frame-chaos")
def _frame_chaos(seed: int) -> FaultPlan:
    """Aggressive protocol-layer damage: drops, truncations, bit flips."""
    return FaultPlan(
        [
            FaultSpec("serving.frame.drop", probability=0.02),
            FaultSpec("serving.frame.truncate", probability=0.02),
            FaultSpec("serving.frame.corrupt", probability=0.03),
        ],
        seed=seed,
    )


@scenario("slow-network")
def _slow_network(seed: int) -> FaultPlan:
    """Latency injection on the response path: exercises client deadlines."""
    return FaultPlan(
        [FaultSpec("serving.latency_ms", probability=0.10, params={"latency_ms": 40})],
        seed=seed,
    )


@scenario("refresh-degraded")
def _refresh_degraded(seed: int) -> FaultPlan:
    """Fail the next shadow rebuild: exercises degraded (stale) serving."""
    return FaultPlan([FaultSpec("engine.refresh.fail", times=1)], seed=seed)


@scenario("hung-worker")
def _hung_worker(seed: int) -> FaultPlan:
    """Make one request hang inside a worker: exercises hang eviction."""
    return FaultPlan(
        [FaultSpec("worker.hang_ms", after=15, times=1, params={"hang_ms": 120_000})],
        seed=seed,
    )
