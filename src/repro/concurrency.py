"""Deterministic indexed fan-out, shared by the engine and fleet runners.

Both :func:`repro.engine.system.execute_workload` and
:func:`repro.fleet.simulator.simulate_fleet` follow the same determinism
recipe: pre-draw every random input per index, then compute the per-index
results in any order and write them into index-addressed slots.  This module
is the one implementation of the second half, so the two contracts stay
provably identical.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Tuple, TypeVar

__all__ = ["run_indexed"]

_T = TypeVar("_T")


def run_indexed(
    process: Callable[[int], _T],
    count: int,
    concurrency: int = 1,
    chunk_size: Optional[int] = None,
) -> List[_T]:
    """Run ``process(i)`` for every ``i < count``; results in index order.

    With ``concurrency == 1`` (or at most one item) everything runs inline
    and no thread pool is created.  Otherwise contiguous index chunks fan
    out over a pool of ``concurrency`` workers; because results land in
    per-index slots, the output order -- and any determinism contract built
    on pre-drawn per-index inputs -- is independent of scheduling.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    results: List[Optional[_T]] = [None] * count
    if concurrency == 1 or count <= 1:
        for index in range(count):
            results[index] = process(index)
        return results  # type: ignore[return-value]
    if chunk_size is None:
        chunk_size = max(1, -(-count // (concurrency * 4)))
    chunks = [
        range(start, min(start + chunk_size, count))
        for start in range(0, count, chunk_size)
    ]

    def process_chunk(indices: range) -> List[Tuple[int, _T]]:
        return [(index, process(index)) for index in indices]

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        for chunk_results in pool.map(process_chunk, chunks):
            for index, result in chunk_results:
                results[index] = result
    return results  # type: ignore[return-value]
