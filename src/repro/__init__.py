"""Reproduction of *Shortest Path Computation on Air Indexes* (VLDB 2010).

The package implements the wireless-broadcast ("on air") shortest path
framework of Kellaris & Mouratidis, including:

* a road-network substrate (graphs, generators, shortest path algorithms),
* graph partitioning (kd-tree and regular grid),
* classical pre-computation indexes (ArcFlag, Landmark/ALT, HiTi, SPQ),
* a wireless broadcast channel simulator with device models,
* the paper's air-index methods -- Elliptic Boundary (EB) and Next Region
  (NR) -- plus broadcast adaptations of the classical methods,
* the Euclidean spatial air indexes of Appendix A (HCI, DSI, BGI), and
* an experiment harness reproducing every table and figure of the paper.

Quickstart::

    from repro import datasets, air

    network = datasets.load("germany", scale=0.1, seed=7)
    scheme = air.NextRegionScheme(network, num_regions=32)
    cycle = scheme.build_cycle()
    client = scheme.client()
    result = client.query(source=10, target=4242, cycle=cycle)
    print(result.path, result.metrics.tuning_time_packets)
"""

from repro import air, broadcast, experiments, index, network, partitioning, spatial
from repro.network import datasets
from repro.version import __version__

__all__ = [
    "__version__",
    "air",
    "broadcast",
    "datasets",
    "experiments",
    "index",
    "network",
    "partitioning",
    "spatial",
]
