"""Reproduction of *Shortest Path Computation on Air Indexes* (VLDB 2010).

The package implements the wireless-broadcast ("on air") shortest path
framework of Kellaris & Mouratidis, including:

* a road-network substrate (graphs, generators, shortest path algorithms),
* graph partitioning (kd-tree and regular grid),
* classical pre-computation indexes (ArcFlag, Landmark/ALT, HiTi, SPQ),
* a wireless broadcast channel simulator with device models,
* the paper's air-index methods -- Elliptic Boundary (EB) and Next Region
  (NR) -- plus broadcast adaptations of the classical methods, all
  self-registered in a pluggable scheme registry (:mod:`repro.air.registry`),
* an engine facade (:class:`repro.engine.AirSystem`) that caches built
  broadcast cycles and runs batched, optionally concurrent workloads,
* the Euclidean spatial air indexes of Appendix A (HCI, DSI, BGI), and
* an experiment harness reproducing every table and figure of the paper.

Quickstart -- one scheme, one query::

    from repro import air, datasets

    network = datasets.load("germany", scale=0.1, seed=7)
    scheme = air.create("NR", network, num_regions=32)
    client = scheme.client()                      # paper's J2ME clamshell
    result = client.query(10, 4242)
    print(result.distance, result.metrics.tuning_time_packets)

Quickstart -- the engine facade (cycles built once, workloads batched)::

    from repro.engine import AirSystem
    from repro.experiments import ExperimentConfig, QueryWorkload

    system = AirSystem.from_config(ExperimentConfig(network="germany", scale=0.05))
    workload = QueryWorkload(system.network, 50, seed=7)
    run = system.query_batch("NR", workload, concurrency=4)
    print(run.mean.tuning_time_packets, run.mismatches)

    table = system.compare(["NR", "EB", "DJ"], workload, loss_rate=0.05)

``air.available_schemes()`` lists every registered method; ``python -m repro
schemes`` prints the same from the command line.
"""

from repro import (
    air,
    broadcast,
    dynamic,
    engine,
    experiments,
    index,
    network,
    partitioning,
    serialize,
    spatial,
    store,
)
from repro.engine import AirSystem, ArtifactStore, ClientOptions
from repro.network import datasets
from repro.version import __version__

__all__ = [
    "AirSystem",
    "ArtifactStore",
    "ClientOptions",
    "__version__",
    "air",
    "broadcast",
    "datasets",
    "dynamic",
    "engine",
    "experiments",
    "index",
    "network",
    "partitioning",
    "serialize",
    "spatial",
    "store",
]
