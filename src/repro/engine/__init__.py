"""Engine layer: the system facade over networks, schemes, and workloads.

The :class:`AirSystem` facade owns a road network plus a cache of broadcast
schemes built over it (cycles are laid out exactly once per
``(scheme, params, network)``), and exposes single queries, batched
workloads, and multi-method comparisons.  It is the recommended public entry
point; the scheme zoo underneath stays pluggable via
:mod:`repro.air.registry`.
"""

from repro.air.base import ClientOptions
from repro.engine.results import MethodRun, RefreshReport, WarmStartReport
from repro.engine.system import AirSystem, CacheInfo, execute_workload
from repro.fleet import DeviceSpec, FleetRun
from repro.store import ArtifactStore

__all__ = [
    "AirSystem",
    "ArtifactStore",
    "CacheInfo",
    "ClientOptions",
    "DeviceSpec",
    "FleetRun",
    "MethodRun",
    "RefreshReport",
    "WarmStartReport",
    "execute_workload",
]
