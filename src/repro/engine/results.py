"""Aggregated results produced by the engine's workload execution.

:class:`MethodRun` is the unit every comparison in the paper reports: one
scheme, one workload, the per-query client metrics and their aggregates.  It
used to live in :mod:`repro.experiments.runner`; it now belongs to the engine
layer so that both the :class:`~repro.engine.system.AirSystem` facade and the
experiment harness share one definition (the harness re-exports it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.broadcast.metrics import ClientMetrics, ServerMetrics, average_metrics

__all__ = ["MethodRun", "RefreshReport", "WarmStartReport"]


@dataclass(frozen=True)
class RefreshReport:
    """Outcome of one :meth:`~repro.engine.system.AirSystem.refresh` call.

    Records the fingerprint transition (``parent_fingerprint`` ->
    ``fingerprint``), what the network delta looked like, and which cached
    entries took the incremental path versus a full rebuild.  ``dropped``
    lists entries that were already superseded by a fresh build at the new
    fingerprint and were simply evicted.
    """

    parent_fingerprint: str
    fingerprint: str
    structural: bool
    num_changes: int
    num_dirty_nodes: int
    incremental: Tuple[str, ...] = ()
    rebuilt: Tuple[str, ...] = ()
    dropped: Tuple[str, ...] = ()
    seconds: float = 0.0
    #: Refreshed artifacts re-published to the disk tier (0 without a store).
    #: A refresh changes built state, so the previously stored artifacts --
    #: keyed by the superseded network fingerprint -- no longer apply; the
    #: refreshed state is stored under the new fingerprint and the stale
    #: entries await :meth:`~repro.engine.system.AirSystem.prune_cache`.
    artifacts_stored: int = 0

    @property
    def refreshed(self) -> int:
        """Cache entries brought up to date (either path)."""
        return len(self.incremental) + len(self.rebuilt)

    @property
    def noop(self) -> bool:
        """``True`` when the network had not changed since the last refresh."""
        return self.parent_fingerprint == self.fingerprint and self.refreshed == 0


@dataclass(frozen=True)
class WarmStartReport:
    """Outcome of one :meth:`~repro.engine.system.AirSystem.warm_start` call.

    ``loaded`` names the schemes restored from the disk tier into the memory
    cache (plus any already cached in memory), ``missing`` the ones without
    a valid stored artifact -- those build from scratch on first use, which
    is the cold path warm start exists to avoid.
    """

    loaded: Tuple[str, ...] = ()
    missing: Tuple[str, ...] = ()
    seconds: float = 0.0

    @property
    def complete(self) -> bool:
        """``True`` when every requested scheme came out of the store."""
        return not self.missing


@dataclass
class MethodRun:
    """Aggregated outcome of one method over one workload."""

    method: str
    server: ServerMetrics
    per_query: List[ClientMetrics] = field(default_factory=list)
    mismatches: int = 0

    @property
    def mean(self) -> ClientMetrics:
        """Average client metrics over the workload."""
        return average_metrics(self.per_query)

    @property
    def peak_memory_bytes(self) -> int:
        """Worst-case client memory over the workload (Table 2's criterion)."""
        if not self.per_query:
            return 0
        return max(metrics.peak_memory_bytes for metrics in self.per_query)
