"""Aggregated results produced by the engine's workload execution.

:class:`MethodRun` is the unit every comparison in the paper reports: one
scheme, one workload, the per-query client metrics and their aggregates.  It
used to live in :mod:`repro.experiments.runner`; it now belongs to the engine
layer so that both the :class:`~repro.engine.system.AirSystem` facade and the
experiment harness share one definition (the harness re-exports it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.broadcast.metrics import ClientMetrics, ServerMetrics, average_metrics

__all__ = ["MethodRun"]


@dataclass
class MethodRun:
    """Aggregated outcome of one method over one workload."""

    method: str
    server: ServerMetrics
    per_query: List[ClientMetrics] = field(default_factory=list)
    mismatches: int = 0

    @property
    def mean(self) -> ClientMetrics:
        """Average client metrics over the workload."""
        return average_metrics(self.per_query)

    @property
    def peak_memory_bytes(self) -> int:
        """Worst-case client memory over the workload (Table 2's criterion)."""
        if not self.per_query:
            return 0
        return max(metrics.peak_memory_bytes for metrics in self.per_query)
