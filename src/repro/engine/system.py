"""The :class:`AirSystem` engine facade.

One object owning a road network and every broadcast scheme built over it.
It is the production-facing entry point the ROADMAP asks for: schemes are
constructed through the registry, built cycles are memoized by
``(scheme, params, network fingerprint)`` so repeated experiments never
rebuild, and workloads run in batches -- optionally across a thread pool of
independent channel sessions::

    from repro.engine import AirSystem
    from repro.experiments import ExperimentConfig

    system = AirSystem.from_config(ExperimentConfig(network="germany", scale=0.02))
    run = system.query_batch("NR", workload, concurrency=4)
    table = system.compare(["NR", "EB", "DJ"], workload, loss_rate=0.05)

Determinism: a batch pre-draws one tuning session per query from a fresh,
seeded channel *in workload order* before any query is processed, so the
results are bit-identical to a sequential per-query loop regardless of the
``concurrency`` setting (CPU seconds excepted -- those are measured wall
clock).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.air import registry
from repro.air.base import AirIndexScheme, ClientOptions, QueryResult, is_mismatch
from repro.broadcast.channel import BroadcastChannel
from repro.concurrency import run_indexed
from repro.engine.results import MethodRun, RefreshReport, WarmStartReport
from repro.faults import runtime as faults
from repro.fleet.devices import DeviceSpec
from repro.fleet.results import FleetRun
from repro.fleet.simulator import simulate_fleet as _simulate_fleet
from repro.network.graph import RoadNetwork
from repro.serialize.artifacts import ArtifactError
from repro.store import ArtifactStore

__all__ = [
    "AirSystem",
    "AsyncRefresh",
    "CacheInfo",
    "RefreshReport",
    "WarmStartReport",
    "execute_workload",
]


class AsyncRefresh:
    """Handle on one in-flight :meth:`AirSystem.refresh_async` run.

    The worker thread builds refreshed replacement schemes into a shadow set
    and atomically swaps them into the system's cache when every one is
    ready; until then the system keeps serving queries from the pre-delta
    entries.  :meth:`wait` joins the run and returns its
    :class:`RefreshReport` (re-raising whatever the worker raised).
    """

    def __init__(self) -> None:
        self._report: Optional[RefreshReport] = None
        self._error: Optional[BaseException] = None
        self._finished = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def completed(cls, report: RefreshReport) -> "AsyncRefresh":
        """An already-finished handle (the no-pending-delta fast path)."""
        handle = cls()
        handle._report = report
        handle._finished.set()
        return handle

    def _start(self, work) -> "AsyncRefresh":
        def run() -> None:
            try:
                self._report = work()
            except BaseException as exc:  # re-raised from wait()
                self._error = exc
            finally:
                self._finished.set()

        self._thread = threading.Thread(
            target=run, name="air-refresh", daemon=True
        )
        self._thread.start()
        return self

    @property
    def done(self) -> bool:
        """Whether the refresh has finished (successfully or not)."""
        return self._finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> RefreshReport:
        """Block until the swap happened; returns the refresh report.

        Raises :class:`TimeoutError` if the refresh is still running after
        ``timeout`` seconds, and re-raises the worker's exception if the
        refresh failed.
        """
        if not self._finished.wait(timeout):
            raise TimeoutError("refresh_async() still running")
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report


@dataclass(frozen=True)
class CacheInfo:
    """Statistics of the system's cycle cache and the network's CSR snapshot."""

    hits: int
    misses: int
    entries: int
    #: Cache entries brought up to date in place by ``refresh()`` (dynamic
    #: networks) versus reconstructed from scratch during a refresh.
    incremental_rebuilds: int = 0
    full_rebuilds: int = 0
    #: CSR snapshot compilations of the system's network (see
    #: :meth:`~repro.network.graph.RoadNetwork.ensure_csr`): every scheme
    #: build shares one snapshot, so this normally stays at 1 per network
    #: structure.
    snapshot_builds: int = 0
    #: In-place CSR weight patches applied by dynamic updates -- each one
    #: avoided a full snapshot recompile.
    snapshot_patches: int = 0
    #: Whether a fresh snapshot currently backs the array kernel (``False``
    #: after structural mutations until the next scheme build or search).
    snapshot_fresh: bool = False
    #: Memory-cache misses of *this system* served by restoring a stored
    #: artifact instead of building from scratch (``warm_start`` loads are
    #: not misses and are not counted here).
    disk_restores: int = 0
    #: Disk-tier (artifact store) statistics; all zero without a store.
    #: ``disk_hits`` counts store reads that returned an artifact (including
    #: ``warm_start`` and other systems sharing the store instance),
    #: ``disk_misses`` the reads that found nothing servable.
    disk_hits: int = 0
    disk_misses: int = 0
    disk_writes: int = 0
    disk_evictions: int = 0
    disk_quarantined: int = 0
    disk_entries: int = 0
    disk_bytes: int = 0

    @property
    def builds(self) -> int:
        """Number of from-scratch scheme/cycle constructions.

        Cold cache misses that actually built (misses served by a disk-tier
        restore are not constructions) plus the full rebuilds ``refresh()``
        performed for schemes that could not apply a delta incrementally;
        in-place incremental refreshes are not constructions either and are
        counted separately (:attr:`incremental_rebuilds`).
        """
        return self.misses - self.disk_restores + self.full_rebuilds


def _as_query(item: Any) -> Tuple[int, int, Optional[float]]:
    """Normalize a workload item to ``(source, target, true_distance)``.

    Accepts :class:`~repro.experiments.workloads.Query`-like objects (duck
    typed on ``source``/``target``) and plain ``(source, target)`` pairs;
    without a ground-truth distance the mismatch check is skipped.
    """
    if hasattr(item, "source") and hasattr(item, "target"):
        return item.source, item.target, getattr(item, "true_distance", None)
    source, target = item
    return source, target, None


def execute_workload(
    scheme: AirIndexScheme,
    queries: Iterable[Any],
    options: Optional[ClientOptions] = None,
    *,
    channel: Optional[BroadcastChannel] = None,
    concurrency: int = 1,
    chunk_size: Optional[int] = None,
) -> MethodRun:
    """Run a workload through a scheme's client and aggregate the metrics.

    This is the single implementation behind both the legacy
    :func:`repro.experiments.runner.run_workload` and
    :meth:`AirSystem.query_batch`, which is what makes their results
    identical by construction.

    Sessions are drawn from the channel sequentially in workload order, so
    tune-in offsets and packet-loss draws do not depend on ``concurrency``;
    queries are then processed in chunks, in parallel when ``concurrency > 1``
    (each session is independent and the schemes' shared state is read-only).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    options = options or ClientOptions()
    items = [_as_query(item) for item in queries]
    if channel is None:
        channel = scheme.channel(loss_rate=options.loss_rate, seed=options.loss_seed)
    client = scheme.client(options=options)
    sessions = [channel.session(options.tune_in_offset) for _ in items]

    def process(index: int) -> QueryResult:
        source, target, _ = items[index]
        return client.query(source, target, session=sessions[index])

    # run_indexed never spins up a pool for an empty or single-item workload.
    results = run_indexed(process, len(items), concurrency, chunk_size)

    run = MethodRun(method=scheme.short_name, server=scheme.server_metrics())
    for (source, target, truth), result in zip(items, results):
        run.per_query.append(result.metrics)
        if is_mismatch(result.distance, truth):
            run.mismatches += 1
    return run


class AirSystem:
    """A network plus a cache of schemes built (and cycles laid out) over it.

    Parameters
    ----------
    network:
        The road network every scheme is built over.
    config:
        Optional configuration object (typically an
        :class:`~repro.experiments.config.ExperimentConfig`).  When given, it
        supplies per-scheme default parameters through the registry's
        ``config_map`` and the default client device.
    default_options:
        Base :class:`ClientOptions` for every client the system creates;
        defaults to ``ClientOptions(device=config.device)`` when a
        configuration is given.
    store:
        Optional disk tier: an :class:`~repro.store.ArtifactStore` (or a
        path, wrapped into one).  With a store attached the cycle cache is
        two-tiered -- a memory miss first tries to restore the scheme from
        a stored :class:`~repro.serialize.BuildArtifact` (bit-identical to
        a scratch build, orders of magnitude cheaper), and every scratch
        build publishes its artifact so the next process (or the next
        restart) warm-starts instead of re-running Table 3.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: Any = None,
        default_options: Optional[ClientOptions] = None,
        store: Optional[Any] = None,
    ) -> None:
        self.network = network
        self.config = config
        if store is not None and not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store: Optional[ArtifactStore] = store
        if default_options is None:
            device = getattr(config, "device", None)
            default_options = ClientOptions(device=device) if device else ClientOptions()
        self.default_options = default_options
        self._schemes: Dict[Tuple, AirIndexScheme] = {}
        self._channels: Dict[Tuple, BroadcastChannel] = {}
        self._hits = 0
        self._misses = 0
        self._disk_restores = 0
        self._incremental_rebuilds = 0
        self._full_rebuilds = 0
        #: Fingerprint -> the fingerprint it superseded (set by refresh()).
        self._lineage: Dict[str, str] = {}
        #: Stale-while-refreshing: while a ``refresh_async()`` is in flight,
        #: maps the *new* fingerprint to the superseded one so lookups keep
        #: serving the pre-delta entries instead of rebuilding from scratch.
        self._refresh_alias: Dict[str, str] = {}
        self._async_refresh: Optional[AsyncRefresh] = None
        #: Serializes cache-dict mutations between the serving thread and a
        #: ``refresh_async()`` worker's atomic swap.
        self._swap_lock = threading.Lock()
        # The network's own delta tracking is the source of truth for
        # refresh(); constructors (generators, datasets, copy()) hand over
        # networks with a clean baseline, and the system deliberately never
        # clears a delta it did not consume -- another AirSystem sharing the
        # network may still need it.
        self._clean_fingerprint = self.network.fingerprint()

    @classmethod
    def from_config(
        cls,
        config: Any,
        network_name: Optional[str] = None,
        store: Optional[Any] = None,
    ) -> "AirSystem":
        """Build the configured (scaled) evaluation network and wrap it."""
        from repro.network import datasets

        network = datasets.load(
            network_name or config.network, scale=config.scale, seed=config.seed
        )
        return cls(network, config=config, store=store)

    @classmethod
    def from_columnar(
        cls,
        table_dir: Any,
        config: Any = None,
        store: Optional[Any] = None,
        name: Optional[str] = None,
    ) -> "AirSystem":
        """Serve an imported columnar edge table (see ``repro ingest``).

        The CSR snapshot is compiled straight from the on-disk chunks and a
        lazy :class:`~repro.network.ingest.facade.ColumnarNetwork` facade
        backs the dict API -- the dict ``RoadNetwork`` never materializes,
        so a continental import serves in the arrays' footprint.  The
        table's manifest fingerprint doubles as the network fingerprint,
        which keeps store keys identical to a dict-built network of the
        same nodes and edges.
        """
        from repro.network.ingest import ColumnarNetwork, open_table

        network = ColumnarNetwork.from_table(open_table(table_dir), name=name)
        return cls(network, config=config, store=store)

    # ------------------------------------------------------------------
    # Scheme cache
    # ------------------------------------------------------------------
    def _resolve_params(self, name: str, params: Mapping[str, Any]) -> Dict[str, Any]:
        resolved: Dict[str, Any] = {}
        if self.config is not None:
            resolved.update(registry.params_from_config(name, self.config))
        resolved.update(params)
        # Round-trip through the dataclass so the cache key carries every
        # field (defaults included) and unknown names fail fast.
        info = registry.get_scheme(name)
        return dataclasses.asdict(info.make_params(**resolved))

    @property
    def _fingerprint(self) -> str:
        """The network's current structural digest.

        Read on every cache lookup (memoized inside :class:`RoadNetwork`, so
        this is a dictionary read while the network is unchanged): mutating
        the network -- adding or removing an edge -- changes the digest,
        which misses every cached key and forces a rebuild instead of
        serving a stale cycle.
        """
        return self.network.fingerprint()

    def scheme(self, name: str, **params: Any) -> AirIndexScheme:
        """The (cached) scheme instance for ``name`` with the given parameters.

        On a memory miss with a store attached, the disk tier is consulted
        first: a stored artifact restores in milliseconds and is
        bit-identical to a scratch build.  Only when that also misses is the
        scheme constructed through the registry (cycle built immediately),
        and its artifact is then published to the store.  Either way,
        everything returned by this method is ready to serve queries without
        further pre-computation.
        """
        name = registry.canonical_name(name)
        resolved = self._resolve_params(name, params)
        return self._scheme_entry(name, resolved)[0]

    def _scheme_entry(
        self, name: str, resolved: Mapping[str, Any]
    ) -> Tuple[AirIndexScheme, Tuple]:
        """The cached scheme plus the cache key it is (or will be) served under.

        While a :meth:`refresh_async` is in flight, a lookup under the new
        fingerprint falls back to the superseded fingerprint's entry
        (stale-while-refreshing): the pre-delta scheme keeps serving, keyed
        as it is, and is *not* re-inserted under the new key -- the worker's
        atomic swap must find that slot empty to install the refreshed
        replacement.  The returned key is the *effective* one (the alias key
        on a stale hit), so per-scheme channels built during the refresh
        window are keyed to the superseded fingerprint and dropped with it.
        """
        key = self._cache_key(name, resolved)
        with self._swap_lock:
            scheme = self._schemes.get(key)
            if scheme is None:
                parent = self._refresh_alias.get(key[2])
                if parent is not None:
                    alias_key = (key[0], key[1], parent)
                    scheme = self._schemes.get(alias_key)
                    if scheme is not None:
                        key = alias_key
        if scheme is not None:
            self._hits += 1
            return scheme, key
        self._misses += 1
        scheme = self._restore_from_store(name, resolved)
        if scheme is None:
            scheme = registry.create(name, self.network, **resolved)
            scheme.cycle  # build (and thereby cache) the broadcast cycle now
            self._publish_to_store(scheme)
        else:
            self._disk_restores += 1
        with self._swap_lock:
            self._schemes[key] = scheme
        return scheme, key

    def _cache_key(self, name: str, resolved: Mapping[str, Any]) -> Tuple:
        """The memory-cache key shared by every lookup and warm-start path."""
        return (name, tuple(sorted(resolved.items())), self._fingerprint)

    def _restore_from_store(
        self, name: str, resolved: Mapping[str, Any]
    ) -> Optional[AirIndexScheme]:
        """Try the disk tier for an already-built scheme; ``None`` on miss.

        The disk tier is a cache: *anything* going wrong here -- a stored
        artifact whose payload schema drifted without a version bump (shows
        up as codec/shape errors out of ``_restore_state``), a mismatch
        slipping past the store's own validation, or plain I/O trouble --
        degrades to a miss, and the caller rebuilds from scratch (which
        also re-publishes a good artifact).
        """
        if self.store is None:
            return None
        try:
            artifact = self.store.get(name, resolved, self._fingerprint)
        except OSError:
            return None
        if artifact is None:
            return None
        try:
            return AirIndexScheme.from_artifact(self.network, artifact)
        except (ArtifactError, KeyError, IndexError, TypeError, ValueError, AttributeError):
            return None

    def _publish_to_store(self, scheme: AirIndexScheme) -> bool:
        """Best-effort artifact publication; never breaks the serving path.

        A full disk or a read-only store directory must not fail a
        ``scheme()`` call whose in-memory build already succeeded -- the
        write is retried naturally the next time a cold build happens.
        """
        if self.store is None:
            return False
        try:
            self.store.put(scheme.artifact())
        except OSError:
            return False
        return True

    def warm_start(self, names: Optional[Sequence[str]] = None) -> WarmStartReport:
        """Populate the memory cache from the disk tier without building.

        The restart path of a production server: instead of paying the full
        Table 3 pre-computation per scheme on every deploy, restore every
        stored artifact for the current network (under the system's resolved
        default parameters).  ``names`` defaults to every registered scheme;
        schemes without a valid stored artifact are reported ``missing`` and
        left to build lazily (publishing their artifact) on first use.
        Requires a store.
        """
        if self.store is None:
            raise ValueError("warm_start() requires an AirSystem with a store")
        started = time.perf_counter()
        loaded: List[str] = []
        missing: List[str] = []
        for name in names if names is not None else registry.available_schemes():
            name = registry.canonical_name(name)
            resolved = self._resolve_params(name, {})
            key = self._cache_key(name, resolved)
            if key in self._schemes:
                loaded.append(name)
                continue
            scheme = self._restore_from_store(name, resolved)
            if scheme is None:
                missing.append(name)
                continue
            self._schemes[key] = scheme
            loaded.append(name)
        return WarmStartReport(
            loaded=tuple(loaded),
            missing=tuple(missing),
            seconds=time.perf_counter() - started,
        )

    def cache_info(self) -> CacheInfo:
        """Hit/miss/entry counts of the cycle cache, plus snapshot stats."""
        snapshot = self.network.csr_stats()
        disk = self.store.stats() if self.store is not None else {}
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            entries=len(self._schemes),
            incremental_rebuilds=self._incremental_rebuilds,
            full_rebuilds=self._full_rebuilds,
            snapshot_builds=snapshot["builds"],
            snapshot_patches=snapshot["patches"],
            snapshot_fresh=bool(snapshot["fresh"]),
            disk_restores=self._disk_restores,
            disk_hits=disk.get("hits", 0),
            disk_misses=disk.get("misses", 0),
            disk_writes=disk.get("writes", 0),
            disk_evictions=disk.get("evictions", 0),
            disk_quarantined=disk.get("quarantined", 0),
            disk_entries=disk.get("entries", 0),
            disk_bytes=disk.get("bytes", 0),
        )

    def clear_cache(self) -> None:
        """Drop every cached scheme, cycle and channel."""
        self._schemes.clear()
        self._channels.clear()
        self._hits = 0
        self._misses = 0
        self._disk_restores = 0
        self._incremental_rebuilds = 0
        self._full_rebuilds = 0

    def prune_cache(self) -> int:
        """Drop cache entries built for superseded network structures.

        In-place mutation keeps older-fingerprint entries around so that
        reverting a mutation hits the original entry again, but a long-lived
        system in a mutate/re-query loop would accumulate one dead cycle per
        structure.  This evicts every memory entry whose fingerprint differs
        from the network's current one, and -- when a store is attached --
        every *disk* entry built over a fingerprint this system superseded
        (the :meth:`lineage` chain; entries for unrelated networks sharing
        the store are deliberately left alone).  Returns the total number of
        entries dropped across both tiers.
        """
        current = self._fingerprint
        stale_schemes = [key for key in self._schemes if key[2] != current]
        for key in stale_schemes:
            del self._schemes[key]
        stale_channels = [key for key in self._channels if key[2] != current]
        for key in stale_channels:
            del self._channels[key]
        dropped = len(stale_schemes) + len(stale_channels)
        if self.store is not None:
            # Every fingerprint ever refreshed *from* is dead -- unless the
            # network was reverted back onto it and it is current again.
            superseded = set(self._lineage.values()) - {current}
            if superseded:
                try:
                    dropped += self.store.prune(superseded)
                except OSError:
                    pass  # cache-tier housekeeping must not break serving
        return dropped

    # ------------------------------------------------------------------
    # Dynamic networks: versioned refresh
    # ------------------------------------------------------------------
    def apply_updates(self, updates: Iterable[Any]) -> RefreshReport:
        """Apply a batch of edge-weight updates and refresh the cache.

        Equivalent to ``system.network.apply_updates(updates)`` followed by
        :meth:`refresh` -- the one-call path a dynamic workload uses between
        device waves.
        """
        self._check_no_async_refresh()
        self.network.apply_updates(updates)
        return self.refresh()

    def _check_no_async_refresh(self) -> None:
        """Refuse to mutate or refresh while an async refresh is in flight.

        The worker owns the pending delta and the superseded cache entries
        for the duration of its run; letting a second refresh (or a new
        mutation batch) in before the swap would splice two deltas together.
        Callers ``wait()`` on the handle first.
        """
        handle = self._async_refresh
        if handle is not None and not handle.done:
            raise RuntimeError(
                "a refresh_async() is still in flight; wait() on its handle "
                "before applying further updates or refreshing again"
            )

    def refresh(self) -> RefreshReport:
        """Bring every cached cycle up to date with the mutated network.

        Reads the network's pending delta and, for each entry built for the
        superseded structure, routes through the scheme's
        :meth:`~repro.air.base.AirIndexScheme.incremental_rebuild` (weight
        deltas on schemes that support it) or a full reconstruction, then
        re-keys the entry under the new fingerprint and records the
        fingerprint lineage (:meth:`lineage`).  Channels built for any
        superseded fingerprint are dropped: after an in-place refresh their
        cycle objects no longer match the scheme's.

        In-place mutations *without* a refresh stay safe -- the fingerprint
        miss forces a full rebuild on the next ``scheme()`` call -- but pay
        a from-scratch build per scheme; ``refresh()`` is what makes a
        mutate/serve loop cheap.

        The incremental path trusts the network's delta to fully explain the
        fingerprint transition, which holds as long as every mutation since
        the last refresh went through the network's mutating methods.  If
        the fingerprint moved while the delta records no changes (someone
        called ``clear_delta()`` externally), every entry takes the
        full-rebuild path instead; a *partial* external clear followed by
        further updates is not detectable -- do not clear a delta an
        :class:`AirSystem` has not consumed.
        """
        self._check_no_async_refresh()
        started = time.perf_counter()
        delta = self.network.pending_delta()
        parent = self._clean_fingerprint
        current = self.network.fingerprint()
        if current == parent and delta.empty:
            return RefreshReport(
                parent_fingerprint=parent,
                fingerprint=current,
                structural=False,
                num_changes=0,
                num_dirty_nodes=0,
                seconds=time.perf_counter() - started,
            )

        incremental: List[str] = []
        rebuilt: List[str] = []
        dropped: List[str] = []
        artifacts_stored = 0
        # The incremental path is only sound when the delta fully explains
        # the fingerprint transition.  A moved fingerprint with *no* recorded
        # changes means the tracking was cleared externally -- fall back to
        # full rebuilds rather than re-keying stale state as fresh.
        trust_delta = not delta.structural and bool(delta.changes)
        for key in [key for key in self._schemes if key[2] == parent and parent != current]:
            name, params_items, _ = key
            scheme = self._schemes.pop(key)
            new_key = (name, params_items, current)
            if new_key in self._schemes:
                # Already rebuilt from scratch after the mutation (a query
                # arrived before this refresh); keep that entry.
                dropped.append(name)
                continue
            if trust_delta and scheme.incremental_rebuild(self.network, delta):
                incremental.append(name)
                self._incremental_rebuilds += 1
            else:
                scheme = registry.create(name, self.network, **dict(params_items))
                scheme.cycle  # build the refreshed broadcast cycle now
                rebuilt.append(name)
                self._full_rebuilds += 1
            self._schemes[new_key] = scheme
            # The refreshed state belongs to the new fingerprint; the old
            # fingerprint's stored artifact is now superseded (see
            # prune_cache) and must never be served for this network.
            if self._publish_to_store(scheme):
                artifacts_stored += 1
        for key in [key for key in self._channels if key[2] != current]:
            del self._channels[key]

        if current != parent:
            self._lineage[current] = parent
        self._clean_fingerprint = current
        self.network.clear_delta()
        return RefreshReport(
            parent_fingerprint=parent,
            fingerprint=current,
            structural=delta.structural,
            num_changes=len(delta.changes),
            num_dirty_nodes=len(delta.dirty_nodes),
            incremental=tuple(incremental),
            rebuilt=tuple(rebuilt),
            dropped=tuple(dropped),
            seconds=time.perf_counter() - started,
            artifacts_stored=artifacts_stored,
        )

    def refresh_async(self) -> AsyncRefresh:
        """Double-buffered :meth:`refresh`: queries never wait on the rebuild.

        Snapshots the pending delta, then hands the refresh to a background
        worker that builds *replacement* schemes into a shadow set -- via
        :meth:`~repro.air.base.AirIndexScheme.shadow_rebuild` where the
        scheme supports it, from scratch otherwise -- while the system keeps
        answering queries from the superseded entries (a lookup under the
        new fingerprint transparently falls back to them for the duration;
        see :meth:`_scheme_entry`).  When every replacement is ready the
        worker swaps them in under one lock acquisition: queries observe
        either the complete old state or the complete new state, never a
        mixture, and never block for longer than the swap's dictionary
        updates.

        At most one refresh may be in flight: until :meth:`wait` returns,
        further :meth:`refresh`/:meth:`refresh_async`/:meth:`apply_updates`
        calls raise ``RuntimeError`` (apply updates to the *network* only
        through those methods, so the guard is airtight in practice).
        Returns an :class:`AsyncRefresh` handle; the swap has happened
        exactly when ``handle.done`` turns true.
        """
        self._check_no_async_refresh()
        started = time.perf_counter()
        delta = self.network.pending_delta()
        parent = self._clean_fingerprint
        current = self.network.fingerprint()
        if current == parent and delta.empty:
            return AsyncRefresh.completed(
                RefreshReport(
                    parent_fingerprint=parent,
                    fingerprint=current,
                    structural=False,
                    num_changes=0,
                    num_dirty_nodes=0,
                    seconds=time.perf_counter() - started,
                )
            )
        if current != parent:
            self._refresh_alias[current] = parent
        handle = AsyncRefresh()
        self._async_refresh = handle
        return handle._start(
            lambda: self._refresh_shadow(parent, current, delta, started)
        )

    def _refresh_shadow(
        self, parent: str, current: str, delta: Any, started: float
    ) -> RefreshReport:
        """Worker body of :meth:`refresh_async`: build shadows, swap once."""
        try:
            # Chaos hook: a plan targeting ``engine.refresh.fail`` aborts the
            # rebuild here, before any shadow exists -- the exact failure the
            # serving daemon's degraded mode must absorb.  On this (or any)
            # failure the network delta stays uncleared, so the next refresh
            # rebuilds from the *cumulative* updates.
            faults.fail_if("engine.refresh.fail")
            incremental: List[str] = []
            rebuilt: List[str] = []
            dropped: List[str] = []
            trust_delta = not delta.structural and bool(delta.changes)
            with self._swap_lock:
                entries = [
                    (key, self._schemes[key])
                    for key in self._schemes
                    if key[2] == parent and parent != current
                ]

            replacements: List[Tuple[Tuple, Tuple, AirIndexScheme, bool]] = []
            for key, scheme in entries:
                name, params_items, _ = key
                replacement: Optional[AirIndexScheme] = None
                if trust_delta:
                    try:
                        replacement = scheme.shadow_rebuild(self.network, delta)
                    except Exception:
                        # A failed shadow refresh must not take serving down:
                        # fall back to the from-scratch build below.
                        replacement = None
                was_incremental = replacement is not None
                if replacement is None:
                    replacement = registry.create(
                        name, self.network, **dict(params_items)
                    )
                    replacement.cycle  # build the refreshed cycle off-line
                replacements.append(
                    (key, (name, params_items, current), replacement, was_incremental)
                )

            with self._swap_lock:
                for old_key, new_key, replacement, was_incremental in replacements:
                    self._schemes.pop(old_key, None)
                    if new_key in self._schemes:
                        # A build landed under the new key while we were
                        # refreshing (alias hits never insert there, but a
                        # scheme with no pre-delta entry builds from scratch
                        # directly under the new fingerprint).  Keep it.
                        dropped.append(old_key[0])
                        continue
                    self._schemes[new_key] = replacement
                    if was_incremental:
                        incremental.append(old_key[0])
                        self._incremental_rebuilds += 1
                    else:
                        rebuilt.append(old_key[0])
                        self._full_rebuilds += 1
                for key in [key for key in self._channels if key[2] != current]:
                    del self._channels[key]
                if current != parent:
                    self._lineage[current] = parent
                self._clean_fingerprint = current
                self.network.clear_delta()

            # Store publication is slow I/O: do it after the swap, outside
            # the lock, only for replacements that actually serve.
            artifacts_stored = 0
            for _, new_key, replacement, _ in replacements:
                if self._schemes.get(new_key) is replacement:
                    if self._publish_to_store(replacement):
                        artifacts_stored += 1

            return RefreshReport(
                parent_fingerprint=parent,
                fingerprint=current,
                structural=delta.structural,
                num_changes=len(delta.changes),
                num_dirty_nodes=len(delta.dirty_nodes),
                incremental=tuple(incremental),
                rebuilt=tuple(rebuilt),
                dropped=tuple(dropped),
                seconds=time.perf_counter() - started,
                artifacts_stored=artifacts_stored,
            )
        finally:
            self._refresh_alias.pop(current, None)

    def lineage(self, fingerprint: Optional[str] = None) -> List[str]:
        """The chain of superseded fingerprints, newest first.

        Starts at ``fingerprint`` (default: the network's current one) and
        follows the parent links recorded by :meth:`refresh`.  A structure
        never refreshed from has no parent; reverting mutations can in
        principle close a cycle in the lineage graph, so the walk stops at
        the first repeat.
        """
        current = fingerprint if fingerprint is not None else self.network.fingerprint()
        chain = [current]
        seen = {current}
        while current in self._lineage:
            current = self._lineage[current]
            if current in seen:
                break
            chain.append(current)
            seen.add(current)
        return chain

    # ------------------------------------------------------------------
    # Clients and channels
    # ------------------------------------------------------------------
    def _options(self, options: Optional[ClientOptions], **overrides: Any) -> ClientOptions:
        resolved = options or self.default_options
        changes = {key: value for key, value in overrides.items() if value is not None}
        return resolved.replace(**changes) if changes else resolved

    def channel(
        self,
        name: str,
        loss_rate: float = 0.0,
        seed: int = 0,
        options: Optional[ClientOptions] = None,
        **params: Any,
    ) -> BroadcastChannel:
        """A (cached) channel carrying the named scheme's cycle.

        The channel is memoized per ``(scheme, client options)`` so repeated
        :meth:`query` calls keep advancing the same session sequence instead
        of replaying session #1 forever.  The key carries the *full*
        :class:`ClientOptions` -- not just the loss fields -- so clients that
        differ in any option (e.g. the Section 6.1 memory bound) never share
        a session sequence: each option set sees the same deterministic
        sequence it would see alone.
        """
        name = registry.canonical_name(name)
        resolved = self._resolve_params(name, params)
        scheme, cache_key = self._scheme_entry(name, resolved)
        if options is None:
            options = self.default_options.replace(loss_rate=loss_rate, loss_seed=seed)
        # Keyed by the *effective* cache key: during an async refresh a
        # stale-while-refreshing hit keys the channel under the superseded
        # fingerprint, so the swap drops it together with the stale scheme.
        key = (*cache_key, options)
        if key not in self._channels:
            self._channels[key] = scheme.channel(
                loss_rate=options.loss_rate, seed=options.loss_seed
            )
        return self._channels[key]

    def client(self, name: str, options: Optional[ClientOptions] = None, **params: Any):
        """A client for the named scheme under the system's default options."""
        return self.scheme(name, **params).client(options=self._options(options))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        name: str,
        source: int,
        target: int,
        options: Optional[ClientOptions] = None,
        **params: Any,
    ) -> QueryResult:
        """Process one on-air query through the named scheme."""
        options = self._options(options)
        channel = self.channel(name, options=options, **params)
        client = self.scheme(name, **params).client(options=options)
        return client.query(
            source, target, channel=channel, tune_in_offset=options.tune_in_offset
        )

    def query_batch(
        self,
        name: str,
        workload: Iterable[Any],
        options: Optional[ClientOptions] = None,
        *,
        loss_rate: Optional[float] = None,
        loss_seed: Optional[int] = None,
        memory_bound: Optional[bool] = None,
        concurrency: int = 1,
        chunk_size: Optional[int] = None,
        **params: Any,
    ) -> MethodRun:
        """Run a whole workload through the named scheme and aggregate it.

        The workload may contain :class:`~repro.experiments.workloads.Query`
        objects (mismatches against the ground truth are counted) or plain
        ``(source, target)`` pairs.  A fresh, seeded channel is opened for
        the batch, so two identical calls -- or one batched call and one
        sequential per-query loop -- produce identical metrics.
        """
        options = self._options(
            options, loss_rate=loss_rate, loss_seed=loss_seed, memory_bound=memory_bound
        )
        scheme = self.scheme(name, **params)
        channel = scheme.channel(loss_rate=options.loss_rate, seed=options.loss_seed)
        return execute_workload(
            scheme,
            workload,
            options,
            channel=channel,
            concurrency=concurrency,
            chunk_size=chunk_size,
        )

    def simulate_fleet(
        self,
        name: str,
        devices: Sequence[DeviceSpec],
        options: Optional[ClientOptions] = None,
        *,
        concurrency: int = 1,
        seed: int = 0,
        chunk_size: Optional[int] = None,
        **params: Any,
    ) -> FleetRun:
        """Simulate a fleet of devices on the named scheme's broadcast.

        The scheme (and its cycle) comes from the system cache, so a fleet
        over an already-built scheme pays for session replay only -- no
        rebuilds.  Lossless devices share probe sessions via the
        :mod:`repro.broadcast.replay` fast path, executed in bulk through
        the vectorized :mod:`repro.broadcast.replay_bulk` kernel when numpy
        is available (scalar per-device replay otherwise); lossy devices
        are simulated natively.  Like :meth:`query_batch`, the result is
        bit-identical for every ``concurrency`` value -- and for either
        replay backend (wall-clock fields excepted).

        ``devices`` typically comes from a scenario generator such as
        :func:`repro.experiments.workloads.fleet_rush_hour`.
        """
        return _simulate_fleet(
            self.scheme(name, **params),
            devices,
            self._options(options),
            concurrency=concurrency,
            seed=seed,
            chunk_size=chunk_size,
        )

    def simulate_update_stream(self, name: str, stream: Any, **kwargs: Any):
        """Run an update stream with a device wave per step (dynamic networks).

        Convenience wrapper around
        :func:`repro.dynamic.simulate.simulate_update_stream`: each batch of
        ``stream`` is applied to the network, the cycle cache is refreshed
        through the incremental path, and a wave of devices tunes into the
        refreshed broadcast.  See that function for the keyword arguments.
        """
        from repro.dynamic.simulate import simulate_update_stream as _simulate_stream

        return _simulate_stream(self, name, stream, **kwargs)

    def compare(
        self,
        methods: Optional[Sequence[str]] = None,
        workload: Iterable[Any] = (),
        options: Optional[ClientOptions] = None,
        *,
        loss_rate: Optional[float] = None,
        concurrency: int = 1,
    ) -> Dict[str, MethodRun]:
        """Run the same workload through several methods (Figure 10 style).

        ``methods`` defaults to the registry's comparison set (the five
        schemes of the paper's device experiments).  Workloads are
        materialized once so every method sees the same queries.
        """
        names = [registry.canonical_name(m) for m in (methods or registry.comparison_schemes())]
        queries = list(workload)
        return {
            name: self.query_batch(
                name,
                queries,
                options,
                loss_rate=loss_rate,
                concurrency=concurrency,
            )
            for name in names
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        info = self.cache_info()
        return (
            f"AirSystem(network={self.network.name!r}, cached={info.entries}, "
            f"hits={info.hits}, misses={info.misses})"
        )
