"""The :class:`AirSystem` engine facade.

One object owning a road network and every broadcast scheme built over it.
It is the production-facing entry point the ROADMAP asks for: schemes are
constructed through the registry, built cycles are memoized by
``(scheme, params, network fingerprint)`` so repeated experiments never
rebuild, and workloads run in batches -- optionally across a thread pool of
independent channel sessions::

    from repro.engine import AirSystem
    from repro.experiments import ExperimentConfig

    system = AirSystem.from_config(ExperimentConfig(network="germany", scale=0.02))
    run = system.query_batch("NR", workload, concurrency=4)
    table = system.compare(["NR", "EB", "DJ"], workload, loss_rate=0.05)

Determinism: a batch pre-draws one tuning session per query from a fresh,
seeded channel *in workload order* before any query is processed, so the
results are bit-identical to a sequential per-query loop regardless of the
``concurrency`` setting (CPU seconds excepted -- those are measured wall
clock).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.air import registry
from repro.air.base import AirIndexScheme, ClientOptions, QueryResult, is_mismatch
from repro.broadcast.channel import BroadcastChannel
from repro.concurrency import run_indexed
from repro.engine.results import MethodRun
from repro.fleet.devices import DeviceSpec
from repro.fleet.results import FleetRun
from repro.fleet.simulator import simulate_fleet as _simulate_fleet
from repro.network.graph import RoadNetwork

__all__ = ["AirSystem", "CacheInfo", "execute_workload"]


@dataclass(frozen=True)
class CacheInfo:
    """Statistics of the system's cycle cache."""

    hits: int
    misses: int
    entries: int

    @property
    def builds(self) -> int:
        """Number of scheme/cycle constructions (== cache misses)."""
        return self.misses


def _as_query(item: Any) -> Tuple[int, int, Optional[float]]:
    """Normalize a workload item to ``(source, target, true_distance)``.

    Accepts :class:`~repro.experiments.workloads.Query`-like objects (duck
    typed on ``source``/``target``) and plain ``(source, target)`` pairs;
    without a ground-truth distance the mismatch check is skipped.
    """
    if hasattr(item, "source") and hasattr(item, "target"):
        return item.source, item.target, getattr(item, "true_distance", None)
    source, target = item
    return source, target, None


def execute_workload(
    scheme: AirIndexScheme,
    queries: Iterable[Any],
    options: Optional[ClientOptions] = None,
    *,
    channel: Optional[BroadcastChannel] = None,
    concurrency: int = 1,
    chunk_size: Optional[int] = None,
) -> MethodRun:
    """Run a workload through a scheme's client and aggregate the metrics.

    This is the single implementation behind both the legacy
    :func:`repro.experiments.runner.run_workload` and
    :meth:`AirSystem.query_batch`, which is what makes their results
    identical by construction.

    Sessions are drawn from the channel sequentially in workload order, so
    tune-in offsets and packet-loss draws do not depend on ``concurrency``;
    queries are then processed in chunks, in parallel when ``concurrency > 1``
    (each session is independent and the schemes' shared state is read-only).
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    options = options or ClientOptions()
    items = [_as_query(item) for item in queries]
    if channel is None:
        channel = scheme.channel(loss_rate=options.loss_rate, seed=options.loss_seed)
    client = scheme.client(options=options)
    sessions = [channel.session(options.tune_in_offset) for _ in items]

    def process(index: int) -> QueryResult:
        source, target, _ = items[index]
        return client.query(source, target, session=sessions[index])

    # run_indexed never spins up a pool for an empty or single-item workload.
    results = run_indexed(process, len(items), concurrency, chunk_size)

    run = MethodRun(method=scheme.short_name, server=scheme.server_metrics())
    for (source, target, truth), result in zip(items, results):
        run.per_query.append(result.metrics)
        if is_mismatch(result.distance, truth):
            run.mismatches += 1
    return run


class AirSystem:
    """A network plus a cache of schemes built (and cycles laid out) over it.

    Parameters
    ----------
    network:
        The road network every scheme is built over.
    config:
        Optional configuration object (typically an
        :class:`~repro.experiments.config.ExperimentConfig`).  When given, it
        supplies per-scheme default parameters through the registry's
        ``config_map`` and the default client device.
    default_options:
        Base :class:`ClientOptions` for every client the system creates;
        defaults to ``ClientOptions(device=config.device)`` when a
        configuration is given.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: Any = None,
        default_options: Optional[ClientOptions] = None,
    ) -> None:
        self.network = network
        self.config = config
        if default_options is None:
            device = getattr(config, "device", None)
            default_options = ClientOptions(device=device) if device else ClientOptions()
        self.default_options = default_options
        self._schemes: Dict[Tuple, AirIndexScheme] = {}
        self._channels: Dict[Tuple, BroadcastChannel] = {}
        self._hits = 0
        self._misses = 0

    @classmethod
    def from_config(cls, config: Any, network_name: Optional[str] = None) -> "AirSystem":
        """Build the configured (scaled) evaluation network and wrap it."""
        from repro.network import datasets

        network = datasets.load(
            network_name or config.network, scale=config.scale, seed=config.seed
        )
        return cls(network, config=config)

    # ------------------------------------------------------------------
    # Scheme cache
    # ------------------------------------------------------------------
    def _resolve_params(self, name: str, params: Mapping[str, Any]) -> Dict[str, Any]:
        resolved: Dict[str, Any] = {}
        if self.config is not None:
            resolved.update(registry.params_from_config(name, self.config))
        resolved.update(params)
        # Round-trip through the dataclass so the cache key carries every
        # field (defaults included) and unknown names fail fast.
        info = registry.get_scheme(name)
        return dataclasses.asdict(info.make_params(**resolved))

    @property
    def _fingerprint(self) -> str:
        """The network's current structural digest.

        Read on every cache lookup (memoized inside :class:`RoadNetwork`, so
        this is a dictionary read while the network is unchanged): mutating
        the network -- adding or removing an edge -- changes the digest,
        which misses every cached key and forces a rebuild instead of
        serving a stale cycle.
        """
        return self.network.fingerprint()

    def scheme(self, name: str, **params: Any) -> AirIndexScheme:
        """The (cached) scheme instance for ``name`` with the given parameters.

        On a cache miss the scheme is constructed through the registry and
        its broadcast cycle is built immediately, so everything returned by
        this method is ready to serve queries without further pre-computation.
        """
        name = registry.canonical_name(name)
        resolved = self._resolve_params(name, params)
        key = (name, tuple(sorted(resolved.items())), self._fingerprint)
        scheme = self._schemes.get(key)
        if scheme is not None:
            self._hits += 1
            return scheme
        self._misses += 1
        scheme = registry.create(name, self.network, **resolved)
        scheme.cycle  # build (and thereby cache) the broadcast cycle now
        self._schemes[key] = scheme
        return scheme

    def cache_info(self) -> CacheInfo:
        """Hit/miss/entry counts of the cycle cache."""
        return CacheInfo(hits=self._hits, misses=self._misses, entries=len(self._schemes))

    def clear_cache(self) -> None:
        """Drop every cached scheme, cycle and channel."""
        self._schemes.clear()
        self._channels.clear()
        self._hits = 0
        self._misses = 0

    def prune_cache(self) -> int:
        """Drop cache entries built for superseded network structures.

        In-place mutation keeps older-fingerprint entries around so that
        reverting a mutation hits the original entry again, but a long-lived
        system in a mutate/re-query loop would accumulate one dead cycle per
        structure.  This evicts every entry whose fingerprint differs from
        the network's current one and returns the number dropped.
        """
        current = self._fingerprint
        stale_schemes = [key for key in self._schemes if key[2] != current]
        for key in stale_schemes:
            del self._schemes[key]
        stale_channels = [key for key in self._channels if key[2] != current]
        for key in stale_channels:
            del self._channels[key]
        return len(stale_schemes) + len(stale_channels)

    # ------------------------------------------------------------------
    # Clients and channels
    # ------------------------------------------------------------------
    def _options(self, options: Optional[ClientOptions], **overrides: Any) -> ClientOptions:
        resolved = options or self.default_options
        changes = {key: value for key, value in overrides.items() if value is not None}
        return resolved.replace(**changes) if changes else resolved

    def channel(
        self, name: str, loss_rate: float = 0.0, seed: int = 0, **params: Any
    ) -> BroadcastChannel:
        """A (cached) channel carrying the named scheme's cycle.

        The channel is memoized per ``(scheme, loss_rate, seed)`` so repeated
        :meth:`query` calls keep advancing the same session sequence instead
        of replaying session #1 forever.
        """
        name = registry.canonical_name(name)
        scheme = self.scheme(name, **params)
        resolved = self._resolve_params(name, params)
        key = (name, tuple(sorted(resolved.items())), self._fingerprint, loss_rate, seed)
        if key not in self._channels:
            self._channels[key] = scheme.channel(loss_rate=loss_rate, seed=seed)
        return self._channels[key]

    def client(self, name: str, options: Optional[ClientOptions] = None, **params: Any):
        """A client for the named scheme under the system's default options."""
        return self.scheme(name, **params).client(options=self._options(options))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        name: str,
        source: int,
        target: int,
        options: Optional[ClientOptions] = None,
        **params: Any,
    ) -> QueryResult:
        """Process one on-air query through the named scheme."""
        options = self._options(options)
        channel = self.channel(name, options.loss_rate, options.loss_seed, **params)
        client = self.scheme(name, **params).client(options=options)
        return client.query(
            source, target, channel=channel, tune_in_offset=options.tune_in_offset
        )

    def query_batch(
        self,
        name: str,
        workload: Iterable[Any],
        options: Optional[ClientOptions] = None,
        *,
        loss_rate: Optional[float] = None,
        loss_seed: Optional[int] = None,
        memory_bound: Optional[bool] = None,
        concurrency: int = 1,
        chunk_size: Optional[int] = None,
        **params: Any,
    ) -> MethodRun:
        """Run a whole workload through the named scheme and aggregate it.

        The workload may contain :class:`~repro.experiments.workloads.Query`
        objects (mismatches against the ground truth are counted) or plain
        ``(source, target)`` pairs.  A fresh, seeded channel is opened for
        the batch, so two identical calls -- or one batched call and one
        sequential per-query loop -- produce identical metrics.
        """
        options = self._options(
            options, loss_rate=loss_rate, loss_seed=loss_seed, memory_bound=memory_bound
        )
        scheme = self.scheme(name, **params)
        channel = scheme.channel(loss_rate=options.loss_rate, seed=options.loss_seed)
        return execute_workload(
            scheme,
            workload,
            options,
            channel=channel,
            concurrency=concurrency,
            chunk_size=chunk_size,
        )

    def simulate_fleet(
        self,
        name: str,
        devices: Sequence[DeviceSpec],
        options: Optional[ClientOptions] = None,
        *,
        concurrency: int = 1,
        seed: int = 0,
        chunk_size: Optional[int] = None,
        **params: Any,
    ) -> FleetRun:
        """Simulate a fleet of devices on the named scheme's broadcast.

        The scheme (and its cycle) comes from the system cache, so a fleet
        over an already-built scheme pays for session replay only -- no
        rebuilds.  Lossless devices share probe sessions via the
        :mod:`repro.broadcast.replay` fast path; lossy devices are simulated
        natively.  Like :meth:`query_batch`, the result is bit-identical for
        every ``concurrency`` value (wall-clock fields excepted).

        ``devices`` typically comes from a scenario generator such as
        :func:`repro.experiments.workloads.fleet_rush_hour`.
        """
        return _simulate_fleet(
            self.scheme(name, **params),
            devices,
            self._options(options),
            concurrency=concurrency,
            seed=seed,
            chunk_size=chunk_size,
        )

    def compare(
        self,
        methods: Optional[Sequence[str]] = None,
        workload: Iterable[Any] = (),
        options: Optional[ClientOptions] = None,
        *,
        loss_rate: Optional[float] = None,
        concurrency: int = 1,
    ) -> Dict[str, MethodRun]:
        """Run the same workload through several methods (Figure 10 style).

        ``methods`` defaults to the registry's comparison set (the five
        schemes of the paper's device experiments).  Workloads are
        materialized once so every method sees the same queries.
        """
        names = [registry.canonical_name(m) for m in (methods or registry.comparison_schemes())]
        queries = list(workload)
        return {
            name: self.query_batch(
                name,
                queries,
                options,
                loss_rate=loss_rate,
                concurrency=concurrency,
            )
            for name in names
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        info = self.cache_info()
        return (
            f"AirSystem(network={self.network.name!r}, cached={info.entries}, "
            f"hits={info.hits}, misses={info.misses})"
        )
