"""Command-line interface.

The sub-commands cover the common ways of poking at the system without
writing code (installed as the ``repro`` console script; ``python -m
repro`` works identically)::

    repro schemes
    repro cycle    --network germany --scale 0.02 --method NR
    repro query    --network germany --scale 0.02 --method NR --queries 5
    repro compare  --network milan   --scale 0.02 --methods NR,EB,DJ
    repro fleet    --network germany --scale 0.02 --method NR --devices 500
    repro dynamic  --network germany --scale 0.02 --method NR --steps 6
    repro store    --dir /var/cache/repro build --network germany --scale 0.02
    repro chaos    --socket /tmp/repro-air.sock --scenario smoke --requests 200
    repro ingest   --edges USA-road-d.NY.gr --nodes USA-road-d.NY.co --out ny-table

* ``schemes`` -- list every registered air-index scheme with its parameters
  and defaults, straight from the registry.
* ``cycle``   -- build one scheme and print its broadcast-cycle statistics
  (Table 1 style row).
* ``query``   -- run a few random on-air queries through one scheme's client
  and print the per-query performance factors.
* ``compare`` -- run the same workload through several methods and print the
  averaged comparison (Figure 10 style row per method).
* ``fleet``   -- simulate a population of devices sharing one broadcast
  cycle (scenario-generated queries, staggered tune-ins, optional loss) and
  print percentile latency/tuning/energy aggregates.
* ``dynamic`` -- replay an edge-weight update stream (congestion ramp or
  random closures) against one scheme, refreshing the cycle incrementally
  between device waves, and print the per-step refresh/answer statistics.
* ``store``   -- manage an on-disk artifact store (the build/serve split):
  ``build`` pre-computes schemes into it, ``ls`` lists its contents,
  ``verify`` checksum-verifies every artifact (quarantining corrupted
  ones; ``--repair`` additionally sweeps abandoned staging files and
  rebuilds the quarantined schemes in the same pass), ``gc`` enforces a
  byte cap / purges the quarantine, ``prune``
  drops artifacts by network fingerprint (prefixes accepted), and
  ``stats`` prints the store's hit/miss/occupancy counters.
* ``serve``   -- run the broadcast serving daemon: build the configured
  schemes once, publish them into a shared-memory segment and serve
  query/batch/fleet/refresh requests from a pool of worker processes.
* ``bench-client`` -- drive a running daemon with a query burst and print
  client-side throughput and latency percentiles.
* ``chaos``   -- run a named, seeded fault scenario (worker kills, frame
  corruption, refresh failures, ...) against a *running* daemon and print
  what clients experienced: availability of in-deadline requests,
  reconnects, staleness exposure, bit-identity violations and worker MTTR.
  Exits non-zero on any identity violation or (with
  ``--min-availability``) an availability shortfall.
* ``ingest``  -- stream a DIMACS ``.gr``/``.co`` pair or an edge-list CSV
  into a columnar on-disk edge table (O(chunk) memory, ``file:line``
  validation errors); ``--build`` additionally compiles the CSR snapshot
  straight from the table -- no dict network -- and answers a sanity
  query over it.

Every command constructs its schemes through an
:class:`~repro.engine.system.AirSystem`, so the set of accepted ``--method``
values is exactly ``air.available_schemes()`` -- a newly registered scheme
shows up here without touching this module.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro import air
from repro.broadcast.device import CHANNEL_2MBPS, CHANNEL_384KBPS, J2ME_CLAMSHELL
from repro.dynamic import UPDATE_STREAMS, simulate_update_stream
from repro.engine import AirSystem, ClientOptions
from repro.experiments import FLEET_SCENARIOS, ExperimentConfig, QueryWorkload, report
from repro.network import datasets

__all__ = ["main", "build_parser"]


def _scheme_name(value: str) -> str:
    """Argparse type resolving a case-insensitive scheme name."""
    try:
        return air.canonical_name(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _scheme_list(value: str) -> List[str]:
    """Argparse type for a comma-separated scheme list."""
    return [_scheme_name(part.strip()) for part in value.split(",") if part.strip()]


def _positive_int(value: str) -> int:
    """Argparse type for counts that must be >= 1."""
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return parsed


def _scenario_names() -> List[str]:
    from repro.faults import scenario_names

    return scenario_names()


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shortest path computation on air indexes (VLDB 2010) -- reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    scheme_names = ", ".join(air.available_schemes())

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--network",
            default="germany",
            choices=datasets.available(),
            help="paper network to instantiate (synthetic stand-in)",
        )
        sub.add_argument(
            "--scale", type=float, default=0.02, help="fraction of the paper's network size"
        )
        sub.add_argument("--seed", type=int, default=7, help="generator / workload seed")
        sub.add_argument(
            "--regions", type=int, default=16, help="regions for EB/NR/ArcFlag/HiTi"
        )
        sub.add_argument("--landmarks", type=int, default=4, help="landmarks for LD")

    subparsers.add_parser("schemes", help="list registered schemes and their parameters")

    cycle = subparsers.add_parser("cycle", help="print broadcast cycle statistics")
    add_common(cycle)
    cycle.add_argument(
        "--method", default="NR", type=_scheme_name, help=f"scheme ({scheme_names})"
    )

    query = subparsers.add_parser("query", help="run on-air queries through one scheme")
    add_common(query)
    query.add_argument(
        "--method", default="NR", type=_scheme_name, help=f"scheme ({scheme_names})"
    )
    query.add_argument("--queries", type=int, default=3, help="number of random queries")
    query.add_argument("--loss-rate", type=float, default=0.0, help="packet loss probability")
    query.add_argument(
        "--memory-bound",
        action="store_true",
        help="use the Section 6.1 super-edge client (EB/NR only)",
    )

    compare = subparsers.add_parser("compare", help="compare several methods on one workload")
    add_common(compare)
    compare.add_argument(
        "--methods",
        default="NR,EB,DJ",
        type=_scheme_list,
        help="comma-separated method list",
    )
    compare.add_argument("--queries", type=int, default=8, help="number of random queries")
    compare.add_argument("--loss-rate", type=float, default=0.0, help="packet loss probability")

    fleet = subparsers.add_parser(
        "fleet", help="simulate a device population sharing one broadcast cycle"
    )
    add_common(fleet)
    fleet.add_argument(
        "--method", default="NR", type=_scheme_name, help=f"scheme ({scheme_names})"
    )
    fleet.add_argument("--devices", type=_positive_int, default=500, help="fleet size")
    fleet.add_argument(
        "--scenario",
        default="rush-hour",
        choices=sorted(FLEET_SCENARIOS),
        help="device population generator",
    )
    fleet.add_argument("--loss-rate", type=float, default=0.0, help="packet loss probability")
    fleet.add_argument(
        "--concurrency",
        type=_positive_int,
        default=1,
        help=(
            "worker threads (per-device answers/packet metrics are "
            "bit-identical for every value; wall-clock fields vary)"
        ),
    )

    dynamic = subparsers.add_parser(
        "dynamic",
        help="replay an edge-weight update stream with incremental cycle refresh",
    )
    add_common(dynamic)
    dynamic.add_argument(
        "--method", default="NR", type=_scheme_name, help=f"scheme ({scheme_names})"
    )
    dynamic.add_argument(
        "--stream",
        default="congestion",
        choices=sorted(UPDATE_STREAMS),
        help="update stream generator (rush-hour congestion ramp or random closures)",
    )
    dynamic.add_argument(
        "--steps", type=_positive_int, default=6, help="update batches to replay"
    )
    dynamic.add_argument(
        "--devices", type=_positive_int, default=100, help="devices tuning in per step"
    )
    dynamic.add_argument(
        "--scenario",
        default="trickle",
        choices=sorted(FLEET_SCENARIOS),
        help="device population generator for each wave",
    )
    dynamic.add_argument("--loss-rate", type=float, default=0.0, help="packet loss probability")
    dynamic.add_argument(
        "--concurrency", type=_positive_int, default=1, help="worker threads per wave"
    )

    store = subparsers.add_parser(
        "store", help="manage the on-disk artifact store (build/serve split)"
    )
    store.add_argument("--dir", required=True, help="store root directory")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_build = store_sub.add_parser(
        "build", help="pre-compute scheme artifacts into the store"
    )
    add_common(store_build)
    store_build.add_argument(
        "--methods",
        default=",".join(air.available_schemes()),
        type=_scheme_list,
        help="comma-separated method list (default: every registered scheme)",
    )
    store_sub.add_parser("ls", help="list stored artifacts")
    store_verify = store_sub.add_parser(
        "verify", help="checksum-verify every artifact (exit 1 if any corrupt)"
    )
    add_common(store_verify)
    store_verify.add_argument(
        "--repair",
        action="store_true",
        help=(
            "after quarantining, sweep abandoned staging files and rebuild "
            "the --methods schemes so the store is whole again (exit 0 once "
            "a re-verify comes back clean)"
        ),
    )
    store_verify.add_argument(
        "--methods",
        default=",".join(air.available_schemes()),
        type=_scheme_list,
        help="schemes to rebuild under --repair (default: every registered scheme)",
    )
    store_gc = store_sub.add_parser(
        "gc", help="evict least-recently-used artifacts down to a byte cap"
    )
    store_gc.add_argument(
        "--max-bytes", type=int, default=None, help="byte cap to enforce"
    )
    store_gc.add_argument(
        "--purge-quarantine",
        action="store_true",
        help="also delete quarantined (corrupt) files",
    )
    store_prune = store_sub.add_parser(
        "prune", help="drop artifacts built over the given network fingerprints"
    )
    store_prune.add_argument(
        "--fingerprints",
        required=True,
        help="comma-separated network fingerprints (unique prefixes accepted)",
    )
    store_sub.add_parser("stats", help="print hit/miss/occupancy counters")

    serve = subparsers.add_parser(
        "serve", help="run the broadcast serving daemon (shared-memory worker pool)"
    )
    add_common(serve)
    serve.add_argument(
        "--methods",
        default="NR",
        type=_scheme_list,
        help="comma-separated schemes to build and serve",
    )
    serve.add_argument("--workers", type=_positive_int, default=2, help="worker processes")
    serve.add_argument(
        "--max-pending",
        type=_positive_int,
        default=32,
        help="per-worker in-flight bound (backpressure)",
    )
    serve.add_argument(
        "--pace-packet-us",
        type=float,
        default=0.0,
        help="emulated on-air microseconds per broadcast packet",
    )
    serve.add_argument(
        "--routing",
        default="round_robin",
        choices=["round_robin", "region"],
        help="request routing policy",
    )
    serve.add_argument("--socket", default=None, help="unix socket path to listen on")
    serve.add_argument(
        "--port", type=int, default=None, help="TCP port instead of a unix socket (0=ephemeral)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    serve.add_argument(
        "--store-dir", default=None, help="artifact store for build warm starts"
    )

    bench = subparsers.add_parser(
        "bench-client", help="drive a running serving daemon with a query burst"
    )
    add_common(bench)
    bench.add_argument(
        "--method", default="NR", type=_scheme_name, help=f"scheme ({scheme_names})"
    )
    bench.add_argument("--socket", default=None, help="daemon's unix socket path")
    bench.add_argument("--port", type=int, default=None, help="daemon's TCP port")
    bench.add_argument("--host", default="127.0.0.1", help="daemon's TCP host")
    bench.add_argument(
        "--requests", type=_positive_int, default=100, help="queries to issue"
    )
    bench.add_argument(
        "--concurrency", type=_positive_int, default=4, help="client connections"
    )
    bench.add_argument(
        "--shutdown",
        action="store_true",
        help="send a shutdown request once the burst completes",
    )

    chaos = subparsers.add_parser(
        "chaos", help="run a seeded fault scenario against a running serving daemon"
    )
    add_common(chaos)
    chaos.add_argument(
        "--method", default="NR", type=_scheme_name, help=f"scheme ({scheme_names})"
    )
    chaos.add_argument("--socket", default=None, help="daemon's unix socket path")
    chaos.add_argument("--port", type=int, default=None, help="daemon's TCP port")
    chaos.add_argument("--host", default="127.0.0.1", help="daemon's TCP host")
    chaos.add_argument(
        "--scenario",
        default="smoke",
        choices=_scenario_names(),
        help="named fault scenario (seeded by --seed)",
    )
    chaos.add_argument(
        "--requests", type=_positive_int, default=200, help="queries to issue"
    )
    chaos.add_argument(
        "--concurrency", type=_positive_int, default=4, help="client connections"
    )
    chaos.add_argument(
        "--deadline-ms",
        type=float,
        default=2000.0,
        help="end-to-end budget per request (busy retries and reconnects included)",
    )
    chaos.add_argument(
        "--refreshes",
        type=int,
        default=1,
        help="refresh batches to fire mid-run (0 disables)",
    )
    chaos.add_argument(
        "--min-availability",
        type=float,
        default=None,
        help="fail (exit 1) if in-deadline availability drops below this fraction",
    )

    ingest = subparsers.add_parser(
        "ingest", help="import a DIMACS or CSV network into a columnar edge table"
    )
    ingest.add_argument(
        "--edges", required=True, help="edge input: DIMACS .gr or edge-list .csv"
    )
    ingest.add_argument(
        "--nodes",
        default=None,
        help="coordinate input: DIMACS .co or node-list .csv (optional)",
    )
    ingest.add_argument(
        "--format",
        dest="input_format",
        choices=["dimacs", "csv"],
        default=None,
        help="input format (default: inferred from the --edges extension)",
    )
    ingest.add_argument("--out", required=True, help="columnar table output directory")
    ingest.add_argument("--name", default=None, help="table name (default: file stem)")
    ingest.add_argument(
        "--chunk-rows",
        type=_positive_int,
        default=None,
        help="rows per on-disk chunk (bounds importer memory)",
    )
    ingest.add_argument(
        "--delimiter", default=",", help="CSV field delimiter (csv format only)"
    )
    ingest.add_argument(
        "--parquet",
        action="store_true",
        help="write Parquet chunks instead of .npz (requires pyarrow)",
    )
    ingest.add_argument(
        "--build",
        action="store_true",
        help="also compile the CSR snapshot from the table and run a sanity query",
    )
    ingest.add_argument("--seed", type=int, default=7, help="sanity query seed")
    return parser


def _config(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        network=args.network,
        scale=args.scale,
        seed=args.seed,
        eb_nr_regions=args.regions,
        arcflag_regions=args.regions,
        hiti_regions=args.regions,
        num_landmarks=args.landmarks,
    )


def _system(args: argparse.Namespace) -> AirSystem:
    return AirSystem.from_config(_config(args))


def _command_schemes(args: argparse.Namespace, out) -> int:
    rows = []
    for name in air.available_schemes():
        info = air.get_scheme(name)
        defaults = info.default_params()
        params = ", ".join(f"{key}={value}" for key, value in defaults.items()) or "-"
        rows.append(
            [
                name,
                info.cls.__name__,
                params,
                "yes" if info.comparison else "-",
                info.description,
            ]
        )
    print(
        report.format_table(
            ["Name", "Class", "Parameters (defaults)", "Comparison", "Description"],
            rows,
            title="Registered air-index schemes",
        ),
        file=out,
    )
    return 0


def _command_cycle(args: argparse.Namespace, out) -> int:
    system = _system(args)
    network = system.network
    scheme = system.scheme(args.method)
    metrics = scheme.server_metrics()
    rows = [
        ["network", f"{network.name} ({network.num_nodes} nodes, {network.num_edges} edges)"],
        ["method", scheme.short_name],
        ["cycle packets", metrics.cycle_packets],
        ["cycle bytes", metrics.cycle_bytes],
        ["index packets", metrics.index_packets],
        ["data packets", metrics.data_packets],
        ["cycle seconds @2Mbps", round(metrics.cycle_seconds(CHANNEL_2MBPS), 3)],
        ["cycle seconds @384Kbps", round(metrics.cycle_seconds(CHANNEL_384KBPS), 3)],
        ["pre-computation seconds", round(metrics.precomputation_seconds, 3)],
    ]
    print(report.format_table(["Quantity", "Value"], rows, title="Broadcast cycle"), file=out)
    return 0


def _command_query(args: argparse.Namespace, out) -> int:
    system = _system(args)
    network = system.network
    scheme = system.scheme(args.method)
    memory_bound = args.memory_bound and scheme.supports_memory_bound
    options = ClientOptions(
        device=J2ME_CLAMSHELL,
        memory_bound=memory_bound,
        loss_rate=args.loss_rate,
        loss_seed=args.seed,
    )
    client = scheme.client(options=options)
    channel = scheme.channel(loss_rate=args.loss_rate, seed=args.seed)

    rng = random.Random(args.seed)
    nodes = network.node_ids()
    rows = []
    for _ in range(max(1, args.queries)):
        source, target = rng.choice(nodes), rng.choice(nodes)
        result = client.query(source, target, channel=channel)
        metrics = result.metrics
        rows.append(
            [
                f"{source}->{target}",
                round(result.distance, 1) if result.found else "unreachable",
                metrics.tuning_time_packets,
                metrics.access_latency_packets,
                round(metrics.peak_memory_bytes / 1024.0, 1),
                round(metrics.cpu_seconds * 1000.0, 1),
                round(metrics.energy_joules(J2ME_CLAMSHELL, CHANNEL_2MBPS), 4),
            ]
        )
    print(
        report.format_table(
            ["Query", "Distance", "Tuning (pkt)", "Latency (pkt)", "Memory (KB)", "CPU (ms)", "Energy (J)"],
            rows,
            title=f"{scheme.short_name} on-air queries ({network.name}, loss={args.loss_rate:g})",
        ),
        file=out,
    )
    return 0


def _command_compare(args: argparse.Namespace, out) -> int:
    system = _system(args)
    network = system.network
    workload = QueryWorkload(network, args.queries, seed=args.seed)
    runs = system.compare(args.methods, workload, loss_rate=args.loss_rate)
    rows = []
    for method in args.methods:
        run = runs[method]
        mean = run.mean
        rows.append(
            [
                method,
                run.server.cycle_packets,
                mean.tuning_time_packets,
                mean.access_latency_packets,
                round(mean.peak_memory_bytes / 1024.0, 1),
                round(mean.cpu_seconds * 1000.0, 1),
                run.mismatches,
            ]
        )
    print(
        report.format_table(
            ["Method", "Cycle (pkt)", "Tuning (pkt)", "Latency (pkt)", "Memory (KB)", "CPU (ms)", "Mismatches"],
            rows,
            title=(
                f"Method comparison on {network.name} "
                f"({len(workload)} queries, loss={args.loss_rate:g})"
            ),
        ),
        file=out,
    )
    return 0


def _command_fleet(args: argparse.Namespace, out) -> int:
    system = _system(args)
    network = system.network
    scenario = FLEET_SCENARIOS[args.scenario]
    devices = scenario(network, args.devices, seed=args.seed, loss_rate=args.loss_rate)
    run = system.simulate_fleet(
        args.method, devices, seed=args.seed, concurrency=args.concurrency
    )
    latency = run.latency_percentiles()
    tuning = run.tuning_percentiles()
    rows = [
        ["network", f"{network.name} ({network.num_nodes} nodes, {network.num_edges} edges)"],
        ["method / cycle packets", f"{run.scheme} / {run.cycle_packets}"],
        ["devices", run.num_devices],
        ["probe sessions", run.probes],
        ["replayed / native", f"{run.replays} / {run.natives}"],
        ["devices per second", round(run.devices_per_second, 1)],
        ["latency p50/p90/p99 (pkt)", "/".join(str(int(latency[q])) for q in (50, 90, 99))],
        ["tuning  p50/p90/p99 (pkt)", "/".join(str(int(tuning[q])) for q in (50, 90, 99))],
        ["latency p99 @2Mbps (s)", round(
            CHANNEL_2MBPS.packets_to_seconds(latency[99]), 3
        )],
        ["mean energy (J)", round(run.mean_energy_joules(J2ME_CLAMSHELL, CHANNEL_2MBPS), 4)],
        ["mean lost packets", round(run.mean("lost_packets"), 2)],
        ["mismatches", run.mismatches],
    ]
    print(
        report.format_table(
            ["Quantity", "Value"],
            rows,
            title=(
                f"Fleet simulation: {args.scenario} x{run.num_devices} on "
                f"{run.scheme} (loss={args.loss_rate:g})"
            ),
        ),
        file=out,
    )
    return 0


def _command_dynamic(args: argparse.Namespace, out) -> int:
    system = _system(args)
    network = system.network
    stream = UPDATE_STREAMS[args.stream](network, steps=args.steps, seed=args.seed)
    run = simulate_update_stream(
        system,
        args.method,
        stream,
        devices_per_step=args.devices,
        scenario=args.scenario,
        seed=args.seed,
        loss_rate=args.loss_rate,
        concurrency=args.concurrency,
    )
    rows = []
    for step in run.steps:
        refresh = step.refresh
        mode = (
            "incremental"
            if refresh.incremental
            else "full" if refresh.rebuilt else "none"
        )
        latency = step.fleet.latency_percentiles((99,))[99]
        rows.append(
            [
                step.batch.step,
                step.batch.label,
                len(step.batch),
                mode,
                round(refresh.seconds * 1000.0, 1),
                step.fleet.cycle_packets,
                int(latency),
                step.fleet.mismatches,
            ]
        )
    print(
        report.format_table(
            [
                "Step",
                "Batch",
                "Updates",
                "Refresh",
                "Refresh (ms)",
                "Cycle (pkt)",
                "Latency p99 (pkt)",
                "Mismatches",
            ],
            rows,
            title=(
                f"Dynamic stream '{run.stream}' x{len(run.steps)} steps on {run.scheme} "
                f"({network.name}, {args.devices} devices/step, loss={args.loss_rate:g})"
            ),
        ),
        file=out,
    )
    summary = [
        ["devices served", run.num_devices],
        ["incremental refreshes / full rebuilds", f"{run.incremental_refreshes} / {run.full_rebuilds}"],
        ["total refresh seconds", round(run.refresh_seconds, 3)],
        ["fingerprint lineage depth", len(system.lineage())],
        ["mismatches vs mutated-network Dijkstra", run.mismatches],
    ]
    print(report.format_table(["Quantity", "Value"], summary, title="Stream summary"), file=out)
    return 0


def _command_store(args: argparse.Namespace, out) -> int:
    from repro.store import ArtifactStore

    store = ArtifactStore(args.dir)
    if args.store_command == "build":
        system = AirSystem.from_config(_config(args), store=store)
        network = system.network
        rows = []
        for method in args.methods:
            hits_before = store.hits
            scheme = system.scheme(method)
            # scheme() already published (or restored) the artifact; read
            # its on-disk size instead of re-encoding the state to measure.
            path = store.object_path(
                method, scheme._artifact_params(), network.fingerprint()
            )
            rows.append(
                [
                    method,
                    scheme.cycle.total_packets,
                    round(path.stat().st_size / 1024.0, 1) if path.exists() else "-",
                    "restored" if store.hits > hits_before else "built",
                ]
            )
        print(
            report.format_table(
                ["Method", "Cycle (pkt)", "Artifact (KB)", "Source"],
                rows,
                title=(
                    f"Store build: {network.name} ({network.num_nodes} nodes) "
                    f"-> {store.root}"
                ),
            ),
            file=out,
        )
        return 0
    if args.store_command == "ls":
        entries = store.entries()
        rows = [
            [
                entry.scheme,
                ", ".join(f"{k}={v}" for k, v in sorted(entry.params.items())) or "-",
                entry.network_fingerprint[:12],
                entry.format_version,
                round(entry.size_bytes / 1024.0, 1),
            ]
            for entry in entries
        ]
        total_kb = round(sum(e.size_bytes for e in entries) / 1024.0, 1)
        print(
            report.format_table(
                ["Scheme", "Parameters", "Network", "Fmt", "Size (KB)"],
                rows,
                title=f"Artifact store {store.root} ({len(entries)} entries, {total_kb} KB)",
            ),
            file=out,
        )
        return 0
    if args.store_command == "prune":
        prefixes = [part.strip() for part in args.fingerprints.split(",") if part.strip()]
        known = {entry.network_fingerprint for entry in store.entries()}
        doomed = {
            fingerprint
            for fingerprint in known
            if any(fingerprint.startswith(prefix) for prefix in prefixes)
        }
        removed = store.prune(doomed)
        rows = [[fingerprint[:12], "pruned"] for fingerprint in sorted(doomed)] or [
            ["-", "no matching artifacts"]
        ]
        print(
            report.format_table(
                ["Network", "Outcome"],
                rows,
                title=f"Store prune: {store.root} ({removed} objects removed)",
            ),
            file=out,
        )
        return 0
    if args.store_command == "stats":
        rows = [[key, value] for key, value in store.stats().items()]
        print(
            report.format_table(
                ["Quantity", "Value"], rows, title=f"Store stats: {store.root}"
            ),
            file=out,
        )
        return 0
    if args.store_command == "verify":
        outcome = store.verify()
        rows = [[key, value] for key, value in outcome.items()]
        if not args.repair:
            print(
                report.format_table(
                    ["Quantity", "Value"], rows, title=f"Store verify: {store.root}"
                ),
                file=out,
            )
            return 1 if outcome["quarantined"] else 0
        # Quarantine-and-rebuild in one pass: sweep writer debris, then let
        # a store-backed system restore-or-rebuild each scheme (intact
        # artifacts are a cheap restore; quarantined/missing ones are built
        # and re-published).  A final verify proves the store is whole.
        rows.append(["staging swept", store.clean_staging()])
        system = AirSystem.from_config(_config(args), store=store)
        for method in args.methods:
            writes_before = store.writes
            system.scheme(method)
            rows.append(
                [
                    f"repair {method}",
                    "rebuilt" if store.writes > writes_before else "intact",
                ]
            )
        after = store.verify()
        rows.append(["post-repair quarantined", after["quarantined"]])
        print(
            report.format_table(
                ["Quantity", "Value"],
                rows,
                title=f"Store verify --repair: {store.root}",
            ),
            file=out,
        )
        return 1 if after["quarantined"] else 0
    outcome = store.gc(max_bytes=args.max_bytes, purge_quarantine=args.purge_quarantine)
    rows = [[key, value] for key, value in outcome.items()]
    print(
        report.format_table(["Quantity", "Value"], rows, title=f"Store gc: {store.root}"),
        file=out,
    )
    return 0


def _serve_config(args: argparse.Namespace):
    from repro.serving import ServeConfig

    return ServeConfig(
        network=args.network,
        scale=args.scale,
        seed=args.seed,
        regions=args.regions,
        landmarks=args.landmarks,
        methods=tuple(args.methods),
        workers=args.workers,
        max_pending=args.max_pending,
        pace_packet_us=args.pace_packet_us,
        routing=args.routing,
        socket_path=args.socket,
        port=args.port,
        host=args.host,
        store_dir=args.store_dir,
    )


def _command_serve(args: argparse.Namespace, out) -> int:
    import asyncio
    import signal

    from repro.serving import AirServer

    server = AirServer(_serve_config(args))

    async def _run() -> int:
        address = await server.start()
        if address[0] == "unix":
            print(f"serving on unix:{address[1]}", file=out, flush=True)
        else:
            print(f"serving on tcp:{address[1]}:{address[2]}", file=out, flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.stop())
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread (tests) or unsupported platform: clients
                # can still stop the daemon with a shutdown request.
                pass
        await server.wait_stopped()
        return 0

    return asyncio.run(_run())


def _bench_address(args: argparse.Namespace):
    if args.port is not None:
        return ("tcp", args.host, args.port)
    if args.socket is None:
        raise SystemExit(f"{args.command} needs --socket or --port")
    return ("unix", args.socket)


def _command_bench_client(args: argparse.Namespace, out) -> int:
    from repro.serving import ServingClient, run_load

    address = _bench_address(args)
    # Sampling query endpoints needs node ids; loading the (scaled) network
    # is cheap and keeps the wire protocol free of bulk id transfers.
    network = datasets.load(args.network, scale=args.scale, seed=args.seed)
    rng = random.Random(args.seed)
    nodes = network.node_ids()
    pairs = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(args.requests)
    ]
    load = run_load(
        address, pairs, method=args.method, concurrency=args.concurrency
    )
    latency = load.latency_ms
    rows = [
        ["requests ok / errors", f"{load.requests} / {load.errors}"],
        ["busy retries", load.busy_retries],
        ["duration (s)", round(load.duration_s, 3)],
        ["throughput (qps)", round(load.qps, 1)],
        ["latency p50/p90/p99 (ms)", "/".join(
            f"{latency.get(key, 0.0):.2f}" for key in ("p50", "p90", "p99")
        )],
        ["workers hit", ", ".join(
            f"{worker}:{count}" for worker, count in sorted(load.workers.items())
        ) or "-"],
    ]
    print(
        report.format_table(
            ["Quantity", "Value"],
            rows,
            title=(
                f"Serving burst: {args.requests} x {args.method} via "
                f"{args.concurrency} connections"
            ),
        ),
        file=out,
    )
    if args.shutdown:
        with ServingClient(address) as client:
            client.shutdown()
    return 0 if load.errors == 0 else 1


def _command_chaos(args: argparse.Namespace, out) -> int:
    from repro.faults import build_scenario
    from repro.faults.chaos import run_chaos

    address = _bench_address(args)
    network = datasets.load(args.network, scale=args.scale, seed=args.seed)
    rng = random.Random(args.seed)
    nodes = network.node_ids()
    # Half the budget is unique pairs, issued twice: duplicates give the
    # self-consistency identity check its teeth (two answers for the same
    # (fingerprint, source, target) must agree bit-for-bit).
    unique = [
        (rng.choice(nodes), rng.choice(nodes))
        for _ in range(max(1, args.requests // 2))
    ]
    pairs = (unique * 2)[: args.requests]
    refreshes = []
    if args.refreshes > 0:
        edges = list(network.edges())
        for index in range(args.refreshes):
            batch = edges[4 * index : 4 * index + 4] or edges[:4]
            refreshes.append(
                [(e.source, e.target, e.weight * (1.5 + 0.1 * index)) for e in batch]
            )
    plan = build_scenario(args.scenario, seed=args.seed)
    chaos_report = run_chaos(
        address,
        plan,
        pairs,
        method=args.method,
        concurrency=args.concurrency,
        deadline_ms=args.deadline_ms,
        refreshes=refreshes,
    )
    mttr = chaos_report.mttr_s
    fired = chaos_report.fault_stats.get("fired") or {}
    rows = [
        ["scenario / seed", f"{args.scenario} / {args.seed}"],
        ["requests ok / total", f"{chaos_report.ok} / {chaos_report.requests}"],
        ["availability (in-deadline)", f"{chaos_report.availability:.4f}"],
        ["deadline misses", chaos_report.deadline_misses],
        ["reconnects", chaos_report.reconnects],
        ["stale responses", chaos_report.stale_responses],
        ["identity violations", chaos_report.identity_violations],
        ["errors", ", ".join(
            f"{kind}:{count}" for kind, count in sorted(chaos_report.errors.items())
        ) or "-"],
        ["faults fired", ", ".join(
            f"{point}:{count}" for point, count in sorted(fired.items())
        ) or "-"],
        ["worker respawns / MTTR (s)", f"{chaos_report.respawns} / "
         + (f"{mttr:.3f}" if mttr is not None else "-")],
        ["refreshes (degraded)", f"{len(chaos_report.refreshes)} "
         f"({sum(1 for r in chaos_report.refreshes if r.get('degraded'))})"],
        ["duration (s)", round(chaos_report.duration_s, 3)],
    ]
    print(
        report.format_table(
            ["Quantity", "Value"],
            rows,
            title=(
                f"Chaos run: {args.requests} x {args.method} under "
                f"'{args.scenario}' via {args.concurrency} connections"
            ),
        ),
        file=out,
    )
    if chaos_report.identity_violations:
        print(
            f"FAIL: {chaos_report.identity_violations} bit-identity violations",
            file=out,
        )
        return 1
    if (
        args.min_availability is not None
        and chaos_report.availability < args.min_availability
    ):
        print(
            f"FAIL: availability {chaos_report.availability:.4f} < "
            f"{args.min_availability:.4f}",
            file=out,
        )
        return 1
    return 0


def _command_ingest(args: argparse.Namespace, out) -> int:
    import time

    from repro.network.ingest import (
        IngestError,
        import_csv,
        import_dimacs,
        open_table,
    )
    from repro.network.ingest.columnar import DEFAULT_CHUNK_ROWS

    input_format = args.input_format
    if input_format is None:
        input_format = "dimacs" if args.edges.endswith((".gr", ".gr.gz")) else "csv"
    chunk_rows = args.chunk_rows or DEFAULT_CHUNK_ROWS
    started = time.perf_counter()
    try:
        if input_format == "dimacs":
            table = import_dimacs(
                args.edges,
                args.out,
                co_path=args.nodes,
                name=args.name,
                chunk_rows=chunk_rows,
                use_parquet=args.parquet,
            )
        else:
            table = import_csv(
                args.edges,
                args.out,
                nodes_path=args.nodes,
                name=args.name,
                delimiter=args.delimiter,
                chunk_rows=chunk_rows,
                use_parquet=args.parquet,
            )
    except IngestError as exc:
        print(f"ingest error: {exc}", file=out)
        return 1
    import_seconds = time.perf_counter() - started
    stats = table.stats()
    rows = [
        ["table", str(table.directory)],
        ["format", f"{input_format} -> {stats['chunk_format']} chunks"],
        ["nodes / edges", f"{stats['num_nodes']} / {stats['num_edges']}"],
        ["chunks (node/edge)", f"{stats['node_chunks']} / {stats['edge_chunks']}"],
        ["on-disk KB", round(table.total_bytes() / 1024.0, 1)],
        ["fingerprint", stats["fingerprint"][:16]],
        ["import seconds", round(import_seconds, 3)],
        [
            "import rate",
            f"{(stats['num_nodes'] + stats['num_edges']) / max(import_seconds, 1e-9):,.0f} rows/s",
        ],
    ]
    if args.build:
        from repro.network.algorithms import kernel
        from repro.network.ingest import ColumnarNetwork

        started = time.perf_counter()
        network = ColumnarNetwork.from_table(open_table(args.out))
        build_seconds = time.perf_counter() - started
        rows.append(["CSR build seconds (dict-free)", round(build_seconds, 3)])
        ids = network.node_ids()
        if ids:
            rng = random.Random(args.seed)
            source, target = rng.choice(ids), rng.choice(ids)
            arena = kernel.arena_for(network.csr_snapshot())
            distance = arena.point_to_point(source, target).distance_to(target)
            shown = round(distance, 3) if distance != float("inf") else "unreachable"
            rows.append([f"sanity query {source}->{target}", shown])
    print(
        report.format_table(
            ["Quantity", "Value"],
            rows,
            title=f"Columnar ingest: {args.edges}",
        ),
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "schemes": _command_schemes,
        "cycle": _command_cycle,
        "query": _command_query,
        "compare": _command_compare,
        "fleet": _command_fleet,
        "dynamic": _command_dynamic,
        "store": _command_store,
        "serve": _command_serve,
        "bench-client": _command_bench_client,
        "chaos": _command_chaos,
        "ingest": _command_ingest,
    }
    return handlers[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
