"""Fleet simulation over a time-varying network.

:func:`simulate_update_stream` interleaves an
:class:`~repro.dynamic.streams.UpdateStream` with device waves: at every
step the batch's weight updates are applied to the network, the engine's
versioned cycle cache is refreshed (incrementally where the scheme supports
it), and a fresh wave of devices tunes into the refreshed broadcast.  Every
wave's ground truth is computed on the *mutated* network, so the run's
mismatch count directly certifies that refreshed cycles answer for the
network as it is now -- not as it was when the cache was built.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.air.base import ClientOptions
from repro.dynamic.streams import UpdateBatch, UpdateStream
from repro.engine.results import RefreshReport
from repro.experiments.workloads import FLEET_SCENARIOS
from repro.fleet.results import FleetRun

__all__ = ["StepOutcome", "DynamicFleetRun", "simulate_update_stream"]


@dataclass(frozen=True)
class StepOutcome:
    """One stream step: the applied batch, its refresh, and the device wave."""

    batch: UpdateBatch
    refresh: RefreshReport
    fleet: FleetRun


@dataclass
class DynamicFleetRun:
    """Aggregated outcome of one scheme over one update stream."""

    scheme: str
    stream: str
    steps: List[StepOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def num_devices(self) -> int:
        return sum(step.fleet.num_devices for step in self.steps)

    @property
    def mismatches(self) -> int:
        """Devices whose answer disagreed with Dijkstra on the mutated network."""
        return sum(step.fleet.mismatches for step in self.steps)

    @property
    def incremental_refreshes(self) -> int:
        return sum(len(step.refresh.incremental) for step in self.steps)

    @property
    def full_rebuilds(self) -> int:
        return sum(len(step.refresh.rebuilt) for step in self.steps)

    @property
    def refresh_seconds(self) -> float:
        """Total server time spent bringing cycles up to date."""
        return sum(step.refresh.seconds for step in self.steps)

    def signature(self) -> Tuple[Tuple, ...]:
        """Per-step fleet signatures (the determinism contract's currency)."""
        return tuple(step.fleet.signature() for step in self.steps)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"DynamicFleetRun(scheme={self.scheme!r}, stream={self.stream!r}, "
            f"steps={len(self.steps)}, devices={self.num_devices}, "
            f"incremental={self.incremental_refreshes}, full={self.full_rebuilds}, "
            f"mismatches={self.mismatches})"
        )


def simulate_update_stream(
    system: Any,
    name: str,
    stream: UpdateStream,
    *,
    devices_per_step: int = 50,
    scenario: Any = "trickle",
    seed: int = 0,
    loss_rate: float = 0.0,
    options: Optional[ClientOptions] = None,
    concurrency: int = 1,
    **params: Any,
) -> DynamicFleetRun:
    """Run an update stream against one scheme with a device wave per step.

    Parameters
    ----------
    system:
        The :class:`~repro.engine.system.AirSystem` owning the network; its
        network is mutated in place, batch by batch.
    name:
        Scheme name (any registry alias).
    stream:
        The update stream; each batch is applied before its device wave.
    devices_per_step:
        Devices tuning in per step.
    scenario:
        A fleet scenario -- a name from
        :data:`~repro.experiments.workloads.FLEET_SCENARIOS` or a callable
        with the same signature.  Ground truth is always enabled so the run
        counts mismatches against the mutated network.
    seed:
        Base seed; each step derives its own device-wave seed.
    """
    generator: Callable = (
        FLEET_SCENARIOS[scenario] if isinstance(scenario, str) else scenario
    )
    started = time.perf_counter()
    scheme = system.scheme(name, **params)  # warm build before the stream
    run = DynamicFleetRun(scheme=scheme.short_name, stream=stream.name)
    for batch in stream:
        report = system.apply_updates(batch.updates)
        devices = generator(
            system.network,
            devices_per_step,
            seed=seed + 1009 * (batch.step + 1),
            loss_rate=loss_rate,
            with_ground_truth=True,
        )
        fleet = system.simulate_fleet(
            name,
            devices,
            options,
            seed=seed + batch.step,
            concurrency=concurrency,
            **params,
        )
        run.steps.append(StepOutcome(batch=batch, refresh=report, fleet=fleet))
    run.wall_seconds = time.perf_counter() - started
    return run
