"""Edge-weight update stream generators for time-varying networks.

The paper's evaluation holds the road network fixed; a production broadcast
server does not get that luxury.  An :class:`UpdateStream` is a finite,
deterministic sequence of :class:`UpdateBatch` es -- each the set of edge
weights that change "between device tune-ins" -- feeding
:func:`repro.dynamic.simulate.simulate_update_stream` and the CLI's
``dynamic`` sub-command.  Two built-in shapes:

* :func:`congestion_ramp` -- a rush hour: a fixed pool of "hot" edges whose
  travel costs ramp up to a peak factor mid-stream and ease back down.
  Because every step touches the *same* edges, later steps tend to affect
  fewer shortest path trees -- the workload incremental maintenance is
  built for.
* :func:`random_closures` -- incidents: every step soft-closes a few random
  edges (multiplies their cost by a large factor; the edge stays in the
  graph, so the change remains weight-only and incrementally maintainable)
  and reopens earlier closures after a fixed number of steps.

Updates carry *absolute* target weights derived from the base weights at
stream construction, so replaying a stream over a fresh copy of the network
is deterministic and idempotent per step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.network.delta import EdgeUpdate
from repro.network.graph import RoadNetwork

__all__ = [
    "UpdateBatch",
    "UpdateStream",
    "UPDATE_STREAMS",
    "congestion_ramp",
    "random_closures",
]


@dataclass(frozen=True)
class UpdateBatch:
    """One step of an update stream: the weights that change together."""

    step: int
    label: str
    updates: Tuple[EdgeUpdate, ...]

    def __len__(self) -> int:
        return len(self.updates)


@dataclass(frozen=True)
class UpdateStream:
    """A named, deterministic sequence of update batches."""

    name: str
    batches: Tuple[UpdateBatch, ...]

    def __iter__(self):
        return iter(self.batches)

    def __len__(self) -> int:
        return len(self.batches)

    @property
    def num_updates(self) -> int:
        """Total edge updates across every batch."""
        return sum(len(batch) for batch in self.batches)


def _distinct_edges(network: RoadNetwork, rng: random.Random) -> List[Tuple[int, int, float]]:
    """Uniquely addressable directed edges with their base weights.

    ``(source, target)`` pairs with parallel duplicates are excluded
    entirely: ``update_edge_weight`` always targets the *currently* minimal
    parallel edge, so a stream of absolute target weights cannot address one
    specific physical edge across batches -- a congest/restore cycle would
    land on alternating edges and drift away from the base weights.
    """
    counts: Dict[Tuple[int, int], int] = {}
    weights: Dict[Tuple[int, int], float] = {}
    for edge in network.edges():
        key = (edge.source, edge.target)
        counts[key] = counts.get(key, 0) + 1
        weights[key] = edge.weight
    items = [
        (source, target, weight)
        for (source, target), weight in weights.items()
        if counts[(source, target)] == 1
    ]
    rng.shuffle(items)
    return items


def congestion_ramp(
    network: RoadNetwork,
    *,
    steps: int = 6,
    seed: int = 0,
    hot_fraction: float = 0.05,
    peak_factor: float = 4.0,
) -> UpdateStream:
    """A rush-hour ramp: hot edges slow down toward mid-stream, then recover.

    ``hot_fraction`` of the network's edges (at least one) form the hot
    pool; at step ``k`` their weight is ``base * factor(k)`` where the
    factor rises linearly from 1 to ``peak_factor`` at the middle step and
    falls back toward 1 -- a triangular congestion profile.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if peak_factor <= 0:
        raise ValueError(f"peak_factor must be positive, got {peak_factor}")
    rng = random.Random(seed)
    edges = _distinct_edges(network, rng)
    if not edges:
        raise ValueError(
            f"network {network.name!r} has no uniquely addressable edges to congest"
        )
    pool = edges[: max(1, int(len(edges) * hot_fraction))]

    batches: List[UpdateBatch] = []
    for step in range(steps):
        # A single-step stream is all peak (phase 0.5), not a no-op.
        phase = step / (steps - 1) if steps > 1 else 0.5
        factor = 1.0 + (peak_factor - 1.0) * (1.0 - abs(2.0 * phase - 1.0))
        updates = tuple(
            EdgeUpdate(source, target, weight * factor)
            for source, target, weight in pool
        )
        batches.append(
            UpdateBatch(step=step, label=f"congestion x{factor:.2f}", updates=updates)
        )
    return UpdateStream(name="congestion", batches=tuple(batches))


def random_closures(
    network: RoadNetwork,
    *,
    steps: int = 6,
    seed: int = 0,
    closures_per_step: int = 2,
    closure_factor: float = 25.0,
    reopen_after: int = 2,
) -> UpdateStream:
    """Random incidents: soft-close a few edges per step, reopen them later.

    A closure multiplies the edge's cost by ``closure_factor`` (the edge
    stays in the graph, so connectivity -- and the weight-only incremental
    path -- is preserved); after ``reopen_after`` further steps the base
    weight is restored.  An edge is never closed twice concurrently.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    if closure_factor <= 1.0:
        raise ValueError(f"closure_factor must exceed 1, got {closure_factor}")
    rng = random.Random(seed)
    open_edges = _distinct_edges(network, rng)
    closed: List[Tuple[int, Tuple[int, int, float]]] = []

    batches: List[UpdateBatch] = []
    for step in range(steps):
        updates: List[EdgeUpdate] = []
        reopened = 0
        while closed and closed[0][0] + reopen_after <= step:
            _, (source, target, weight) = closed.pop(0)
            updates.append(EdgeUpdate(source, target, weight))
            open_edges.append((source, target, weight))
            reopened += 1
        closing = 0
        for _ in range(min(closures_per_step, len(open_edges))):
            index = rng.randrange(len(open_edges))
            source, target, weight = open_edges.pop(index)
            updates.append(EdgeUpdate(source, target, weight * closure_factor))
            closed.append((step, (source, target, weight)))
            closing += 1
        batches.append(
            UpdateBatch(
                step=step,
                label=f"close {closing} / reopen {reopened}",
                updates=tuple(updates),
            )
        )
    return UpdateStream(name="closures", batches=tuple(batches))


#: Stream name -> generator, for the CLI's ``dynamic --stream`` choices.
UPDATE_STREAMS: Dict[str, Callable[..., UpdateStream]] = {
    "congestion": congestion_ramp,
    "closures": random_closures,
}
