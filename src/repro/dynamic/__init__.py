"""Dynamic networks: edge-weight update streams and incremental maintenance.

The static-network reproduction assumes the broadcast cycle is built once;
this package supplies the time-varying side the ROADMAP's production story
needs:

* update-stream scenario generators (:func:`congestion_ramp`,
  :func:`random_closures`) producing deterministic
  :class:`UpdateStream` s of :class:`~repro.network.delta.EdgeUpdate` es,
* :func:`simulate_update_stream`, which interleaves stream batches with
  device waves through an :class:`~repro.engine.system.AirSystem` so that
  weights change between tune-ins, with every wave checked against Dijkstra
  on the mutated network.

The incremental rebuilds themselves live with their schemes
(:meth:`repro.air.base.AirIndexScheme.incremental_rebuild`) and the
versioned cycle cache with the engine
(:meth:`repro.engine.system.AirSystem.refresh`).
"""

from repro.dynamic.simulate import DynamicFleetRun, StepOutcome, simulate_update_stream
from repro.dynamic.streams import (
    UPDATE_STREAMS,
    UpdateBatch,
    UpdateStream,
    congestion_ramp,
    random_closures,
)
from repro.network.delta import EdgeUpdate, NetworkDelta, WeightChange

__all__ = [
    "DynamicFleetRun",
    "EdgeUpdate",
    "NetworkDelta",
    "StepOutcome",
    "UPDATE_STREAMS",
    "UpdateBatch",
    "UpdateStream",
    "WeightChange",
    "congestion_ramp",
    "random_closures",
    "simulate_update_stream",
]
