"""Hilbert space-filling curve used by HCI and DSI (paper Appendix A).

The standard iterative rotate-and-flip mapping between 2-D grid cells and
positions along a Hilbert curve of a given order.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["hilbert_index", "hilbert_point", "hilbert_order_for", "point_to_hilbert"]


def hilbert_index(order: int, x: int, y: int) -> int:
    """Distance along the order-``order`` Hilbert curve of grid cell (x, y)."""
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside a {side}x{side} grid")
    rx = ry = 0
    distance = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        distance += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return distance


def hilbert_point(order: int, distance: int) -> Tuple[int, int]:
    """Grid cell (x, y) at position ``distance`` along the order-``order`` curve."""
    side = 1 << order
    if not 0 <= distance < side * side:
        raise ValueError(f"distance {distance} outside the order-{order} curve")
    x = y = 0
    t = distance
    s = 1
    while s < side:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        x, y = _rotate(s, x, y, rx, ry)
        x += s * rx
        y += s * ry
        t //= 4
        s *= 2
    return x, y


def _rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip the quadrant as required by the Hilbert construction."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def hilbert_order_for(num_objects: int) -> int:
    """A curve order fine enough that objects rarely share a cell."""
    order = 1
    while (1 << order) * (1 << order) < 4 * max(1, num_objects):
        order += 1
    return min(order, 16)


def point_to_hilbert(
    x: float,
    y: float,
    bounds: Tuple[float, float, float, float],
    order: int,
) -> int:
    """Map a continuous point to its Hilbert value within ``bounds``."""
    min_x, min_y, max_x, max_y = bounds
    side = 1 << order
    width = (max_x - min_x) or 1.0
    height = (max_y - min_y) or 1.0
    cell_x = min(side - 1, max(0, int((x - min_x) / width * side)))
    cell_y = min(side - 1, max(0, int((y - min_y) / height * side)))
    return hilbert_index(order, cell_x, cell_y)
