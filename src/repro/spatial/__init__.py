"""Euclidean spatial air indexes (paper Appendix A).

These are the prior-art air indexes for *point* data in Euclidean space --
the Hilbert curve index (HCI), the distributed spatial index (DSI), and the
broadcast grid index (BGI).  None of them applies to road networks (which is
the gap the paper fills), but they share the broadcast substrate and are
implemented here both as documented related work and because the examples use
them for on-air points-of-interest retrieval.
"""

from repro.spatial.points import PointObject, generate_points
from repro.spatial.hilbert import hilbert_index, hilbert_order_for
from repro.spatial.hci import HilbertCurveIndexScheme
from repro.spatial.dsi import DistributedSpatialIndexScheme
from repro.spatial.bgi import BroadcastGridIndexScheme

__all__ = [
    "BroadcastGridIndexScheme",
    "DistributedSpatialIndexScheme",
    "HilbertCurveIndexScheme",
    "PointObject",
    "generate_points",
    "hilbert_index",
    "hilbert_order_for",
]
