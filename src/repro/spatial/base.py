"""Shared plumbing for the Appendix A spatial air indexes.

The spatial schemes reuse the broadcast substrate (segments, cycles, client
sessions) of :mod:`repro.broadcast`.  Queries are *range* (all objects inside
an axis-aligned window) and *k nearest neighbors* of a query location; their
results carry the same tuning time / access latency / memory metrics as the
shortest path schemes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.broadcast.channel import BroadcastChannel, ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.metrics import ClientMetrics, MemoryTracker
from repro.spatial.points import PointObject, bounding_box

__all__ = ["SpatialQueryResult", "SpatialAirScheme", "POINT_RECORD_BYTES"]

#: Bytes of one broadcast point record: identifier plus two coordinates.
POINT_RECORD_BYTES = 12

#: An axis-aligned query window ``(min_x, min_y, max_x, max_y)``.
Window = Tuple[float, float, float, float]


@dataclass
class SpatialQueryResult:
    """Result of an on-air spatial query."""

    object_ids: List[int] = field(default_factory=list)
    metrics: ClientMetrics = field(default_factory=ClientMetrics)

    def __len__(self) -> int:
        return len(self.object_ids)


class SpatialAirScheme(abc.ABC):
    """Base class: holds the point set and the broadcast bookkeeping."""

    short_name = "?"

    def __init__(self, points: Sequence[PointObject]) -> None:
        if not points:
            raise ValueError("spatial schemes need at least one data object")
        self.points: List[PointObject] = list(points)
        self.bounds = bounding_box(self.points)
        self._cycle: Optional[BroadcastCycle] = None

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_cycle(self) -> BroadcastCycle:
        """Lay out the broadcast cycle."""

    @property
    def cycle(self) -> BroadcastCycle:
        """The broadcast cycle, building it on first access."""
        if self._cycle is None:
            self._cycle = self.build_cycle()
        return self._cycle

    def channel(self, loss_rate: float = 0.0, seed: int = 0) -> BroadcastChannel:
        """A broadcast channel carrying this scheme's cycle."""
        return BroadcastChannel(self.cycle, loss_rate=loss_rate, seed=seed)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def range_query_on_session(
        self, window: Window, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        """Scheme-specific range query protocol."""

    @abc.abstractmethod
    def knn_query_on_session(
        self, x: float, y: float, k: int, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        """Scheme-specific kNN query protocol."""

    def range_query(
        self,
        window: Window,
        channel: Optional[BroadcastChannel] = None,
        tune_in_offset: Optional[int] = None,
    ) -> SpatialQueryResult:
        """Run a range query end to end, filling in client metrics."""
        session, memory = self._open(channel, tune_in_offset)
        ids = self.range_query_on_session(window, session, memory)
        return self._finish(sorted(ids), session, memory)

    def knn_query(
        self,
        x: float,
        y: float,
        k: int,
        channel: Optional[BroadcastChannel] = None,
        tune_in_offset: Optional[int] = None,
    ) -> SpatialQueryResult:
        """Run a k-nearest-neighbor query end to end."""
        if k < 1:
            raise ValueError("k must be at least 1")
        session, memory = self._open(channel, tune_in_offset)
        ids = self.knn_query_on_session(x, y, k, session, memory)
        return self._finish(ids, session, memory)

    # ------------------------------------------------------------------
    # Ground truth (used by tests and the examples)
    # ------------------------------------------------------------------
    def true_range(self, window: Window) -> List[int]:
        """Exact range query result, computed directly over the point set."""
        min_x, min_y, max_x, max_y = window
        return sorted(
            p.object_id
            for p in self.points
            if min_x <= p.x <= max_x and min_y <= p.y <= max_y
        )

    def true_knn(self, x: float, y: float, k: int) -> List[int]:
        """Exact kNN result (ties broken by object id)."""
        ranked = sorted(self.points, key=lambda p: (p.distance_to(x, y), p.object_id))
        return [p.object_id for p in ranked[:k]]

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _open(self, channel, tune_in_offset):
        if channel is None:
            channel = self.channel()
        return channel.session(tune_in_offset), MemoryTracker()

    @staticmethod
    def _finish(
        ids: List[int], session: ClientSession, memory: MemoryTracker
    ) -> SpatialQueryResult:
        result = SpatialQueryResult(object_ids=ids)
        result.metrics.tuning_time_packets = session.tuning_packets
        result.metrics.access_latency_packets = session.elapsed_packets
        result.metrics.peak_memory_bytes = memory.peak_bytes
        result.metrics.lost_packets = session.lost_packets
        return result
