"""Point objects for the Euclidean spatial air indexes."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["PointObject", "generate_points", "bounding_box"]


@dataclass(frozen=True)
class PointObject:
    """A data object with an identifier and Euclidean coordinates."""

    object_id: int
    x: float
    y: float

    def distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from this object to point ``(x, y)``."""
        return ((self.x - x) ** 2 + (self.y - y) ** 2) ** 0.5


def generate_points(
    count: int,
    extent: float = 10_000.0,
    seed: int = 0,
    clusters: int = 0,
) -> List[PointObject]:
    """Generate ``count`` points, uniformly or around ``clusters`` hot spots.

    Clustered generation mimics points of interest concentrating in city
    centres, the workload the examples use.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    points: List[PointObject] = []
    if clusters <= 0:
        for object_id in range(count):
            points.append(PointObject(object_id, rng.uniform(0, extent), rng.uniform(0, extent)))
        return points
    centres = [(rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(clusters)]
    spread = extent / (4 * clusters)
    for object_id in range(count):
        cx, cy = centres[object_id % clusters]
        x = min(extent, max(0.0, rng.gauss(cx, spread)))
        y = min(extent, max(0.0, rng.gauss(cy, spread)))
        points.append(PointObject(object_id, x, y))
    return points


def bounding_box(points: Sequence[PointObject]) -> Tuple[float, float, float, float]:
    """``(min_x, min_y, max_x, max_y)`` over a point collection."""
    if not points:
        raise ValueError("bounding box of an empty point set is undefined")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (min(xs), min(ys), max(xs), max(ys))
