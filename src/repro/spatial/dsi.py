"""Distributed Spatial Index (DSI) air index (paper Appendix A, [Zheng et al. 2009]).

The objects are sorted by Hilbert value and placed into equi-sized *frames*.
Every frame starts with a small index that points to the frames ``2**i``
positions ahead (i = 0, 1, 2, ...) together with the minimum Hilbert value
found in each of them, so a client can reach any value with a logarithmic
number of hops instead of waiting for a global index -- lower access latency
than HCI at the price of some extra tuning.

Query processing mirrors HCI once the relevant frames are located.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind
from repro.spatial.base import POINT_RECORD_BYTES, SpatialAirScheme, Window
from repro.spatial.hilbert import hilbert_order_for, point_to_hilbert
from repro.spatial.points import PointObject

__all__ = ["DistributedSpatialIndexScheme"]

#: Bytes of one exponential-pointer entry: a frame offset plus a Hilbert value.
POINTER_ENTRY_BYTES = 8


class DistributedSpatialIndexScheme(SpatialAirScheme):
    """Hilbert-ordered frames, each carrying an exponential pointer table."""

    short_name = "DSI"

    def __init__(
        self,
        points: Sequence[PointObject],
        num_frames: int = 32,
        order: int = 0,
    ) -> None:
        super().__init__(points)
        self.order = order or hilbert_order_for(len(self.points))
        self.num_frames = max(1, min(num_frames, len(self.points)))
        self._hilbert: Dict[int, int] = {
            p.object_id: point_to_hilbert(p.x, p.y, self.bounds, self.order)
            for p in self.points
        }
        ordered = sorted(self.points, key=lambda p: self._hilbert[p.object_id])
        per_frame = max(1, -(-len(ordered) // self.num_frames))
        #: (min_hilbert, max_hilbert, points) per frame, in curve order.
        self.frames: List[Tuple[int, int, List[PointObject]]] = []
        for start in range(0, len(ordered), per_frame):
            chunk = ordered[start : start + per_frame]
            values = [self._hilbert[p.object_id] for p in chunk]
            self.frames.append((min(values), max(values), chunk))
        self.num_frames = len(self.frames)

    # ------------------------------------------------------------------
    # Cycle construction
    # ------------------------------------------------------------------
    def build_cycle(self) -> BroadcastCycle:
        segments: List[Segment] = []
        pointer_count = max(1, self.num_frames.bit_length())
        for index, (low, high, chunk) in enumerate(self.frames):
            segments.append(
                Segment(
                    name=f"dsi-index-{index}",
                    kind=SegmentKind.LOCAL_INDEX,
                    size_bytes=pointer_count * POINTER_ENTRY_BYTES,
                    payload={"frame": index},
                )
            )
            segments.append(
                Segment(
                    name=f"dsi-data-{index}",
                    kind=SegmentKind.NETWORK_DATA,
                    size_bytes=len(chunk) * POINT_RECORD_BYTES,
                    payload={"points": chunk, "min_hilbert": low, "max_hilbert": high},
                )
            )
        return BroadcastCycle(segments, name="DSI-cycle")

    def pointer_targets(self, frame: int) -> List[int]:
        """Frames reachable from ``frame``'s index: 1, 2, 4, ... positions ahead."""
        targets = []
        step = 1
        while step < max(self.num_frames, 2):
            targets.append((frame + step) % self.num_frames)
            step *= 2
        return targets or [frame]

    # ------------------------------------------------------------------
    # Query protocols
    # ------------------------------------------------------------------
    def range_query_on_session(
        self, window: Window, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        low, high = self._window_hilbert_range(window)
        needed = [
            index
            for index, (frame_low, frame_high, _) in enumerate(self.frames)
            if not (frame_high < low or frame_low > high)
        ]
        collected = self._collect_frames(session, memory, needed)
        min_x, min_y, max_x, max_y = window
        return [
            p.object_id
            for p in collected
            if min_x <= p.x <= max_x and min_y <= p.y <= max_y
        ]

    def knn_query_on_session(
        self, x: float, y: float, k: int, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        centre = point_to_hilbert(x, y, self.bounds, self.order)
        order_by_gap = sorted(
            range(self.num_frames), key=lambda i: self._hilbert_gap(i, centre)
        )
        candidate_frames: List[int] = []
        count = 0
        for index in order_by_gap:
            candidate_frames.append(index)
            count += len(self.frames[index][2])
            if count >= k:
                break
        candidates = self._collect_frames(session, memory, candidate_frames)
        candidates.sort(key=lambda p: (p.distance_to(x, y), p.object_id))
        if not candidates:
            return []
        radius = candidates[: k][-1].distance_to(x, y)
        window = (x - radius, y - radius, x + radius, y + radius)
        low, high = self._window_hilbert_range(window)
        remaining = [
            index
            for index, (frame_low, frame_high, _) in enumerate(self.frames)
            if index not in set(candidate_frames)
            and not (frame_high < low or frame_low > high)
        ]
        pool = {p.object_id: p for p in candidates}
        for p in self._collect_frames(session, memory, remaining):
            pool[p.object_id] = p
        ranked = sorted(pool.values(), key=lambda p: (p.distance_to(x, y), p.object_id))
        return [p.object_id for p in ranked[:k]]

    # ------------------------------------------------------------------
    # Frame navigation
    # ------------------------------------------------------------------
    def _collect_frames(
        self, session: ClientSession, memory: MemoryTracker, needed: List[int]
    ) -> List[PointObject]:
        """Navigate via the exponential pointers and receive the needed frames."""
        if not needed:
            return []
        needed_set: Set[int] = set(needed)
        collected: List[PointObject] = []
        cycle = session.cycle

        # Start by reading the index of whatever frame is next on the air.
        segment, _ = cycle.next_segment_of_kind(SegmentKind.LOCAL_INDEX, session.position)
        session.receive_segment(segment.name)
        memory.allocate(segment.size_bytes)
        current = segment.payload["frame"]

        visited_indexes = 0
        while needed_set and visited_indexes <= 4 * self.num_frames:
            visited_indexes += 1
            if current in needed_set:
                collected.extend(self._receive_frame(session, memory, current))
                needed_set.discard(current)
                if not needed_set:
                    break
                # The index adjacent to the data we just received is next on
                # the air; read it to continue hopping.
                next_index = (current + 1) % self.num_frames
                self._receive_index(session, memory, next_index)
                current = next_index
                continue
            # Hop as far forward as possible without overshooting a needed
            # frame (the DSI exponential jump).
            targets = self.pointer_targets(current)
            best = targets[0]
            for target in targets:
                if self._cyclic_reaches(current, target, needed_set):
                    best = target
            if best in needed_set or self._distance(current, best) <= self._nearest_needed_distance(current, needed_set):
                current = best
            else:
                current = (current + 1) % self.num_frames
            self._receive_index(session, memory, current)
        return collected

    def _receive_index(self, session: ClientSession, memory: MemoryTracker, index: int) -> None:
        name = f"dsi-index-{index}"
        reception = session.receive_segment(name)
        attempts = 0
        while reception.lost_offsets and attempts < 50:
            attempts += 1
            reception = session.receive_segment_packets(name, reception.lost_offsets)
        memory.allocate(session.cycle.segment(name).size_bytes)

    def _receive_frame(
        self, session: ClientSession, memory: MemoryTracker, index: int
    ) -> List[PointObject]:
        name = f"dsi-data-{index}"
        reception = session.receive_segment(name)
        attempts = 0
        while reception.lost_offsets and attempts < 50:
            attempts += 1
            reception = session.receive_segment_packets(name, reception.lost_offsets)
        segment = session.cycle.segment(name)
        memory.allocate(segment.size_bytes)
        return segment.payload["points"]

    # ------------------------------------------------------------------
    # Small arithmetic helpers
    # ------------------------------------------------------------------
    def _distance(self, start: int, end: int) -> int:
        return (end - start) % self.num_frames

    def _nearest_needed_distance(self, current: int, needed: Set[int]) -> int:
        return min(self._distance(current, index) for index in needed)

    def _cyclic_reaches(self, current: int, target: int, needed: Set[int]) -> bool:
        """Does hopping to ``target`` stay at or before the nearest needed frame?"""
        return self._distance(current, target) <= self._nearest_needed_distance(current, needed)

    def _hilbert_gap(self, frame_index: int, value: int) -> int:
        low, high, _ = self.frames[frame_index]
        if low <= value <= high:
            return 0
        return min(abs(value - low), abs(value - high))

    def _window_hilbert_range(self, window: Window) -> Tuple[int, int]:
        from repro.spatial.hilbert import hilbert_index

        min_x, min_y, max_x, max_y = window
        bounds_min_x, bounds_min_y, bounds_max_x, bounds_max_y = self.bounds
        side = 1 << self.order
        width = (bounds_max_x - bounds_min_x) or 1.0
        height = (bounds_max_y - bounds_min_y) or 1.0

        def cell_of(value: float, low: float, extent: float) -> int:
            return min(side - 1, max(0, int((value - low) / extent * side)))

        first_col = cell_of(min_x, bounds_min_x, width)
        last_col = cell_of(max_x, bounds_min_x, width)
        first_row = cell_of(min_y, bounds_min_y, height)
        last_row = cell_of(max_y, bounds_min_y, height)
        low = high = None
        for col in range(first_col, last_col + 1):
            for row in range(first_row, last_row + 1):
                value = hilbert_index(self.order, col, row)
                low = value if low is None else min(low, value)
                high = value if high is None else max(high, value)
        return (low or 0, high if high is not None else (side * side - 1))
