"""Broadcast Grid Index (BGI) air index (paper Appendix A, [Mouratidis et al. 2009]).

The objects are partitioned by a regular grid; the index stores, per cell,
the number of contained objects.  Following the (1, m) scheme, the index
precedes each of ``m`` data segments.  A kNN client first receives the index,
derives an upper bound ``dmax`` on the kth-neighbor distance from the cell
counts, and then receives only the cells within ``dmax`` of its location.
Range queries simply receive the cells intersecting the window.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.interleave import interleave_one_m, optimal_m
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind, packets_for_bytes
from repro.spatial.base import POINT_RECORD_BYTES, SpatialAirScheme, Window
from repro.spatial.points import PointObject

__all__ = ["BroadcastGridIndexScheme"]

#: Bytes of one index entry: cell identifier plus object count.
CELL_ENTRY_BYTES = 8


class BroadcastGridIndexScheme(SpatialAirScheme):
    """Regular-grid partitioned points with a per-cell count index."""

    short_name = "BGI"

    def __init__(self, points: Sequence[PointObject], rows: int = 8, cols: int = 8) -> None:
        super().__init__(points)
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one row and one column")
        self.rows = rows
        self.cols = cols
        min_x, min_y, max_x, max_y = self.bounds
        self.cell_width = (max_x - min_x) / cols or 1.0
        self.cell_height = (max_y - min_y) / rows or 1.0
        self.cells: Dict[int, List[PointObject]] = {i: [] for i in range(rows * cols)}
        for point in self.points:
            self.cells[self.cell_of(point.x, point.y)].append(point)

    # ------------------------------------------------------------------
    # Grid geometry
    # ------------------------------------------------------------------
    def cell_of(self, x: float, y: float) -> int:
        """Grid cell containing point ``(x, y)`` (clamped to the extent)."""
        min_x, min_y, _, _ = self.bounds
        col = min(self.cols - 1, max(0, int((x - min_x) / self.cell_width)))
        row = min(self.rows - 1, max(0, int((y - min_y) / self.cell_height)))
        return row * self.cols + col

    def cell_bounds(self, cell: int) -> Tuple[float, float, float, float]:
        """Bounding box of ``cell``."""
        row, col = divmod(cell, self.cols)
        min_x, min_y, _, _ = self.bounds
        x0 = min_x + col * self.cell_width
        y0 = min_y + row * self.cell_height
        return (x0, y0, x0 + self.cell_width, y0 + self.cell_height)

    def min_distance_to_cell(self, x: float, y: float, cell: int) -> float:
        """Smallest Euclidean distance from ``(x, y)`` to the cell rectangle."""
        x0, y0, x1, y1 = self.cell_bounds(cell)
        dx = max(x0 - x, 0.0, x - x1)
        dy = max(y0 - y, 0.0, y - y1)
        return math.hypot(dx, dy)

    def max_distance_to_cell(self, x: float, y: float, cell: int) -> float:
        """Largest Euclidean distance from ``(x, y)`` to the cell rectangle."""
        x0, y0, x1, y1 = self.cell_bounds(cell)
        dx = max(abs(x - x0), abs(x - x1))
        dy = max(abs(y - y0), abs(y - y1))
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Cycle construction
    # ------------------------------------------------------------------
    def build_cycle(self) -> BroadcastCycle:
        data_segments = [
            Segment(
                name=f"bgi-cell-{cell}",
                kind=SegmentKind.NETWORK_DATA,
                size_bytes=max(1, len(points) * POINT_RECORD_BYTES),
                payload={"points": points},
                region=cell,
            )
            for cell, points in self.cells.items()
        ]
        index_segment = Segment(
            name="bgi-index",
            kind=SegmentKind.INDEX,
            size_bytes=len(self.cells) * CELL_ENTRY_BYTES,
            payload={"counts": {cell: len(points) for cell, points in self.cells.items()}},
        )
        data_packets = sum(segment.num_packets for segment in data_segments)
        m = optimal_m(data_packets, packets_for_bytes(index_segment.size_bytes))
        return BroadcastCycle(
            interleave_one_m(data_segments, [index_segment], m), name="BGI-cycle"
        )

    # ------------------------------------------------------------------
    # Query protocols
    # ------------------------------------------------------------------
    def range_query_on_session(
        self, window: Window, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        session.receive_one_packet()
        self._receive_index(session, memory)
        min_x, min_y, max_x, max_y = window
        ids: List[int] = []
        for cell in self.cells:
            x0, y0, x1, y1 = self.cell_bounds(cell)
            if x1 < min_x or x0 > max_x or y1 < min_y or y0 > max_y:
                continue
            if not self.cells[cell]:
                continue
            for p in self._receive_cell(session, memory, cell):
                if min_x <= p.x <= max_x and min_y <= p.y <= max_y:
                    ids.append(p.object_id)
        return ids

    def knn_query_on_session(
        self, x: float, y: float, k: int, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        session.receive_one_packet()
        self._receive_index(session, memory)

        # Upper bound dmax: grow the candidate cell set in order of maximum
        # distance until the guaranteed object count reaches k.
        by_max = sorted(
            (cell for cell in self.cells if self.cells[cell]),
            key=lambda cell: self.max_distance_to_cell(x, y, cell),
        )
        count = 0
        dmax = float("inf")
        for cell in by_max:
            count += len(self.cells[cell])
            if count >= k:
                dmax = self.max_distance_to_cell(x, y, cell)
                break

        # Receive every non-empty cell whose minimum distance is within dmax.
        pool: Dict[int, PointObject] = {}
        for cell in self.cells:
            if not self.cells[cell]:
                continue
            if self.min_distance_to_cell(x, y, cell) > dmax:
                continue
            for p in self._receive_cell(session, memory, cell):
                pool[p.object_id] = p
        ranked = sorted(pool.values(), key=lambda p: (p.distance_to(x, y), p.object_id))
        return [p.object_id for p in ranked[:k]]

    # ------------------------------------------------------------------
    # Reception helpers
    # ------------------------------------------------------------------
    def _receive_index(self, session: ClientSession, memory: MemoryTracker) -> None:
        cycle = session.cycle
        segment, _ = cycle.next_segment_of_kind(SegmentKind.INDEX, session.position)
        reception = session.receive_segment(segment.name)
        while reception.lost_offsets:
            segment, _ = cycle.next_segment_of_kind(SegmentKind.INDEX, session.position)
            reception = session.receive_segment(segment.name)
        memory.allocate(segment.size_bytes)

    def _receive_cell(
        self, session: ClientSession, memory: MemoryTracker, cell: int
    ) -> List[PointObject]:
        name = f"bgi-cell-{cell}"
        reception = session.receive_segment(name)
        attempts = 0
        while reception.lost_offsets and attempts < 50:
            attempts += 1
            reception = session.receive_segment_packets(name, reception.lost_offsets)
        segment = session.cycle.segment(name)
        memory.allocate(segment.size_bytes)
        return segment.payload["points"]
