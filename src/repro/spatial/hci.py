"""Hilbert Curve Index (HCI) air index (paper Appendix A, [Zheng et al. 2004]).

The data objects are mapped onto a Hilbert curve and broadcast in curve
order, split into ``m`` equal data segments interleaved with ``m`` copies of
a small directory (the B+-tree of the original work, modelled here as its
leaf level: the minimum Hilbert value of every data segment).

Range queries find the Hilbert values spanned by the query window, receive
the data segments overlapping that value interval, and filter.  kNN queries
first fetch the segments around the query point's Hilbert value to obtain
``k`` candidates, use the largest candidate distance as a radius, and then
run a range query over the corresponding window.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.interleave import interleave_one_m, optimal_m
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind, packets_for_bytes
from repro.spatial.base import POINT_RECORD_BYTES, SpatialAirScheme, Window
from repro.spatial.hilbert import hilbert_order_for, point_to_hilbert
from repro.spatial.points import PointObject

__all__ = ["HilbertCurveIndexScheme"]

#: Bytes of one directory entry: a Hilbert value plus a segment offset.
DIRECTORY_ENTRY_BYTES = 8


class HilbertCurveIndexScheme(SpatialAirScheme):
    """(1, m) broadcast of Hilbert-ordered points with a value directory."""

    short_name = "HCI"

    def __init__(
        self,
        points: Sequence[PointObject],
        num_data_segments: int = 16,
        order: int = 0,
    ) -> None:
        super().__init__(points)
        self.order = order or hilbert_order_for(len(self.points))
        self.num_data_segments = max(1, num_data_segments)
        self._sorted = sorted(
            self.points,
            key=lambda p: point_to_hilbert(p.x, p.y, self.bounds, self.order),
        )
        self._hilbert: Dict[int, int] = {
            p.object_id: point_to_hilbert(p.x, p.y, self.bounds, self.order)
            for p in self.points
        }
        #: (min_hilbert, max_hilbert, points) per data segment, in curve order.
        self.segments_content: List[Tuple[int, int, List[PointObject]]] = []
        per_segment = max(1, -(-len(self._sorted) // self.num_data_segments))
        for start in range(0, len(self._sorted), per_segment):
            chunk = self._sorted[start : start + per_segment]
            values = [self._hilbert[p.object_id] for p in chunk]
            self.segments_content.append((min(values), max(values), chunk))

    # ------------------------------------------------------------------
    # Cycle construction
    # ------------------------------------------------------------------
    def build_cycle(self) -> BroadcastCycle:
        data_segments = [
            Segment(
                name=f"hci-data-{index}",
                kind=SegmentKind.NETWORK_DATA,
                size_bytes=len(chunk) * POINT_RECORD_BYTES,
                payload={"points": chunk, "min_hilbert": low, "max_hilbert": high},
            )
            for index, (low, high, chunk) in enumerate(self.segments_content)
        ]
        index_segment = Segment(
            name="hci-directory",
            kind=SegmentKind.INDEX,
            size_bytes=len(self.segments_content) * DIRECTORY_ENTRY_BYTES,
            payload={"entries": [(low, i) for i, (low, _, _) in enumerate(self.segments_content)]},
        )
        data_packets = sum(segment.num_packets for segment in data_segments)
        m = optimal_m(data_packets, packets_for_bytes(index_segment.size_bytes))
        return BroadcastCycle(
            interleave_one_m(data_segments, [index_segment], m), name="HCI-cycle"
        )

    # ------------------------------------------------------------------
    # Query protocols
    # ------------------------------------------------------------------
    def range_query_on_session(
        self, window: Window, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        session.receive_one_packet()
        self._receive_directory(session, memory)
        low, high = self._window_hilbert_range(window)
        ids: List[int] = []
        for index, (seg_low, seg_high, _) in enumerate(self.segments_content):
            if seg_high < low or seg_low > high:
                continue
            chunk = self._receive_data(session, memory, index)
            min_x, min_y, max_x, max_y = window
            ids.extend(
                p.object_id
                for p in chunk
                if min_x <= p.x <= max_x and min_y <= p.y <= max_y
            )
        return ids

    def knn_query_on_session(
        self, x: float, y: float, k: int, session: ClientSession, memory: MemoryTracker
    ) -> List[int]:
        session.receive_one_packet()
        self._receive_directory(session, memory)
        centre = point_to_hilbert(x, y, self.bounds, self.order)

        # Step 1: candidates with Hilbert values closest to the query point.
        candidate_points: List[PointObject] = []
        received: List[int] = []
        order_by_distance = sorted(
            range(len(self.segments_content)),
            key=lambda i: self._hilbert_gap(i, centre),
        )
        for index in order_by_distance:
            if len(candidate_points) >= k:
                break
            candidate_points.extend(self._receive_data(session, memory, index))
            received.append(index)
        candidates = sorted(candidate_points, key=lambda p: (p.distance_to(x, y), p.object_id))
        if not candidates:
            return []
        radius = candidates[: k][-1].distance_to(x, y)

        # Step 2: range query with the candidate radius around the location.
        window = (x - radius, y - radius, x + radius, y + radius)
        low, high = self._window_hilbert_range(window)
        pool: Dict[int, PointObject] = {p.object_id: p for p in candidate_points}
        for index, (seg_low, seg_high, _) in enumerate(self.segments_content):
            if index in received or seg_high < low or seg_low > high:
                continue
            for p in self._receive_data(session, memory, index):
                pool[p.object_id] = p
        ranked = sorted(pool.values(), key=lambda p: (p.distance_to(x, y), p.object_id))
        return [p.object_id for p in ranked[:k]]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _receive_directory(self, session: ClientSession, memory: MemoryTracker) -> None:
        cycle = session.cycle
        segment, _ = cycle.next_segment_of_kind(SegmentKind.INDEX, session.position)
        reception = session.receive_segment(segment.name)
        while reception.lost_offsets:
            segment, _ = cycle.next_segment_of_kind(SegmentKind.INDEX, session.position)
            reception = session.receive_segment(segment.name)
        memory.allocate(segment.size_bytes)

    def _receive_data(
        self, session: ClientSession, memory: MemoryTracker, index: int
    ) -> List[PointObject]:
        name = f"hci-data-{index}"
        reception = session.receive_segment(name)
        attempts = 0
        while reception.lost_offsets and attempts < 50:
            attempts += 1
            reception = session.receive_segment_packets(name, reception.lost_offsets)
        segment = session.cycle.segment(name)
        memory.allocate(segment.size_bytes)
        return segment.payload["points"]

    def _hilbert_gap(self, segment_index: int, value: int) -> int:
        low, high, _ = self.segments_content[segment_index]
        if low <= value <= high:
            return 0
        return min(abs(value - low), abs(value - high))

    def _window_hilbert_range(self, window: Window) -> Tuple[int, int]:
        """Smallest and largest Hilbert value of cells intersecting the window."""
        min_x, min_y, max_x, max_y = window
        bounds_min_x, bounds_min_y, bounds_max_x, bounds_max_y = self.bounds
        side = 1 << self.order
        width = (bounds_max_x - bounds_min_x) or 1.0
        height = (bounds_max_y - bounds_min_y) or 1.0

        def cell_of(value: float, low: float, extent: float) -> int:
            return min(side - 1, max(0, int((value - low) / extent * side)))

        first_col = cell_of(min_x, bounds_min_x, width)
        last_col = cell_of(max_x, bounds_min_x, width)
        first_row = cell_of(min_y, bounds_min_y, height)
        last_row = cell_of(max_y, bounds_min_y, height)

        from repro.spatial.hilbert import hilbert_index

        low = high = None
        for col in range(first_col, last_col + 1):
            for row in range(first_row, last_row + 1):
                value = hilbert_index(self.order, col, row)
                low = value if low is None else min(low, value)
                high = value if high is None else max(high, value)
        return (low or 0, high if high is not None else (side * side - 1))
