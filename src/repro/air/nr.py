"""The Next Region (NR) method (paper Section 5).

NR performs the same border-node pre-computation as EB, but instead of one
global index it broadcasts a small *local* index ``Am`` immediately before
every region ``Rm``'s data.  Cell ``Am[Ri][Rj]`` names the next region in the
broadcast cycle (at or after ``Rm``) that is needed for a shortest path from
``Ri`` to ``Rj`` -- "needed" meaning it is traversed by some pre-computed
shortest path between border nodes of ``Ri`` and ``Rj`` (or is ``Ri``/``Rj``
itself).  The client therefore never has to know the whole needed set in
advance: it follows the chain of next-region pointers, receiving regions as
they come, and stops when a pointer names a region it already possesses
(Algorithm 2).

Because each local index is tiny and no global index is replicated, NR's
cycle is barely longer than Dijkstra's, while the client receives only a
subset of regions -- the paper's best method on tuning time, memory, and
(somewhat surprisingly) access latency.

Packet loss (Section 6.2): only one cell is needed from each ``Am``, so a
lost index packet rarely matters; when it does, the client receives region
``Rm`` anyway and resolves the chain from the following index.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.air.base import AirClient, AirIndexScheme, ClientOptions, CpuTimer, QueryResult
from repro.air.registry import register_scheme
from repro.air.border_paths import BorderPathPrecomputation
from repro.air.memory_bound import (
    SuperEdgeGraph,
    compress_region,
    shortest_path_on_overlay,
)
from repro.air.records import DEFAULT_LAYOUT, RecordLayout
from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.device import DeviceProfile
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind, packets_for_bytes
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.kernel import masked_shortest_path
from repro.network.graph import RoadNetwork
from repro.partitioning.kdtree import build_kdtree_partitioning
from repro.serialize.graphs import partitioning_state, restore_partitioning

__all__ = ["NextRegionScheme", "NextRegionClient", "NRParams"]


@dataclass(frozen=True)
class NRParams:
    """Tunable knobs of the Next Region method."""

    num_regions: int = 32


@register_scheme(
    "NR",
    params=NRParams,
    description="Next Region: per-region local indexes, chain following (Section 5)",
    config_map={"num_regions": "eb_nr_regions"},
)
class NextRegionScheme(AirIndexScheme):
    """Server side of NR: shared pre-computation plus per-region local indexes."""

    short_name = "NR"
    supports_memory_bound = True

    def __init__(
        self,
        network: RoadNetwork,
        num_regions: int = 32,
        layout: RecordLayout = DEFAULT_LAYOUT,
    ) -> None:
        super().__init__(network, layout)
        self._configure(num_regions=num_regions)
        self._build_state()

    def _configure(self, num_regions: int = 32) -> None:
        self.num_regions = num_regions
        #: Informational content of one local index (what the client stores).
        self.local_index_bytes = self.layout.nr_local_index_bytes(num_regions)
        self._header_packets = packets_for_bytes(self.layout.kd_split_bytes(num_regions))
        cells_per_packet = self.layout.nr_cells_per_packet()
        cell_packets = -(-(num_regions * num_regions) // cells_per_packet)
        self.local_index_packets = self._header_packets + cell_packets
        #: On-air size of one local index (header and cell packets are not
        #: shared, so the client can address the cell it needs directly).
        from repro.broadcast.packet import PACKET_PAYLOAD_BYTES

        self.local_index_air_bytes = self.local_index_packets * PACKET_PAYLOAD_BYTES
        self._needed_cache: Dict[Tuple[int, int], List[int]] = {}

    def _build_state(self) -> None:
        self.partitioning = build_kdtree_partitioning(self.network, self.num_regions)
        self.precomputation = BorderPathPrecomputation(self.network, self.partitioning)
        self.precomputation_seconds = self.precomputation.precomputation_seconds

    def _artifact_state(self) -> dict:
        return {
            "partitioning": partitioning_state(self.partitioning),
            "border_paths": self.precomputation.state(),
        }

    def _restore_state(self, state: dict) -> None:
        self.partitioning = restore_partitioning(self.network, state["partitioning"])
        self.precomputation = BorderPathPrecomputation.from_state(
            self.network, self.partitioning, state["border_paths"]
        )

    # ------------------------------------------------------------------
    # Index semantics
    # ------------------------------------------------------------------
    def needed_regions(self, source_region: int, target_region: int) -> List[int]:
        """Regions required for queries between the two regions (cached)."""
        key = (source_region, target_region)
        if key not in self._needed_cache:
            self._needed_cache[key] = self.precomputation.needed_regions_nr(
                source_region, target_region
            )
        return self._needed_cache[key]

    def next_region_after(
        self, index_region: int, source_region: int, target_region: int
    ) -> int:
        """Value of cell ``A^index_region[source_region][target_region]``.

        The first needed region at or after ``index_region`` in broadcast
        (cyclic) order.
        """
        needed = self.needed_regions(source_region, target_region)
        best_region = needed[0]
        best_offset = (best_region - index_region) % self.num_regions
        for region in needed:
            offset = (region - index_region) % self.num_regions
            if offset < best_offset:
                best_offset = offset
                best_region = region
        return best_region

    def cell_packet_offset(self, source_region: int, target_region: int) -> int:
        """Packet offset, within a local index segment, of cell (Rs, Rt)."""
        cells_per_packet = self.layout.nr_cells_per_packet()
        flat = source_region * self.num_regions + target_region
        return self._header_packets + flat // cells_per_packet

    def header_packet_offsets(self) -> List[int]:
        """Packet offsets carrying the kd splitting values."""
        return list(range(self._header_packets))

    # ------------------------------------------------------------------
    # Cycle construction
    # ------------------------------------------------------------------
    def build_cycle(self) -> BroadcastCycle:
        segments: List[Segment] = []
        for region in range(self.num_regions):
            cross_nodes = self.precomputation.cross_border_in_region(region)
            local_nodes = self.precomputation.local_in_region(region)
            segments.append(
                Segment(
                    name=f"nr-index-{region}",
                    kind=SegmentKind.LOCAL_INDEX,
                    size_bytes=self.local_index_air_bytes,
                    region=region,
                    payload={"index_region": region},
                )
            )
            segments.append(
                Segment(
                    name=f"region-{region}-cross",
                    kind=SegmentKind.REGION_CROSS_BORDER,
                    size_bytes=self.layout.adjacency_bytes(self.network, cross_nodes),
                    region=region,
                    payload={"nodes": cross_nodes},
                )
            )
            segments.append(
                Segment(
                    name=f"region-{region}-local",
                    kind=SegmentKind.REGION_LOCAL,
                    size_bytes=self.layout.adjacency_bytes(self.network, local_nodes),
                    region=region,
                    payload={"nodes": local_nodes},
                )
            )
        return BroadcastCycle(segments, name="NR-cycle")

    # ------------------------------------------------------------------
    # Incremental maintenance (dynamic networks)
    # ------------------------------------------------------------------
    def incremental_rebuild(self, network: RoadNetwork, delta) -> bool:
        """Refresh the border-path pre-computation and re-pack touched segments.

        A weight-only delta cannot move the kd partitioning (it depends on
        coordinates alone), so the partitioning is kept and the shared
        pre-computation re-runs only the border sources whose shortest path
        trees a change could touch.  Cycle-wise, the per-region local-index
        segments have a fixed size and are reused; a region's cross/local
        data segments are re-packed only when its cross-border membership
        actually changed.  Structural deltas fall back to a full rebuild.
        """
        if network is not self.network or delta.structural:
            return False
        started = time.perf_counter()
        if delta.changes:
            self.precomputation.refresh(delta.changes)
            self._needed_cache.clear()
        if self._cycle is not None:
            old = self._cycle
            segments: List[Segment] = []
            for region in range(self.num_regions):
                segments.append(old.segment(f"nr-index-{region}"))
                cross_nodes = self.precomputation.cross_border_in_region(region)
                local_nodes = self.precomputation.local_in_region(region)
                for suffix, kind, nodes in (
                    ("cross", SegmentKind.REGION_CROSS_BORDER, cross_nodes),
                    ("local", SegmentKind.REGION_LOCAL, local_nodes),
                ):
                    name = f"region-{region}-{suffix}"
                    previous = old.segment(name)
                    # Record sizes are purely structural (degree-based), so a
                    # segment with an unchanged node list is already correct.
                    if previous.payload["nodes"] == nodes:
                        segments.append(previous)
                    else:
                        segments.append(
                            Segment(
                                name=name,
                                kind=kind,
                                size_bytes=self.layout.adjacency_bytes(self.network, nodes),
                                region=region,
                                payload={"nodes": nodes},
                            )
                        )
            self._cycle = BroadcastCycle(segments, name="NR-cycle")
        return self._track_refresh(started)

    def shadow_rebuild(self, network: RoadNetwork, delta) -> Optional["NextRegionScheme"]:
        """Refresh into a structurally shared shadow instead of in place.

        The clone shares the partitioning and every untouched border-source
        record with the serving instance (both immutable by contract) through
        :meth:`BorderPathPrecomputation.shadow`, so the only per-swap cost on
        top of the in-place path is one shallow list copy.  The serving
        instance keeps answering from its pre-delta aggregates until the
        engine swaps the shadow in.
        """
        if network is not self.network or delta.structural:
            return None
        clone = copy.copy(self)
        clone.precomputation = self.precomputation.shadow()
        clone._needed_cache = {}
        if clone.incremental_rebuild(network, delta):
            return clone
        return None

    # ------------------------------------------------------------------
    # Client
    # ------------------------------------------------------------------
    def _make_client(self, options: ClientOptions) -> "NextRegionClient":
        return NextRegionClient(self, options=options)


class NextRegionClient(AirClient):
    """Client side of NR: Algorithm 2 with loss handling and Section 6.1 mode."""

    scheme: NextRegionScheme

    def __init__(
        self,
        scheme: NextRegionScheme,
        device: Optional[DeviceProfile] = None,
        options: Optional[ClientOptions] = None,
    ) -> None:
        super().__init__(scheme, device, options)
        self.memory_bound = self.options.memory_bound

    def process(
        self, source: int, target: int, session: ClientSession, memory: MemoryTracker
    ) -> QueryResult:
        scheme = self.scheme
        cycle = session.cycle
        num_regions = scheme.num_regions

        # Step 1: read the packet currently on the air (pointer to the
        # subsequent local index).
        session.receive_one_packet()

        # Step 2: receive the next local index in full -- the client needs the
        # kd splits to map the query endpoints to regions, plus one cell.
        source_region = scheme.partitioning.region_of(source)
        target_region = scheme.partitioning.region_of(target)
        first_index_region = self._receive_first_index(
            session, source_region, target_region
        )
        memory.allocate(scheme.local_index_bytes)

        # Step 3: follow the chain of next-region pointers.
        received_regions: List[int] = []
        received_set: Set[int] = set()
        received_nodes: Set[int] = set()
        region_nodes: Dict[int, Set[int]] = {}
        #: Region packets lost on the air; recovered after the chain finishes
        #: (Section 6.2) so that a loss never stalls the chain for a cycle.
        pending_retries: List[Tuple[str, List[int]]] = []
        overlay = SuperEdgeGraph()
        cpu = CpuTimer(self.device)

        next_region = scheme.next_region_after(
            first_index_region, source_region, target_region
        )
        iterations = 0
        while next_region not in received_set and iterations <= num_regions + 1:
            iterations += 1
            self._receive_region(
                session,
                memory,
                next_region,
                source_region,
                target_region,
                received_nodes,
                region_nodes,
                pending_retries,
            )
            received_set.add(next_region)
            received_regions.append(next_region)
            if self.memory_bound and next_region not in (source_region, target_region):
                with cpu:
                    before = overlay.size_bytes
                    compress_region(
                        overlay,
                        scheme.network,
                        region_nodes[next_region],
                        scheme.partitioning.border_nodes(next_region),
                        extra_terminals=(),
                        layout=scheme.layout,
                        keep_expansions=False,
                    )
                memory.allocate(overlay.size_bytes - before)
                memory.release(
                    sum(
                        cycle.segment(name).size_bytes
                        for name in self._segment_names(next_region, source_region, target_region)
                    )
                )

            # Read the local index adjacent to the region just received to
            # learn the next needed region.
            next_index_region = (next_region + 1) % num_regions
            next_region = self._read_next_pointer(
                session, next_index_region, source_region, target_region,
                memory, received_nodes, region_nodes, received_set, received_regions,
                pending_retries,
            )

        # Recover any region packets lost during the chain; the adjacency
        # data must be complete before the local search.
        attempts = 0
        while pending_retries and attempts < 50:
            attempts += 1
            still_pending: List[Tuple[str, List[int]]] = []
            for name, offsets in pending_retries:
                retry = session.receive_segment_packets(name, offsets)
                if retry.lost_offsets:
                    still_pending.append((name, list(retry.lost_offsets)))
            pending_retries = still_pending

        # Step 4: compute the shortest path over the received data.
        if self.memory_bound:
            with cpu:
                for region in sorted({source_region, target_region}):
                    terminals = []
                    if region == source_region:
                        terminals.append(source)
                    if region == target_region:
                        terminals.append(target)
                    before = overlay.size_bytes
                    compress_region(
                        overlay,
                        scheme.network,
                        region_nodes.get(region, set()),
                        scheme.partitioning.border_nodes(region),
                        extra_terminals=terminals,
                        layout=scheme.layout,
                        expansion_terminals=terminals,
                    )
                    memory.allocate(overlay.size_bytes - before)
                    # The raw region data are no longer needed once compressed.
                    memory.release(
                        sum(
                            cycle.segment(name).size_bytes
                            for name in self._segment_names(
                                region, source_region, target_region
                            )
                        )
                    )
                distance, path, settled = shortest_path_on_overlay(overlay, source, target)
        else:
            with cpu:
                # Masked kernel search over the existing CSR snapshot
                # restricted to the received nodes (bit-identical to Dijkstra
                # on the induced subgraph); the subgraph rebuild remains as
                # the snapshot-less reference fallback.
                local = masked_shortest_path(
                    scheme.network, source, target, received_nodes
                )
                if local is None:
                    subgraph = scheme.network.subgraph(received_nodes)
                    local = shortest_path(subgraph, source, target)
                distance, path, settled = local.distance, local.path, local.settled
            per_node = 3 * scheme.layout.distance_bytes + scheme.layout.node_id_bytes
            memory.allocate(len(received_nodes) * per_node)

        result = QueryResult(
            source=source,
            target=target,
            distance=distance,
            path=path,
            received_regions=received_regions,
        )
        result.metrics.cpu_seconds = cpu.seconds
        result.metrics.extra["settled_nodes"] = float(settled)
        result.metrics.extra["needed_regions"] = float(len(received_regions))
        return result

    # ------------------------------------------------------------------
    # Reception helpers
    # ------------------------------------------------------------------
    def _segment_names(
        self, region: int, source_region: int, target_region: int
    ) -> List[str]:
        names = [f"region-{region}-cross"]
        if region in (source_region, target_region):
            names.append(f"region-{region}-local")
        return names

    def _receive_first_index(
        self, session: ClientSession, source_region: int, target_region: int
    ) -> int:
        """Receive the next local index fully; returns its region number."""
        cycle = session.cycle
        scheme = self.scheme
        attempts = 0
        while True:
            segment, _ = cycle.next_segment_of_kind(SegmentKind.LOCAL_INDEX, session.position)
            reception = session.receive_segment(segment.name)
            needed = set(scheme.header_packet_offsets())
            needed.add(scheme.cell_packet_offset(source_region, target_region))
            if not (set(reception.lost_offsets) & needed) or attempts >= 50:
                return segment.payload["index_region"]
            # A needed packet of this index was lost: move on to the next
            # local index (they are broadcast before every region).
            attempts += 1

    def _receive_region(
        self,
        session: ClientSession,
        memory: MemoryTracker,
        region: int,
        source_region: int,
        target_region: int,
        received_nodes: Set[int],
        region_nodes: Dict[int, Set[int]],
        pending_retries: List[Tuple[str, List[int]]],
    ) -> None:
        """Receive a region's data segments, deferring lost-packet recovery."""
        cycle = session.cycle
        for name in self._segment_names(region, source_region, target_region):
            reception = session.receive_segment(name)
            if reception.lost_offsets:
                pending_retries.append((name, list(reception.lost_offsets)))
            segment = cycle.segment(name)
            memory.allocate(segment.size_bytes)
            nodes = segment.payload["nodes"]
            received_nodes.update(nodes)
            region_nodes.setdefault(region, set()).update(nodes)

    def _read_next_pointer(
        self,
        session: ClientSession,
        index_region: int,
        source_region: int,
        target_region: int,
        memory: MemoryTracker,
        received_nodes: Set[int],
        region_nodes: Dict[int, Set[int]],
        received_set: Set[int],
        received_regions: List[int],
        pending_retries: List[Tuple[str, List[int]]],
    ) -> int:
        """Read cell (Rs, Rt) of local index ``A^index_region``.

        On packet loss the client cannot skip ahead (it cannot tell whether
        the adjacent region is needed), so it receives that region as well
        and consults the following index -- exactly the Section 6.2 recovery.
        """
        scheme = self.scheme
        cell_offset = scheme.cell_packet_offset(source_region, target_region)
        current_index_region = index_region
        attempts = 0
        while attempts <= scheme.num_regions:
            attempts += 1
            name = f"nr-index-{current_index_region}"
            reception = session.receive_segment_packets(name, [cell_offset])
            if not reception.lost_offsets:
                return scheme.next_region_after(
                    current_index_region, source_region, target_region
                )
            # Lost: receive the adjacent region anyway and try the next index.
            if current_index_region not in received_set:
                self._receive_region(
                    session,
                    memory,
                    current_index_region,
                    source_region,
                    target_region,
                    received_nodes,
                    region_nodes,
                    pending_retries,
                )
                received_set.add(current_index_region)
                received_regions.append(current_index_region)
            current_index_region = (current_index_region + 1) % scheme.num_regions
        return scheme.next_region_after(
            current_index_region, source_region, target_region
        )
