"""Scheme registry: the pluggable entry point to the air-index schemes.

Every scheme registers itself with :func:`register_scheme`, declaring its
canonical short name (the paper's abbreviation), a typed parameter dataclass
describing its tunable knobs, and how those knobs map onto the fields of an
:class:`~repro.experiments.config.ExperimentConfig`.  Everything else in the
system -- the :class:`~repro.engine.system.AirSystem` facade, the CLI, the
benchmarks -- constructs schemes through the registry instead of hard-coding
class names::

    from repro import air

    air.available_schemes()                  # ['DJ', 'NR', 'EB', ...]
    scheme = air.create("NR", network, num_regions=16)

Registration happens at import time of each scheme module;
``import repro.air`` pulls in all of them, so the registry is always fully
populated once the package is imported.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Type, TypeVar

__all__ = [
    "SchemeInfo",
    "register_scheme",
    "available_schemes",
    "comparison_schemes",
    "canonical_name",
    "get_scheme",
    "scheme_defaults",
    "params_from_config",
    "create",
]

#: Canonical name -> registration record, in registration order.
_REGISTRY: Dict[str, "SchemeInfo"] = {}
#: Lowercased alias -> canonical name (case-insensitive lookup).
_ALIASES: Dict[str, str] = {}


@dataclass(frozen=True)
class SchemeInfo:
    """One registered scheme: its class, parameters, and metadata."""

    #: Canonical short name, as the paper spells it (``"NR"``, ``"HiTi"``...).
    name: str
    #: The :class:`~repro.air.base.AirIndexScheme` subclass.
    cls: type
    #: Frozen dataclass describing the scheme's tunable parameters.
    params: type
    #: One-line description shown by ``python -m repro schemes``.
    description: str = ""
    #: Whether the scheme takes part in the paper's device comparisons
    #: (Figures 10-14); SPQ and HiTi only appear in the Table 1/2 studies.
    comparison: bool = True
    #: Parameter field -> ``ExperimentConfig`` attribute carrying its value.
    config_map: Mapping[str, str] = dataclasses.field(default_factory=dict)

    def default_params(self) -> Dict[str, Any]:
        """Parameter names and default values, straight from the dataclass."""
        return {f.name: f.default for f in dataclasses.fields(self.params)}

    def make_params(self, **overrides: Any) -> Any:
        """Instantiate the parameter dataclass, validating the keywords."""
        known = {f.name for f in dataclasses.fields(self.params)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            accepted = ", ".join(sorted(known)) or "(no parameters)"
            raise ValueError(
                f"scheme {self.name!r} got unknown parameter(s) {unknown}; "
                f"accepted: {accepted}"
            )
        return self.params(**overrides)


_SchemeT = TypeVar("_SchemeT", bound=type)


def register_scheme(
    name: str,
    params: Optional[type] = None,
    description: str = "",
    comparison: bool = True,
    config_map: Optional[Mapping[str, str]] = None,
) -> Callable[[_SchemeT], _SchemeT]:
    """Class decorator adding an air-index scheme to the registry.

    ``params`` must be a (preferably frozen) dataclass whose fields all have
    defaults and match keyword arguments of the scheme's constructor.  When
    omitted, the scheme is registered as parameterless.
    """

    if params is None:

        @dataclass(frozen=True)
        class _NoParams:
            pass

        _NoParams.__qualname__ = f"{name}Params"
        params = _NoParams

    if not dataclasses.is_dataclass(params):
        raise TypeError(f"params for scheme {name!r} must be a dataclass")

    def decorate(cls: _SchemeT) -> _SchemeT:
        existing = _REGISTRY.get(name)
        if existing is not None:
            if existing.cls is cls:
                # Re-registering the very same class is a no-op that keeps
                # the original metadata.
                return cls
            same_definition = (
                existing.cls.__module__ == cls.__module__
                and existing.cls.__qualname__ == cls.__qualname__
            )
            if not same_definition:
                raise ValueError(f"scheme {name!r} is already registered")
            # A module reload re-runs the decorator with a fresh class
            # object; fall through so the new definition replaces the old.
        info = SchemeInfo(
            name=name,
            cls=cls,
            params=params,
            description=description,
            comparison=comparison,
            config_map=dict(config_map or {}),
        )
        _REGISTRY[name] = info
        _ALIASES[name.lower()] = name
        return cls

    return decorate


def available_schemes() -> List[str]:
    """Canonical names of every registered scheme, in registration order."""
    return list(_REGISTRY)


def comparison_schemes() -> List[str]:
    """Schemes taking part in the paper's device comparisons (Figs. 10-14)."""
    return [name for name, info in _REGISTRY.items() if info.comparison]


def canonical_name(name: str) -> str:
    """Resolve a case-insensitive scheme name; raises ``ValueError`` if unknown."""
    try:
        return _ALIASES[name.lower()]
    except KeyError:
        known = ", ".join(available_schemes())
        raise ValueError(f"unknown scheme {name!r}; available: {known}") from None


def get_scheme(name: str) -> SchemeInfo:
    """The :class:`SchemeInfo` for a (case-insensitive) scheme name."""
    return _REGISTRY[canonical_name(name)]


def scheme_defaults(name: str) -> Dict[str, Any]:
    """Parameter names and defaults for a scheme (for CLIs and docs)."""
    return get_scheme(name).default_params()


def params_from_config(name: str, config: Any) -> Dict[str, Any]:
    """Parameter values a configuration object implies for a scheme.

    Uses the scheme's registered ``config_map``; ``config`` only needs the
    mapped attributes (duck-typed so the air layer never imports the
    experiment harness).
    """
    info = get_scheme(name)
    return {field: getattr(config, attr) for field, attr in info.config_map.items()}


def create(name: str, network: Any, *, layout: Any = None, **params: Any):
    """Construct a scheme by name over ``network``.

    Extra keyword arguments are validated against the scheme's parameter
    dataclass, so a typo fails fast with the accepted names::

        air.create("NR", network, num_regions=16)
        air.create("LD", network, num_landmarks=4)
    """
    info = get_scheme(name)
    resolved = info.make_params(**params)
    kwargs = dataclasses.asdict(resolved)
    if layout is not None:
        kwargs["layout"] = layout
    return info.cls(network, **kwargs)
