"""Broadcast adaptation of HiTi (paper Section 3.2).

HiTi is the only competitor that can tune selectively: its hierarchical
super-edge index tells the client in advance which regions matter.  The
catch, which the paper quantifies, is that the client must first receive the
*entire* index, and that index is several times larger than the network
itself -- long cycle, long tuning time, and a working set that does not fit
the 8 MB device heap for anything but the smallest networks (Tables 1 and 2).

The client here receives the global index, determines the source/target
regions, receives those two regions' adjacency data, and answers the query on
the super-edge overlay.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.air.base import AirClient, AirIndexScheme, ClientOptions, CpuTimer, QueryResult
from repro.air.registry import register_scheme
from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind
from repro.index.hiti import HiTiIndex
from repro.network.graph import RoadNetwork
from repro.partitioning.kdtree import build_kdtree_partitioning
from repro.air.records import DEFAULT_LAYOUT, RecordLayout
from repro.serialize.graphs import partitioning_state, restore_partitioning

__all__ = ["HiTiBroadcastScheme", "HiTiParams"]


@dataclass(frozen=True)
class HiTiParams:
    """Tunable knobs of the HiTi broadcast adaptation."""

    num_regions: int = 16


@register_scheme(
    "HiTi",
    params=HiTiParams,
    description="Hierarchical super-edge index broadcast (selective, but oversized; Table 1)",
    comparison=False,
    config_map={"num_regions": "hiti_regions"},
)
class HiTiBroadcastScheme(AirIndexScheme):
    """Hierarchical super-edge index broadcast ahead of per-region data."""

    short_name = "HiTi"

    def __init__(
        self,
        network: RoadNetwork,
        num_regions: int = 16,
        layout: RecordLayout = DEFAULT_LAYOUT,
    ) -> None:
        super().__init__(network, layout)
        self._configure(num_regions=num_regions)
        self._build_state()

    def _build_state(self) -> None:
        self.partitioning = build_kdtree_partitioning(self.network, self.num_regions)
        self.index = HiTiIndex(self.network, self.partitioning)
        self.precomputation_seconds = self.index.precomputation_seconds

    def _artifact_state(self) -> dict:
        return {
            "partitioning": partitioning_state(self.partitioning),
            "index": self.index.state(),
        }

    def _restore_state(self, state: dict) -> None:
        self.partitioning = restore_partitioning(self.network, state["partitioning"])
        self.index = HiTiIndex.from_state(self.network, self.partitioning, state["index"])

    def _index_segment(self) -> Segment:
        # Crossing (inter-region) edges are part of the index: the client
        # needs them to stitch super-edges of different regions together.
        crossing_edges = sum(
            1
            for edge in self.network.edges()
            if self.partitioning.region_of(edge.source)
            != self.partitioning.region_of(edge.target)
        )
        index_bytes = (
            self.layout.kd_split_bytes(self.num_regions)
            + self.index.num_super_edges() * self.layout.hiti_super_edge_bytes()
            + crossing_edges * (2 * self.layout.node_id_bytes + self.layout.weight_bytes)
        )
        return Segment(
            name="hiti-index",
            kind=SegmentKind.INDEX,
            size_bytes=index_bytes,
            payload={"index": self.index},
        )

    def build_cycle(self) -> BroadcastCycle:
        segments: List[Segment] = [self._index_segment()]
        for region in range(self.num_regions):
            nodes = self.partitioning.nodes_in_region(region)
            segments.append(
                Segment(
                    name=f"region-{region}",
                    kind=SegmentKind.REGION_CROSS_BORDER,
                    size_bytes=self.layout.adjacency_bytes(self.network, nodes),
                    region=region,
                    payload={"nodes": nodes},
                )
            )
        return BroadcastCycle(segments, name="HiTi-cycle")

    # ------------------------------------------------------------------
    # Incremental maintenance (dynamic networks)
    # ------------------------------------------------------------------
    def incremental_rebuild(self, network: RoadNetwork, delta) -> bool:
        """Recompute super-edges only for the hierarchy blocks touching a
        dirty region, then re-pack only the index segment.

        HiTi is the natural fit for partition-local updates: a changed edge
        is internal to exactly the sub-graphs covering its endpoints'
        regions, so one dirty leaf costs one leaf recompute plus its
        ``log2(num_regions)`` ancestors instead of the whole hierarchy.  The
        per-region data segments depend only on structure (node lists and
        degrees) and are reused as-is; structural deltas fall back to a full
        rebuild because they can move borders.
        """
        if network is not self.network or delta.structural:
            return False
        started = time.perf_counter()
        if delta.changes:
            self.index.refresh(delta.dirty_regions(self.partitioning))
        if self._cycle is not None:
            # Region data segments depend only on structure and are reused;
            # only the index segment's size can move with the super edges.
            segments = [self._index_segment()] + [
                segment for segment in self._cycle.segments if segment.name != "hiti-index"
            ]
            self._cycle = BroadcastCycle(segments, name="HiTi-cycle")
        return self._track_refresh(started)

    def _make_client(self, options: ClientOptions) -> "HiTiBroadcastClient":
        return HiTiBroadcastClient(self, options=options)


class HiTiBroadcastClient(AirClient):
    """Receives the full index plus the source/target regions."""

    scheme: HiTiBroadcastScheme

    def process(
        self, source: int, target: int, session: ClientSession, memory: MemoryTracker
    ) -> QueryResult:
        cycle = session.cycle
        # Read the current packet to learn where the next index copy starts.
        session.receive_one_packet()

        reception = session.receive_segment("hiti-index")
        while reception.lost_offsets:
            reception = session.receive_segment_packets(
                "hiti-index", reception.lost_offsets
            )
        memory.allocate(cycle.segment("hiti-index").size_bytes)

        partitioning = self.scheme.partitioning
        source_region = partitioning.region_of(source)
        target_region = partitioning.region_of(target)

        received_regions = sorted({source_region, target_region})
        for region in received_regions:
            name = f"region-{region}"
            region_reception = session.receive_segment(name)
            while region_reception.lost_offsets:
                region_reception = session.receive_segment_packets(
                    name, region_reception.lost_offsets
                )
            memory.allocate(cycle.segment(name).size_bytes)

        with CpuTimer(self.device) as timer:
            local = self.scheme.index.query(source, target)

        result = QueryResult(
            source=source,
            target=target,
            distance=local.distance,
            path=local.path,
            received_regions=received_regions,
        )
        result.metrics.cpu_seconds = timer.seconds
        result.metrics.extra["settled_nodes"] = float(local.settled)
        return result
