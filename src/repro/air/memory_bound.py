"""Memory-bound client processing via super-edges (paper Section 6.1).

Instead of holding every received region until the final search, the client
turns each region into *super-edges* -- shortest paths between the region's
border nodes, computed inside the region -- as soon as the region has been
received, and then discards the raw region data.  For the source and target
regions, the query endpoints are added to the border node set so that paths
from/to them survive the compression.  The final Dijkstra runs on the small
graph ``G'`` made of super-edges plus *border edges* (original edges whose
endpoints lie in different regions); super-edges on the result path are then
expanded back into their underlying node sequences.

The peak memory saving the paper reports is around 35%.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork
from repro.air.records import RecordLayout

__all__ = ["SuperEdgeGraph", "compress_region", "shortest_path_on_overlay"]


@dataclass
class SuperEdgeGraph:
    """The client-side overlay graph ``G'`` accumulated region by region."""

    #: overlay adjacency: node -> list of (neighbor, weight)
    adjacency: Dict[int, List[Tuple[int, float]]] = field(default_factory=dict)
    #: expansion of each super-edge back into its region-internal path
    expansions: Dict[Tuple[int, int], List[int]] = field(default_factory=dict)
    #: running size estimate in bytes of the overlay held in memory
    size_bytes: int = 0

    def add_edge(self, u: int, v: int, weight: float, layout: RecordLayout) -> None:
        """Add a plain (border) edge to the overlay."""
        self.adjacency.setdefault(u, []).append((v, weight))
        self.adjacency.setdefault(v, [])
        self.size_bytes += 2 * layout.node_id_bytes + layout.weight_bytes

    def add_super_edge(
        self, u: int, v: int, weight: float, path: List[int], layout: RecordLayout
    ) -> None:
        """Add a super-edge together with its expansion path."""
        self.adjacency.setdefault(u, []).append((v, weight))
        self.adjacency.setdefault(v, [])
        self.expansions[(u, v)] = path
        self.size_bytes += (
            2 * layout.node_id_bytes
            + layout.weight_bytes
            + len(path) * layout.node_id_bytes
        )

    def expand_path(self, overlay_path: List[int]) -> List[int]:
        """Replace super-edges in ``overlay_path`` by their stored expansions."""
        if not overlay_path:
            return []
        expanded: List[int] = [overlay_path[0]]
        for u, v in zip(overlay_path, overlay_path[1:]):
            expansion = self.expansions.get((u, v))
            if expansion:
                expanded.extend(expansion[1:])
            else:
                expanded.append(v)
        return expanded


def compress_region(
    overlay: SuperEdgeGraph,
    network: RoadNetwork,
    region_nodes: Iterable[int],
    border_nodes: Iterable[int],
    extra_terminals: Iterable[int],
    layout: RecordLayout,
    keep_expansions: bool = True,
    expansion_terminals: Optional[Iterable[int]] = None,
) -> int:
    """Compress one received region into super-edges inside ``overlay``.

    Parameters
    ----------
    region_nodes:
        The nodes of the region the client actually received (cross-border
        nodes only for intermediate regions, all nodes for the source and
        target regions).
    border_nodes:
        The region's border nodes (restricted to received ones).
    extra_terminals:
        Query endpoints located in this region (``vs`` / ``vt``), added to
        the border node set as the paper prescribes.
    layout:
        Record sizing used for the overlay's memory accounting.
    keep_expansions:
        Whether to keep node sequences behind super-edges at all.  The EB/NR
        memory-bound clients disable this for intermediate regions: only the
        super-edge costs are retained, which is what makes the working set
        shrink (the returned path is then abridged to super-edge hops inside
        those regions while the distance remains exact).
    expansion_terminals:
        When given (and ``keep_expansions`` is true), expansions are kept only
        for super-edges incident to these nodes -- the query endpoints -- so
        the detailed prefix/suffix of the result survives without storing a
        path for every border pair of the source/target regions.

    Returns the number of super-edges added.
    """
    received = set(region_nodes)
    terminals = sorted((set(border_nodes) | set(extra_terminals)) & received)

    # Adjacency restricted to the region's received nodes.
    local_adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for node in received:
        local_adjacency[node] = [
            (neighbor, weight)
            for neighbor, weight in network.neighbors(node)
            if neighbor in received
        ]

    added = 0
    terminal_set = set(terminals)
    expansion_set = (
        terminal_set if expansion_terminals is None else set(expansion_terminals)
    )
    for source in terminals:
        distances, predecessors = _dijkstra_local(local_adjacency, source, terminal_set)
        for target in terminals:
            if target == source:
                continue
            distance = distances.get(target, INFINITY)
            if distance == INFINITY:
                continue
            expand = keep_expansions and (
                source in expansion_set or target in expansion_set
            )
            if expand:
                path = _trace(predecessors, source, target)
                overlay.add_super_edge(source, target, distance, path, layout)
            else:
                overlay.add_edge(source, target, distance, layout)
            added += 1

    # Border edges: original edges leaving the region from its border nodes.
    for node in terminals:
        for neighbor, weight in network.neighbors(node):
            if neighbor not in received:
                overlay.add_edge(node, neighbor, weight, layout)
    return added


def shortest_path_on_overlay(
    overlay: SuperEdgeGraph, source: int, target: int
) -> Tuple[float, List[int], int]:
    """Dijkstra on the overlay; returns (distance, expanded path, settled)."""
    if source not in overlay.adjacency:
        return (INFINITY, [], 0)
    distances: Dict[int, float] = {source: 0.0}
    predecessors: Dict[int, Optional[int]] = {source: None}
    settled: Set[int] = set()
    heap = [(0.0, source)]
    settled_count = 0
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        settled_count += 1
        if node == target:
            break
        for neighbor, weight in overlay.adjacency.get(node, ()):
            candidate = dist + weight
            if candidate < distances.get(neighbor, INFINITY):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    distance = distances.get(target, INFINITY)
    if distance == INFINITY:
        return (INFINITY, [], settled_count)
    overlay_path = _trace(predecessors, source, target)
    return (distance, overlay.expand_path(overlay_path), settled_count)


def _dijkstra_local(
    adjacency: Dict[int, List[Tuple[int, float]]], source: int, targets: Set[int]
) -> Tuple[Dict[int, float], Dict[int, Optional[int]]]:
    """Dijkstra over a plain adjacency dict, stopping when targets settle."""
    distances: Dict[int, float] = {source: 0.0}
    predecessors: Dict[int, Optional[int]] = {source: None}
    remaining = set(targets)
    remaining.discard(source)
    settled: Set[int] = set()
    heap = [(0.0, source)]
    while heap and remaining:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        remaining.discard(node)
        for neighbor, weight in adjacency.get(node, ()):
            candidate = dist + weight
            if candidate < distances.get(neighbor, INFINITY):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return distances, predecessors


def _trace(
    predecessors: Dict[int, Optional[int]], source: int, target: int
) -> List[int]:
    """Trace a predecessor map from ``target`` back to ``source``."""
    path = [target]
    node = target
    while node != source:
        node = predecessors.get(node)
        if node is None:
            return []
        path.append(node)
    path.reverse()
    return path
