"""Byte-level sizing of on-air records.

Every broadcast scheme needs to know how many bytes (and therefore packets)
its content occupies.  :class:`RecordLayout` centralizes the field sizes so
that all schemes are compared under identical serialization assumptions --
the property the paper's Table 1 depends on.

Defaults use 4-byte identifiers, coordinates, weights and distances.  ArcFlag
flags are transmitted at two bytes per region per edge -- the packed-bit
in-memory form is a client-side detail, and two bytes per region reproduces
the relative ArcFlag cycle overhead the paper's Table 1 reports (its ArcFlag
cycle is roughly twice Dijkstra's).  NR's local index cells carry a region
identifier in a single byte (the paper never uses more than 128 regions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.network.graph import RoadNetwork

__all__ = ["RecordLayout", "DEFAULT_LAYOUT"]


@dataclass(frozen=True)
class RecordLayout:
    """Field sizes (in bytes) used when serializing content on the air."""

    node_id_bytes: int = 4
    coordinate_bytes: int = 4
    weight_bytes: int = 4
    distance_bytes: int = 4
    offset_bytes: int = 4
    degree_bytes: int = 1
    region_id_bytes: int = 1
    arcflag_region_bytes: int = 2
    quadtree_block_bytes: int = 4

    # ------------------------------------------------------------------
    # Adjacency (the raw network information every scheme broadcasts)
    # ------------------------------------------------------------------
    def adjacency_entry_bytes(self) -> int:
        """One outgoing edge inside a node's adjacency list."""
        return self.node_id_bytes + self.weight_bytes

    def node_record_bytes(self, out_degree: int) -> int:
        """One node's record: id, coordinates, degree, adjacency list."""
        return (
            self.node_id_bytes
            + 2 * self.coordinate_bytes
            + self.degree_bytes
            + out_degree * self.adjacency_entry_bytes()
        )

    def adjacency_bytes(self, network: RoadNetwork, node_ids: Optional[Iterable[int]] = None) -> int:
        """Total bytes of the adjacency records of ``node_ids`` (default: all)."""
        ids = network.node_ids() if node_ids is None else list(node_ids)
        return sum(self.node_record_bytes(network.out_degree(node_id)) for node_id in ids)

    # ------------------------------------------------------------------
    # Pre-computed information of the competitor methods
    # ------------------------------------------------------------------
    def landmark_vector_bytes(self, num_landmarks: int) -> int:
        """Per-node landmark distance vector (to and from each landmark)."""
        return 2 * num_landmarks * self.distance_bytes

    def arcflag_bytes_per_edge(self, num_regions: int) -> int:
        """Per-edge ArcFlag vector as transmitted on the air."""
        return num_regions * self.arcflag_region_bytes

    def spq_bytes(self, total_blocks: int) -> int:
        """Total bytes of all SPQ quad-tree blocks."""
        return total_blocks * self.quadtree_block_bytes

    def hiti_super_edge_bytes(self) -> int:
        """One HiTi super-edge: two endpoints plus a distance."""
        return 2 * self.node_id_bytes + self.distance_bytes

    # ------------------------------------------------------------------
    # EB / NR index components
    # ------------------------------------------------------------------
    def kd_split_bytes(self, num_regions: int) -> int:
        """First index component: ``n - 1`` kd splitting values."""
        return max(0, num_regions - 1) * self.coordinate_bytes

    def eb_index_bytes(self, num_regions: int) -> int:
        """EB's global index: kd splits, the n x n min/max array A, offsets."""
        matrix = num_regions * num_regions * 2 * self.distance_bytes
        offsets = num_regions * self.offset_bytes
        return self.kd_split_bytes(num_regions) + matrix + offsets

    def eb_cells_per_packet(self) -> int:
        """How many (min, max) cells of A fit in one packet payload."""
        from repro.broadcast.packet import PACKET_PAYLOAD_BYTES

        return max(1, PACKET_PAYLOAD_BYTES // (2 * self.distance_bytes))

    def nr_local_index_bytes(self, num_regions: int) -> int:
        """One NR local index Am: kd splits plus the n x n next-region array."""
        matrix = num_regions * num_regions * self.region_id_bytes
        return self.kd_split_bytes(num_regions) + matrix

    def nr_cells_per_packet(self) -> int:
        """How many next-region cells of Am fit in one packet payload."""
        from repro.broadcast.packet import PACKET_PAYLOAD_BYTES

        return max(1, PACKET_PAYLOAD_BYTES // self.region_id_bytes)


#: Layout shared by all schemes unless a caller overrides it.
DEFAULT_LAYOUT = RecordLayout()
