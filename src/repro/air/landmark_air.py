"""Broadcast adaptation of the Landmark (ALT) method (paper Section 3.2).

The cycle carries a distance vector per node (distances to and from each
landmark).  The client receives the whole cycle and runs A* with the landmark
lower bound.  If vector packets are lost, the lower bound of the affected
nodes is taken as 0 (Section 6.2), degrading A* toward Dijkstra but keeping
it correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.air.full_cycle import FullCycleScheme
from repro.air.registry import register_scheme
from repro.broadcast.packet import Segment, SegmentKind
from repro.index.landmark import LandmarkIndex
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import PathResult
from repro.network.graph import RoadNetwork
from repro.air.records import DEFAULT_LAYOUT, RecordLayout

__all__ = ["LandmarkBroadcastScheme", "LDParams"]


@dataclass(frozen=True)
class LDParams:
    """Tunable knobs of the Landmark (ALT) broadcast adaptation."""

    num_landmarks: int = 4


@register_scheme(
    "LD",
    params=LDParams,
    description="Full-cycle Landmark/ALT adaptation: adjacency + landmark vectors (Section 3.2)",
    config_map={"num_landmarks": "num_landmarks"},
)
class LandmarkBroadcastScheme(FullCycleScheme):
    """Adjacency plus per-node landmark vectors, received in full."""

    short_name = "LD"

    def __init__(
        self,
        network: RoadNetwork,
        num_landmarks: int = 4,
        layout: RecordLayout = DEFAULT_LAYOUT,
    ) -> None:
        super().__init__(network, layout)
        self._configure(num_landmarks=num_landmarks)
        self._build_state()

    def _build_state(self) -> None:
        self.index = LandmarkIndex(self.network, num_landmarks=self.num_landmarks)
        self.precomputation_seconds = self.index.precomputation_seconds

    def _artifact_state(self) -> dict:
        return {"index": self.index.state()}

    def _restore_state(self, state: dict) -> None:
        self.index = LandmarkIndex.from_state(self.network, state["index"])

    def _precomputed_segments(self) -> List[Segment]:
        vector_bytes = self.network.num_nodes * self.layout.landmark_vector_bytes(
            self.num_landmarks
        )
        return [
            Segment(
                name="landmark-vectors",
                kind=SegmentKind.PRECOMPUTED,
                size_bytes=vector_bytes,
                payload={"landmarks": self.index.landmarks},
            )
        ]

    def local_query(self, source: int, target: int, degraded: bool) -> PathResult:
        if degraded:
            # Lost vectors: lower bounds fall back to 0, i.e. plain Dijkstra.
            return shortest_path(self.network, source, target)
        return self.index.query(source, target)
