"""Base machinery for the full-cycle broadcast adaptations (Section 3.2).

Dijkstra, ArcFlag and Landmark cannot tune selectively: the node to expand
next may already have been broadcast, so waiting for it would cost up to one
cycle *per expansion*.  Their only viable adaptation is to listen to the
entire broadcast cycle, store it, and run the query locally.  This module
implements that shared behaviour; the concrete schemes differ only in what
extra pre-computed information rides along with the adjacency data and in the
local algorithm executed afterwards.

Packet-loss handling follows Section 6.2: lost *adjacency* packets must be
re-received in a later cycle (an incomplete graph could yield a wrong path),
while lost *pre-computed* packets are tolerated by degrading the information
(ArcFlag flags assumed all-ones, Landmark bounds assumed zero), which only
slows the local search down.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.air.base import AirClient, AirIndexScheme, ClientOptions, CpuTimer, QueryResult
from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind
from repro.network.algorithms.paths import PathResult
from repro.network.delta import NetworkDelta
from repro.network.graph import RoadNetwork

__all__ = ["FullCycleScheme", "FullCycleClient"]

#: Number of data segments the network adjacency data are split into.  Full
#: cycle methods receive everything anyway; splitting only makes the loss
#: bookkeeping (adjacency vs pre-computed packets) granular.
DATA_SEGMENTS = 16


class FullCycleScheme(AirIndexScheme):
    """A scheme whose client listens to the whole cycle before processing."""

    def _network_data_segments(self) -> List[Segment]:
        """Split the adjacency data into :data:`DATA_SEGMENTS` segments."""
        node_ids = self.network.node_ids()
        per_segment = max(1, -(-len(node_ids) // DATA_SEGMENTS))
        segments: List[Segment] = []
        for index in range(0, len(node_ids), per_segment):
            chunk = node_ids[index : index + per_segment]
            segments.append(
                Segment(
                    name=f"network-data-{index // per_segment}",
                    kind=SegmentKind.NETWORK_DATA,
                    size_bytes=self.layout.adjacency_bytes(self.network, chunk),
                    payload={"nodes": chunk},
                )
            )
        return segments

    def _precomputed_segments(self) -> List[Segment]:
        """Extra pre-computed information; none by default (Dijkstra)."""
        return []

    def build_cycle(self) -> BroadcastCycle:
        segments = self._network_data_segments() + self._precomputed_segments()
        return BroadcastCycle(segments, name=f"{self.short_name}-cycle")

    # ------------------------------------------------------------------
    # Incremental maintenance (dynamic networks)
    # ------------------------------------------------------------------
    def _refresh_precomputation(self, delta: NetworkDelta) -> bool:
        """Refresh weight-dependent pre-computed state for a weight delta.

        Full-cycle schemes whose pre-computation depends on edge weights
        (ArcFlag's flags, Landmark's distance vectors) keep the ``False``
        default, which routes them to a full rebuild.  Schemes with no
        weight-dependent state (Dijkstra) override this to return ``True``.
        """
        return False

    def incremental_rebuild(self, network: RoadNetwork, delta: NetworkDelta) -> bool:
        """Keep the data segments; re-emit only refreshed pre-computed ones.

        Data segments are weight-independent on both axes -- the chunking
        follows node-id order and the record sizes are degree-based -- so a
        weight-only delta leaves them untouched and they are reused as-is
        (trivially bit-identical to a from-scratch build).  Structural
        deltas (and schemes whose pre-computation cannot be refreshed) fall
        back to a full rebuild.
        """
        if network is not self.network or delta.structural:
            return False
        started = time.perf_counter()
        if not self._refresh_precomputation(delta):
            return False
        if self._cycle is None:
            self._cycle = self.build_cycle()
        else:
            precomputed = self._precomputed_segments()
            if precomputed:
                data = [
                    segment
                    for segment in self._cycle.segments
                    if segment.kind is SegmentKind.NETWORK_DATA
                ]
                self._cycle = BroadcastCycle(
                    data + precomputed, name=f"{self.short_name}-cycle"
                )
        return self._track_refresh(started)

    def _make_client(self, options: ClientOptions) -> "FullCycleClient":
        return FullCycleClient(self, options=options)

    # ------------------------------------------------------------------
    # Local processing hook
    # ------------------------------------------------------------------
    def local_query(self, source: int, target: int, degraded: bool) -> PathResult:
        """Run the scheme's local algorithm on the fully received network.

        ``degraded`` is ``True`` when pre-computed packets were lost and the
        Section 6.2 fallbacks must be used.
        """
        raise NotImplementedError


class FullCycleClient(AirClient):
    """Receives one entire cycle, then queries locally."""

    scheme: FullCycleScheme

    def process(
        self, source: int, target: int, session: ClientSession, memory: MemoryTracker
    ) -> QueryResult:
        cycle = session.cycle
        degraded = False

        # Receive every segment, in the order it next appears on the air.
        order = sorted(
            cycle.segments,
            key=lambda seg: (cycle.segment_start(seg.name) - session.start_position)
            % cycle.total_packets,
        )
        pending_retries: List[tuple] = []
        for segment in order:
            reception = session.receive_segment(segment.name)
            memory.allocate(segment.size_bytes)
            if reception.lost_offsets:
                if segment.kind == SegmentKind.NETWORK_DATA:
                    pending_retries.append((segment.name, list(reception.lost_offsets)))
                else:
                    degraded = True

        # Re-receive lost adjacency packets (possibly over several cycles).
        attempts = 0
        while pending_retries and attempts < 50:
            attempts += 1
            still_pending: List[tuple] = []
            for name, offsets in pending_retries:
                reception = session.receive_segment_packets(name, offsets)
                if reception.lost_offsets:
                    still_pending.append((name, list(reception.lost_offsets)))
            pending_retries = still_pending

        with CpuTimer(self.device) as timer:
            local = self.scheme.local_query(source, target, degraded)
        # Working structures (heap, distance maps) on top of the stored cycle.
        memory.allocate(_working_set_bytes(self.scheme))

        result = QueryResult(
            source=source,
            target=target,
            distance=local.distance,
            path=local.path,
        )
        result.metrics.cpu_seconds = timer.seconds
        result.metrics.extra["settled_nodes"] = float(local.settled)
        return result


def _working_set_bytes(scheme: FullCycleScheme) -> int:
    """Rough size of the search's own structures (distance map + heap)."""
    per_node = 3 * scheme.layout.distance_bytes + scheme.layout.node_id_bytes
    return scheme.network.num_nodes * per_node
