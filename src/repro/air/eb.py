"""The Elliptic Boundary (EB) method (paper Section 4).

Server side, EB partitions the network with a kd-tree, pre-computes shortest
paths between all border nodes, and broadcasts:

* an index whose first component is the kd splitting values and whose second
  component is the n x n array ``A`` of minimum/maximum inter-region
  distances (plus a per-region data offset column), replicated ``m`` times
  following the (1, m) scheme with copies forced between regions, and
* per region, a *cross-border* data segment (adjacency of nodes appearing on
  some pre-computed path) and a *local* segment (the remaining nodes).

Client side (Algorithm 1), the device reads one packet to find the next
index copy, receives the index, derives the upper bound
``UB = A[Rs][Rt].max``, prunes every region ``R`` with
``mindist(Rs, R) + mindist(R, Rt) > UB``, receives the surviving regions
(cross-border segments only, except for the source and target regions), and
runs Dijkstra in their union.

Packet loss (Section 6.2): the cells of ``A`` are packed into w x w squares
so that a lost index packet rarely covers the needed row/column; when it
does, the missing packets are re-received from the next index copy.  Lost
region packets are always re-received (an incomplete graph could produce a
wrong path).
"""

from __future__ import annotations

import copy as copy_module
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.air.base import AirClient, AirIndexScheme, ClientOptions, CpuTimer, QueryResult
from repro.air.registry import register_scheme
from repro.air.border_paths import BorderPathPrecomputation
from repro.air.memory_bound import (
    SuperEdgeGraph,
    compress_region,
    shortest_path_on_overlay,
)
from repro.air.packing import CellPacking, RowMajorCellPacking, SquareCellPacking
from repro.air.records import DEFAULT_LAYOUT, RecordLayout
from repro.broadcast.channel import ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.device import DeviceProfile
from repro.broadcast.interleave import optimal_m
from repro.broadcast.metrics import MemoryTracker
from repro.broadcast.packet import Segment, SegmentKind, packets_for_bytes
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.kernel import masked_shortest_path
from repro.network.graph import RoadNetwork
from repro.partitioning.kdtree import KDTreePartitioner, build_kdtree_partitioning
from repro.serialize.graphs import partitioning_state, restore_partitioning

__all__ = ["EllipticBoundaryScheme", "EllipticBoundaryClient", "EBParams"]


@dataclass(frozen=True)
class EBParams:
    """Tunable knobs of the Elliptic Boundary method."""

    num_regions: int = 32
    #: Square (w x w) packing of the A-matrix cells; ``False`` selects the
    #: row-major ablation baseline of Section 6.2 / Figure 9.
    square_packing: bool = True


@register_scheme(
    "EB",
    params=EBParams,
    description="Elliptic Boundary: global index + network-ellipse pruning (Section 4)",
    config_map={"num_regions": "eb_nr_regions"},
)
class EllipticBoundaryScheme(AirIndexScheme):
    """Server side of EB: pre-computation and broadcast cycle layout."""

    short_name = "EB"
    supports_memory_bound = True

    def __init__(
        self,
        network: RoadNetwork,
        num_regions: int = 32,
        layout: RecordLayout = DEFAULT_LAYOUT,
        square_packing: bool = True,
    ) -> None:
        super().__init__(network, layout)
        self._configure(num_regions=num_regions, square_packing=square_packing)
        self._build_state()

    def _configure(self, num_regions: int = 32, square_packing: bool = True) -> None:
        self.num_regions = num_regions
        self.square_packing = square_packing
        # Packet layout of the index segment: kd splits and the offset column
        # occupy the leading packets, then the A-matrix cells follow, packed
        # into squares (or row-major for the ablation baseline).
        header_bytes = self.layout.kd_split_bytes(num_regions) + num_regions * self.layout.offset_bytes
        self.index_header_packets = packets_for_bytes(header_bytes)
        packing_cls = SquareCellPacking if square_packing else RowMajorCellPacking
        self.cell_packing: CellPacking = packing_cls(
            num_regions, self.layout.eb_cells_per_packet()
        )
        self.index_packets = self.index_header_packets + self.cell_packing.num_packets
        #: Informational content of the index (what the client stores).
        self.index_bytes = self.layout.eb_index_bytes(num_regions)
        #: On-air size of one index copy, including the packing alignment
        #: (header packets and square-packed cell packets do not share space).
        from repro.broadcast.packet import PACKET_PAYLOAD_BYTES

        self.index_air_bytes = self.index_packets * PACKET_PAYLOAD_BYTES

    def _build_state(self) -> None:
        self.partitioning = build_kdtree_partitioning(self.network, self.num_regions)
        self.precomputation = BorderPathPrecomputation(self.network, self.partitioning)
        self.precomputation_seconds = self.precomputation.precomputation_seconds

    def _artifact_state(self) -> dict:
        return {
            "partitioning": partitioning_state(self.partitioning),
            "border_paths": self.precomputation.state(),
        }

    def _restore_state(self, state: dict) -> None:
        self.partitioning = restore_partitioning(self.network, state["partitioning"])
        self.precomputation = BorderPathPrecomputation.from_state(
            self.network, self.partitioning, state["border_paths"]
        )

    # ------------------------------------------------------------------
    # Cycle construction
    # ------------------------------------------------------------------
    def build_cycle(self) -> BroadcastCycle:
        region_groups = self._region_data_groups()
        data_packets = sum(
            segment.num_packets for group in region_groups for segment in group
        )
        copies = optimal_m(data_packets, self.index_packets)
        copies = min(copies, len(region_groups))

        # Place index copies between region groups so that no region's data
        # are interrupted by index packets.
        target_per_group = data_packets / copies
        segments: List[Segment] = []
        emitted_copies = 0
        packets_since_copy = 0.0
        segments.extend(self._index_copy(emitted_copies))
        emitted_copies += 1
        for position, group in enumerate(region_groups):
            remaining_groups = len(region_groups) - position
            remaining_copies = copies - emitted_copies
            if (
                emitted_copies < copies
                and packets_since_copy >= target_per_group
                and remaining_groups >= remaining_copies
            ):
                segments.extend(self._index_copy(emitted_copies))
                emitted_copies += 1
                packets_since_copy = 0.0
            segments.extend(group)
            packets_since_copy += sum(segment.num_packets for segment in group)
        return BroadcastCycle(segments, name="EB-cycle")

    # ------------------------------------------------------------------
    # Incremental maintenance (dynamic networks)
    # ------------------------------------------------------------------
    def incremental_rebuild(self, network: RoadNetwork, delta) -> bool:
        """Refresh the shared border-path pre-computation, then re-lay the cycle.

        The expensive part of an EB rebuild is the border-to-border
        pre-computation, which re-runs only the affected border sources
        (the kd partitioning depends on coordinates alone, so a weight-only
        delta keeps it).  The cycle itself is re-laid from scratch: its
        interleaving (index copy placement) depends on the new cross/local
        splits globally and costs a negligible fraction of one pre-compute.
        """
        if network is not self.network or delta.structural:
            return False
        started = time.perf_counter()
        if delta.changes:
            self.precomputation.refresh(delta.changes)
        if self._cycle is not None:
            self._cycle = self.build_cycle()
        return self._track_refresh(started)

    def shadow_rebuild(self, network: RoadNetwork, delta) -> Optional["EllipticBoundaryScheme"]:
        """Refresh into a structurally shared shadow instead of in place.

        Same sharing strategy as NR's override: the clone shares the kd
        partitioning and all untouched border-source records with the
        serving instance via :meth:`BorderPathPrecomputation.shadow`, so the
        serving instance's index array ``A`` and region splits stay frozen
        at their pre-delta values until the engine swaps the shadow in.
        """
        if network is not self.network or delta.structural:
            return None
        clone = copy_module.copy(self)
        clone.precomputation = self.precomputation.shadow()
        if clone.incremental_rebuild(network, delta):
            return clone
        return None

    def _index_copy(self, copy: int) -> List[Segment]:
        return [
            Segment(
                name=f"eb-index#copy{copy}",
                kind=SegmentKind.INDEX,
                size_bytes=self.index_air_bytes,
                payload={"copy": copy},
                metadata={"index_copy": copy},
            )
        ]

    def _region_data_groups(self) -> List[List[Segment]]:
        """Per-region [cross-border segment, local segment] pairs, in order."""
        groups: List[List[Segment]] = []
        for region in range(self.num_regions):
            cross_nodes = self.precomputation.cross_border_in_region(region)
            local_nodes = self.precomputation.local_in_region(region)
            group = [
                Segment(
                    name=f"region-{region}-cross",
                    kind=SegmentKind.REGION_CROSS_BORDER,
                    size_bytes=self.layout.adjacency_bytes(self.network, cross_nodes),
                    region=region,
                    payload={"nodes": cross_nodes},
                ),
                Segment(
                    name=f"region-{region}-local",
                    kind=SegmentKind.REGION_LOCAL,
                    size_bytes=self.layout.adjacency_bytes(self.network, local_nodes),
                    region=region,
                    payload={"nodes": local_nodes},
                ),
            ]
            groups.append(group)
        return groups

    # ------------------------------------------------------------------
    # Index packet layout helpers (shared with the client)
    # ------------------------------------------------------------------
    def needed_index_packets(self, source_region: int, target_region: int) -> Set[int]:
        """Index packet offsets whose loss forces waiting for another copy.

        These are the header packets (kd splits + offsets) plus the packets
        covering row ``source_region`` and column ``target_region`` of A.
        """
        needed = set(range(self.index_header_packets))
        for packet in self.cell_packing.packets_for_row_and_column(
            source_region, target_region
        ):
            needed.add(self.index_header_packets + packet)
        return needed

    def splitting_values(self) -> List[float]:
        """The kd splitting values (first index component)."""
        locator = self.partitioning.locator
        if isinstance(locator, KDTreePartitioner):
            return locator.splitting_values()
        return []

    # ------------------------------------------------------------------
    # Client
    # ------------------------------------------------------------------
    def _make_client(self, options: ClientOptions) -> "EllipticBoundaryClient":
        return EllipticBoundaryClient(self, options=options)


class EllipticBoundaryClient(AirClient):
    """Client side of EB: Algorithm 1 with loss handling and Section 6.1 mode."""

    scheme: EllipticBoundaryScheme

    def __init__(
        self,
        scheme: EllipticBoundaryScheme,
        device: Optional[DeviceProfile] = None,
        options: Optional[ClientOptions] = None,
    ) -> None:
        super().__init__(scheme, device, options)
        self.memory_bound = self.options.memory_bound

    # ------------------------------------------------------------------
    # Query protocol
    # ------------------------------------------------------------------
    def process(
        self, source: int, target: int, session: ClientSession, memory: MemoryTracker
    ) -> QueryResult:
        scheme = self.scheme
        cycle = session.cycle

        # Step 1: read the packet currently on the air; it carries the offset
        # of the next index copy.
        session.receive_one_packet()

        # Step 2: receive the next index copy in full.
        source_region = scheme.partitioning.region_of(source)
        target_region = scheme.partitioning.region_of(target)
        self._receive_index(session, source_region, target_region)
        memory.allocate(scheme.index_bytes)

        # Step 3: decide which regions are needed (the "network ellipse").
        needed_regions = scheme.precomputation.needed_regions_eb(
            source_region, target_region
        )

        # Step 4: receive the needed region segments in broadcast order.
        wanted_segments: List[str] = []
        for region in needed_regions:
            wanted_segments.append(f"region-{region}-cross")
            if region in (source_region, target_region):
                wanted_segments.append(f"region-{region}-local")
        ordered = sorted(
            wanted_segments,
            key=lambda name: (cycle.segment_start(name) - session.position)
            % cycle.total_packets,
        )

        received_nodes: Set[int] = set()
        overlay = SuperEdgeGraph()
        region_nodes: Dict[int, Set[int]] = {}
        pending_retries: List[Tuple[str, List[int]]] = []
        cpu = CpuTimer(self.device)
        for name in ordered:
            segment = cycle.segment(name)
            reception = session.receive_segment(name)
            if reception.lost_offsets:
                # Defer recovery: keep receiving the remaining regions this
                # cycle and fetch the missing packets afterwards (Section 6.2).
                pending_retries.append((name, list(reception.lost_offsets)))
            memory.allocate(segment.size_bytes)
            nodes = segment.payload["nodes"]
            received_nodes.update(nodes)
            region_nodes.setdefault(segment.region, set()).update(nodes)
            if self.memory_bound and segment.region not in (source_region, target_region):
                # Compress the intermediate region right away and release it.
                with cpu:
                    before = overlay.size_bytes
                    compress_region(
                        overlay,
                        scheme.network,
                        region_nodes[segment.region],
                        scheme.partitioning.border_nodes(segment.region),
                        extra_terminals=(),
                        layout=scheme.layout,
                        keep_expansions=False,
                    )
                memory.allocate(overlay.size_bytes - before)
                memory.release(segment.size_bytes)

        # Recover any region packets lost during the first pass; adjacency
        # data must be complete before the local search.
        attempts = 0
        while pending_retries and attempts < 50:
            attempts += 1
            still_pending: List[Tuple[str, List[int]]] = []
            for name, offsets in pending_retries:
                retry = session.receive_segment_packets(name, offsets)
                if retry.lost_offsets:
                    still_pending.append((name, list(retry.lost_offsets)))
            pending_retries = still_pending

        # Step 5: compute the shortest path locally.
        if self.memory_bound:
            with cpu:
                for region in sorted({source_region, target_region}):
                    terminals = []
                    if region == source_region:
                        terminals.append(source)
                    if region == target_region:
                        terminals.append(target)
                    before = overlay.size_bytes
                    compress_region(
                        overlay,
                        scheme.network,
                        region_nodes.get(region, set()),
                        scheme.partitioning.border_nodes(region),
                        extra_terminals=terminals,
                        layout=scheme.layout,
                        expansion_terminals=terminals,
                    )
                    memory.allocate(overlay.size_bytes - before)
                    # The raw region data are no longer needed once compressed.
                    memory.release(
                        cycle.segment(f"region-{region}-cross").size_bytes
                        + cycle.segment(f"region-{region}-local").size_bytes
                    )
                distance, path, settled = shortest_path_on_overlay(
                    overlay, source, target
                )
        else:
            with cpu:
                # Masked kernel search over the network's CSR snapshot
                # restricted to the received nodes: same answers (and settled
                # count) as Dijkstra on the induced subgraph, without
                # materializing a RoadNetwork per query.  The subgraph path
                # remains as the reference fallback for snapshot-less
                # networks (e.g. structurally mutated since the build).
                local = masked_shortest_path(
                    scheme.network, source, target, received_nodes
                )
                if local is None:
                    subgraph = scheme.network.subgraph(received_nodes)
                    local = shortest_path(subgraph, source, target)
                distance, path, settled = local.distance, local.path, local.settled
            memory.allocate(_working_set_bytes(scheme, len(received_nodes)))

        result = QueryResult(
            source=source,
            target=target,
            distance=distance,
            path=path,
            received_regions=needed_regions,
        )
        result.metrics.cpu_seconds = cpu.seconds
        result.metrics.extra["settled_nodes"] = float(settled)
        result.metrics.extra["needed_regions"] = float(len(needed_regions))
        return result

    # ------------------------------------------------------------------
    # Reception helpers
    # ------------------------------------------------------------------
    def _receive_index(
        self, session: ClientSession, source_region: int, target_region: int
    ) -> None:
        """Receive the next index copy, recovering needed packets if lost."""
        cycle = session.cycle
        scheme = self.scheme
        _, start = cycle.next_segment_of_kind(SegmentKind.INDEX, session.position)
        segment = cycle.segment_at(start)
        reception = session.receive_segment(segment.name)
        needed = scheme.needed_index_packets(source_region, target_region)
        lost_needed = sorted(set(reception.lost_offsets) & needed)
        attempts = 0
        while lost_needed and attempts < 50:
            attempts += 1
            # Wait for the next index copy and re-receive only the needed
            # packets that were lost.
            _, start = cycle.next_segment_of_kind(SegmentKind.INDEX, session.position)
            next_copy = cycle.segment_at(start)
            retry = session.receive_segment_packets(next_copy.name, lost_needed)
            lost_needed = sorted(set(retry.lost_offsets) & needed)

def _working_set_bytes(scheme: EllipticBoundaryScheme, num_nodes: int) -> int:
    """Search structures (distance map, heap) over the received sub-network."""
    per_node = 3 * scheme.layout.distance_bytes + scheme.layout.node_id_bytes
    return num_nodes * per_node
