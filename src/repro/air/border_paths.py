"""Shared EB/NR server-side pre-computation over border nodes.

Both EB and NR pre-compute the shortest paths between border nodes of the
partitioned network (paper Sections 4.1 and 5; the paper notes their
pre-computation cost is identical).  From those paths this module derives:

* the minimum and maximum shortest path distance between every ordered pair
  of regions (EB's array ``A``),
* the set of *cross-border* nodes -- nodes appearing on at least one
  pre-computed path -- used to split each region's data into a cross-border
  and a local segment, and
* for every ordered region pair, the set of regions traversed by any
  pre-computed shortest path between border nodes of those regions (NR's
  region sets).

The paper defines the pre-computed set ``S`` over border-node pairs from
*different* regions.  We additionally include pairs of border nodes of the
*same* region so that queries whose source and destination fall in one region
remain covered; this only grows the index conservatively (documented
deviation, see DESIGN.md).

Dynamic networks: the computation is organized as one independent record per
border *source* (its full distance/predecessor labels over the CSR snapshot,
plus everything derived from its shortest path tree), and the published
aggregates are a pure, order-free fold over those records.
:meth:`BorderPathPrecomputation.refresh` exploits that three ways:

* :meth:`affected_sources` decides -- exactly, from the cached labels and
  the old/new weights -- which sources a change batch can touch, vectorized
  over a cached ``sources x nodes`` distance matrix when numpy is available;
* each affected source is brought up to date by :meth:`_repair_source`, a
  batch Ramalingam-Reps-style repair that seeds a priority queue from the
  endpoints of the changed edges and settles only the nodes whose distance
  (or tie-broken predecessor) actually moves, instead of re-running the
  source's Dijkstra from scratch; and
* the per-source contributions are re-derived by a memoized predecessor-
  chain walk whose cost is proportional to the tree paths actually touched,
  after which the aggregates re-fold.

Unaffected sources provably have bit-identical labels, and the repair
reconverges to the same unique float fixed point with the same canonical
tie-breaks as the kernel (see :meth:`_repair_source`), so the refreshed
state equals a from-scratch rebuild bit for bit.
"""

from __future__ import annotations

import heapq
import time
from array import array
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.network.algorithms import kernel
from repro.network.algorithms.paths import INFINITY
from repro.network.delta import WeightChange
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["BorderPathPrecomputation"]


def _regions_from_mask(mask: int) -> Set[int]:
    """Decode a traversed-regions bitmask back into a region-id set."""
    regions: Set[int] = set()
    region = 0
    while mask:
        if mask & 1:
            regions.add(region)
        mask >>= 1
        region += 1
    return regions


@dataclass
class _BorderSource:
    """Everything pre-computed from one border source node.

    The published aggregates (min/max region distances, cross-border node
    set, traversed-region sets) are folds over these records, which is what
    lets :meth:`BorderPathPrecomputation.refresh` re-run only the affected
    sources after a weight update.

    ``dist``/``pred`` are the full kernel labels indexed by CSR node index
    (``inf`` / ``-1`` for unreached nodes).  Records are treated as
    immutable once built: a refresh *replaces* the record of an affected
    source, so a shadow copy (:meth:`BorderPathPrecomputation.shadow`) can
    share the unchanged ones.
    """

    node: int
    region: int
    #: Dijkstra distance labels, indexed by CSR node index.
    dist: array
    #: Shortest path tree predecessors (CSR indexes; ``-1`` = none).
    pred: array
    #: Nodes on at least one pre-computed path from this source.
    cross_nodes: Set[int] = field(default_factory=set)
    #: Finite border-pair count contributed by this source.
    finite_pairs: int = 0
    #: Target region -> min / max shortest distance from this source.
    min_to: Dict[int, float] = field(default_factory=dict)
    max_to: Dict[int, float] = field(default_factory=dict)
    #: Target region -> regions traversed by the pre-computed paths there.
    traversed: Dict[int, Set[int]] = field(default_factory=dict)


class BorderPathPrecomputation:
    """All border-to-border shortest path information EB and NR need."""

    def __init__(self, network: RoadNetwork, partitioning: Partitioning) -> None:
        self.network = network
        self.partitioning = partitioning
        num_regions = partitioning.num_regions
        self.num_regions = num_regions

        #: ``min_distance[i][j]`` / ``max_distance[i][j]``: extreme shortest
        #: path distances from a border node of region i to one of region j.
        self.min_distance: List[List[float]] = []
        self.max_distance: List[List[float]] = []
        #: Nodes appearing on at least one pre-computed border-to-border path.
        self.cross_border_nodes: Set[int] = set()
        #: ``traversed_regions[(i, j)]``: regions crossed by any pre-computed
        #: shortest path from a border node of i to a border node of j.
        self.traversed_regions: Dict[Tuple[int, int], Set[int]] = {}
        self.num_border_pairs = 0
        self.precomputation_seconds = 0.0
        #: Backing storage of the ``_sources`` property; a restore keeps the
        #: records encoded in ``_sources_blob`` until a refresh needs them.
        self._source_records: List[_BorderSource] = []
        self._sources_blob = None
        #: Cached ``sources x nodes`` float64 distance matrix backing the
        #: vectorized affected-source test (built lazily, rows updated in
        #: place by :meth:`refresh`).
        self._dist_matrix = None

        self._compute()

    def _compute(self) -> None:
        started = time.perf_counter()
        partitioning = self.partitioning

        border_by_region: List[List[int]] = [
            partitioning.border_nodes(region) for region in range(self.num_regions)
        ]
        #: ``(node, region)`` for every border node, in region-then-list order.
        self._all_border: List[Tuple[int, int]] = [
            (node, region)
            for region in range(self.num_regions)
            for node in border_by_region[region]
        ]
        self._border_set = {node for node, _ in self._all_border}

        # One batched kernel sweep covers every border source: the arena's
        # many-to-many path computes the distance labels of whole source
        # chunks per accelerated call, and each source's shortest path tree
        # arrives as flat index arrays the derivation below walks.
        csr = self.network.ensure_csr()
        arena = kernel.arena_for(csr)
        sweeps = arena.many_to_many(
            [source for source, _ in self._all_border], need_predecessors=True
        )
        ctx = self._derive_context(csr)
        self._source_records = [
            self._record_from_labels(
                array("d", sweep.dist), array("q", sweep.pred), source, region, ctx
            )
            for sweep, (source, region) in zip(sweeps, self._all_border)
        ]
        self._dist_matrix = None
        self._aggregate()
        self.precomputation_seconds = time.perf_counter() - started

    def _derive_context(self, csr) -> Tuple:
        """Per-snapshot arrays shared by every per-source derivation.

        ``region_bit[i]`` is the region bitmask bit of CSR index ``i`` and
        ``border`` the roster as ``(node, index, region)`` triples -- built
        once per build/refresh instead of per source.
        """
        region_of = self.partitioning.region_of
        ids = csr.ids
        index_of = csr.index_of
        region_bit = [1 << region_of(node_id) for node_id in ids]
        border = [(node, index_of[node], region) for node, region in self._all_border]
        border_indexes = {index for _node, index, _region in border}
        return ids, index_of, region_bit, border, border_indexes

    def _compute_source(
        self, source: int, source_region: int, ctx: Optional[Tuple] = None
    ) -> _BorderSource:
        """Run one border source's Dijkstra and derive its contributions."""
        csr = self.network.ensure_csr()
        arena = kernel.arena_for(csr)
        sweep = arena.sssp(source, need_predecessors=True)
        if ctx is None:
            ctx = self._derive_context(csr)
        return self._record_from_labels(
            array("d", sweep.dist), array("q", sweep.pred), source, source_region, ctx
        )

    def _record_from_labels(
        self,
        dist: array,
        pred: array,
        source: int,
        source_region: int,
        ctx: Tuple,
    ) -> _BorderSource:
        """Fold one source's labels into its published contributions.

        A single pass over the border roster walks each finite target's
        predecessor chain *once*: every visited node memoizes the bitmask of
        regions on its source path, so a chain walk stops at the first node
        already carrying a mask (whose ancestors were necessarily walked
        before).  The cross-border set and the per-region traversed sets
        fall out of the same walk; the fold's cost is proportional to the
        number of distinct tree-path nodes, not paths times path length.
        Order-free over the tree, so it serves scratch builds and repairs
        alike.
        """
        ids, index_of, region_bit, border, _border_indexes = ctx
        source_index = index_of[source]
        mask: List[int] = [0] * len(dist)
        mask[source_index] = region_bit[source_index]
        cross_nodes: Set[int] = {source}
        cross_add = cross_nodes.add
        min_to: Dict[int, float] = {}
        max_to: Dict[int, float] = {}
        trav_mask: Dict[int, int] = {}
        finite_pairs = 0

        for target, target_index, target_region in border:
            if target == source:
                continue
            distance = dist[target_index]
            if distance == INFINITY:
                continue
            finite_pairs += 1
            if distance < min_to.get(target_region, INFINITY):
                min_to[target_region] = distance
            if distance > max_to.get(target_region, -1.0):
                max_to[target_region] = distance

            m = mask[target_index]
            if not m:
                stack: List[int] = []
                node = target_index
                while not mask[node]:
                    stack.append(node)
                    node = pred[node]
                m = mask[node]
                while stack:
                    node = stack.pop()
                    m |= region_bit[node]
                    mask[node] = m
                    cross_add(ids[node])
            trav_mask[target_region] = trav_mask.get(target_region, 0) | m

        return _BorderSource(
            node=source,
            region=source_region,
            dist=dist,
            pred=pred,
            cross_nodes=cross_nodes,
            finite_pairs=finite_pairs,
            min_to=min_to,
            max_to=max_to,
            traversed={
                region: _regions_from_mask(m) for region, m in trav_mask.items()
            },
        )

    def _aggregate(self) -> None:
        """Fold the per-source records into the published aggregates.

        Pure and order-free (mins, maxes, unions, sums), so re-folding after
        an incremental refresh yields exactly what a from-scratch build would.
        """
        n = self.num_regions
        self.min_distance = [[INFINITY] * n for _ in range(n)]
        self.max_distance = [[INFINITY] * n for _ in range(n)]
        self.cross_border_nodes = set()
        self.traversed_regions = {}
        self.num_border_pairs = 0
        max_seen: List[List[float]] = [[-1.0] * n for _ in range(n)]

        for record in self._sources:
            i = record.region
            self.cross_border_nodes |= record.cross_nodes
            self.num_border_pairs += record.finite_pairs
            row_min = self.min_distance[i]
            row_max = max_seen[i]
            for j, value in record.min_to.items():
                if value < row_min[j]:
                    row_min[j] = value
            for j, value in record.max_to.items():
                if value > row_max[j]:
                    row_max[j] = value
            for j, regions in record.traversed.items():
                self.traversed_regions.setdefault((i, j), set()).update(regions)

        for i in range(n):
            for j in range(n):
                if max_seen[i][j] >= 0.0:
                    self.max_distance[i][j] = max_seen[i][j]

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The computed state as plain values (see :mod:`repro.serialize`).

        Two parts with different service lives: the published *aggregates*
        (what query processing reads) are stored eagerly, while the heavy
        per-source records (only :meth:`refresh` needs them) are packed
        columnar -- a handful of flat int/float arrays instead of thousands
        of small dicts -- and nested as one pre-encoded blob that
        :meth:`from_state` defers decoding until the first refresh.  That
        keeps a warm start independent of the per-source table size without
        giving up bit-identical refreshes.
        """
        from repro.serialize.codec import encode_value

        if self._source_records is None:
            # Restored and never refreshed: the records are still encoded;
            # re-publish the blob as-is instead of a decode/encode round.
            sources_blob = self._sources_blob
        else:
            sources_blob = encode_value(self._sources_columnar())
        flat_min = [value for row in self.min_distance for value in row]
        flat_max = [value for row in self.max_distance for value in row]
        trav_items: List[int] = []
        trav_offsets: List[int] = [0]
        trav_keys_i: List[int] = []
        trav_keys_j: List[int] = []
        for (i, j), regions in self.traversed_regions.items():
            trav_keys_i.append(i)
            trav_keys_j.append(j)
            trav_items.extend(sorted(regions))
            trav_offsets.append(len(trav_items))
        return {
            "all_border": {
                "nodes": [node for node, _ in self._all_border],
                "regions": [region for _, region in self._all_border],
            },
            "aggregates": {
                "min_distance": flat_min,
                "max_distance": flat_max,
                "cross_border_nodes": sorted(self.cross_border_nodes),
                "trav_keys_i": trav_keys_i,
                "trav_keys_j": trav_keys_j,
                "trav_offsets": trav_offsets,
                "trav_items": trav_items,
                "num_border_pairs": self.num_border_pairs,
            },
            "sources_blob": sources_blob,
            "seconds": self.precomputation_seconds,
        }

    def _sources_columnar(self) -> Dict[str, Any]:
        """The per-source records as flat columns (orders preserved).

        The ``dist``/``pred`` labels are positional (every source carries
        exactly ``num_nodes`` entries), so they concatenate without offset
        columns and hit the codec's homogeneous bulk paths; the remaining
        per-record containers are concatenated with offsets.  Dict insertion
        orders (encounter order for ``min_to``/``max_to``/``traversed``)
        survive the concatenation; sets are stored sorted.
        """
        sources = self._sources
        columns: Dict[str, Any] = {
            "num_nodes": len(sources[0].dist) if sources else 0,
            "node": [],
            "region": [],
            "finite_pairs": [],
            "dist_values": [],
            "pred_values": [],
            "cross_offsets": [0],
            "cross_items": [],
            "min_offsets": [0],
            "min_keys": [],
            "min_values": [],
            "max_offsets": [0],
            "max_keys": [],
            "max_values": [],
            "trav_offsets": [0],
            "trav_keys": [],
            "trav_set_offsets": [0],
            "trav_set_items": [],
        }
        for record in sources:
            columns["node"].append(record.node)
            columns["region"].append(record.region)
            columns["finite_pairs"].append(record.finite_pairs)
            columns["dist_values"].extend(record.dist)
            columns["pred_values"].extend(record.pred)
            columns["cross_items"].extend(sorted(record.cross_nodes))
            columns["cross_offsets"].append(len(columns["cross_items"]))
            columns["min_keys"].extend(record.min_to.keys())
            columns["min_values"].extend(record.min_to.values())
            columns["min_offsets"].append(len(columns["min_keys"]))
            columns["max_keys"].extend(record.max_to.keys())
            columns["max_values"].extend(record.max_to.values())
            columns["max_offsets"].append(len(columns["max_keys"]))
            for region, regions in record.traversed.items():
                columns["trav_keys"].append(region)
                columns["trav_set_items"].extend(sorted(regions))
                columns["trav_set_offsets"].append(len(columns["trav_set_items"]))
            columns["trav_offsets"].append(len(columns["trav_keys"]))
        return columns

    @staticmethod
    def _sources_from_columnar(columns: Dict[str, Any]) -> List[_BorderSource]:
        """Inverse of :meth:`_sources_columnar`."""
        records: List[_BorderSource] = []
        num_nodes = columns["num_nodes"]
        dist_values = columns["dist_values"]
        pred_values = columns["pred_values"]
        for index, (node, region, finite) in enumerate(
            zip(columns["node"], columns["region"], columns["finite_pairs"])
        ):
            c0, c1 = columns["cross_offsets"][index : index + 2]
            m0, m1 = columns["min_offsets"][index : index + 2]
            x0, x1 = columns["max_offsets"][index : index + 2]
            t0, t1 = columns["trav_offsets"][index : index + 2]
            traversed: Dict[int, Set[int]] = {}
            for position in range(t0, t1):
                s0, s1 = columns["trav_set_offsets"][position : position + 2]
                traversed[columns["trav_keys"][position]] = set(
                    columns["trav_set_items"][s0:s1]
                )
            base = index * num_nodes
            records.append(
                _BorderSource(
                    node=node,
                    region=region,
                    dist=array("d", dist_values[base : base + num_nodes]),
                    pred=array("q", pred_values[base : base + num_nodes]),
                    cross_nodes=set(columns["cross_items"][c0:c1]),
                    finite_pairs=finite,
                    min_to=dict(
                        zip(columns["min_keys"][m0:m1], columns["min_values"][m0:m1])
                    ),
                    max_to=dict(
                        zip(columns["max_keys"][x0:x1], columns["max_values"][x0:x1])
                    ),
                    traversed=traversed,
                )
            )
        return records

    @classmethod
    def from_state(
        cls, network: RoadNetwork, partitioning: Partitioning, state: Dict[str, Any]
    ) -> "BorderPathPrecomputation":
        """Reconstruct from :meth:`state` output without re-running Dijkstra.

        The published aggregates install directly; the per-source blob stays
        encoded until the first :meth:`refresh`/:meth:`affected_sources`
        call touches :attr:`_sources` (serving queries never does).
        """
        self = object.__new__(cls)
        self.network = network
        self.partitioning = partitioning
        n = partitioning.num_regions
        self.num_regions = n
        roster = state["all_border"]
        self._all_border = list(zip(roster["nodes"], roster["regions"]))
        self._border_set = set(roster["nodes"])
        aggregates = state["aggregates"]
        flat_min = aggregates["min_distance"]
        flat_max = aggregates["max_distance"]
        self.min_distance = [flat_min[i * n : (i + 1) * n] for i in range(n)]
        self.max_distance = [flat_max[i * n : (i + 1) * n] for i in range(n)]
        self.cross_border_nodes = set(aggregates["cross_border_nodes"])
        self.traversed_regions = {
            (i, j): set(aggregates["trav_items"][start:end])
            for i, j, start, end in zip(
                aggregates["trav_keys_i"],
                aggregates["trav_keys_j"],
                aggregates["trav_offsets"],
                aggregates["trav_offsets"][1:],
            )
        }
        self.num_border_pairs = aggregates["num_border_pairs"]
        self._source_records = None
        self._sources_blob = state["sources_blob"]
        self._dist_matrix = None
        self.precomputation_seconds = state["seconds"]
        return self

    def shadow(self) -> "BorderPathPrecomputation":
        """A structurally shared copy safe to :meth:`refresh` independently.

        Records are immutable once built and a refresh replaces -- never
        mutates -- the affected ones, so the shadow shares every record with
        its parent through a shallow list copy; ``_aggregate`` likewise
        assigns fresh aggregate containers instead of mutating the shared
        ones.  This is what makes the engine's double-buffered
        ``refresh_async`` cheap: the serving instance keeps answering from
        its pre-delta state while the shadow repairs.
        """
        clone = object.__new__(BorderPathPrecomputation)
        clone.__dict__.update(self.__dict__)
        if self._source_records is not None:
            clone._source_records = list(self._source_records)
        clone._dist_matrix = None
        return clone

    @property
    def _sources(self) -> List[_BorderSource]:
        """The per-source records, decoding the deferred blob on first use."""
        if self._source_records is None:
            from repro.serialize.codec import decode_value

            self._source_records = self._sources_from_columnar(
                decode_value(self._sources_blob)
            )
            self._sources_blob = None
        return self._source_records

    # ------------------------------------------------------------------
    # Incremental refresh
    # ------------------------------------------------------------------
    def affected_sources(self, changes: Sequence[WeightChange]) -> List[int]:
        """Indexes of border sources whose results a change batch can touch.

        For a source with cached distances ``d``, a weight change on edge
        ``(u, v)`` is relevant iff ``d(u) + min(old, new) <= d(v)`` (with
        ``u`` reached), which unfolds to

        * **decrease** (``new < old``): ``d(u) + new <= d(v)`` -- the cheaper
          edge creates (or ties) a shorter path through ``(u, v)``; or
        * **increase** (``new > old``): ``d(u) + old <= d(v)`` -- by the
          triangle inequality ``d(v) <= d(u) + old`` always holds, so this is
          the tightness test ``d(u) + old == d(v)``, i.e. "some shortest path
          uses ``(u, v)`` as its final hop into ``v``" (and any shortest path
          through the edge has such a prefix).

        Both tests include ties, which makes the unaffected set *provably*
        bit-identical under a re-run: the old distance labels remain a
        feasible potential and the old shortest path tree contains no changed
        edge, so Dijkstra's relaxations (and tie-breaks) replay unchanged.

        With numpy available the test runs vectorized over the kernel-style
        label matrix (one ``sources``-length column test per change) instead
        of the O(sources x changes) Python scan.
        """
        relevant = [change for change in changes if not change.is_noop]
        if not relevant:
            return []
        sources = self._sources
        if not sources:
            return []
        index_of = self.network.ensure_csr().index_of
        np_mod = kernel.numpy_or_none()
        if np_mod is not None:
            matrix = self._ensure_dist_matrix(np_mod)
            hit = np_mod.zeros(len(sources), dtype=bool)
            for change in relevant:
                u = index_of.get(change.source)
                v = index_of.get(change.target)
                if u is None or v is None:
                    continue
                du = matrix[:, u]
                weight = min(change.old_weight, change.new_weight)
                # ``inf + w <= inf`` is true in IEEE arithmetic, but an
                # unreached tail can never carry a path -- mask it out.
                hit |= np_mod.isfinite(du) & (du + weight <= matrix[:, v])
            return np_mod.flatnonzero(hit).tolist()

        affected: List[int] = []
        for index, record in enumerate(sources):
            dist = record.dist
            for change in relevant:
                u = index_of.get(change.source)
                v = index_of.get(change.target)
                if u is None or v is None:
                    continue
                du = dist[u]
                if du == INFINITY:
                    continue
                if du + min(change.old_weight, change.new_weight) <= dist[v]:
                    affected.append(index)
                    break
        return affected

    def _ensure_dist_matrix(self, np_mod):
        """The cached ``sources x nodes`` float64 label matrix."""
        sources = self._sources
        num_nodes = len(sources[0].dist) if sources else 0
        matrix = self._dist_matrix
        if matrix is None or matrix.shape != (len(sources), num_nodes):
            matrix = np_mod.empty((len(sources), num_nodes), dtype=np_mod.float64)
            for row, record in enumerate(sources):
                matrix[row] = np_mod.frombuffer(record.dist)
            self._dist_matrix = matrix
        return matrix

    def refresh(self, changes: Sequence[WeightChange]) -> int:
        """Repair the affected border sources after a weight-change batch.

        Only valid for weight changes (the caller handles structural changes
        with a full rebuild: they can move borders).  Each affected source is
        repaired in place of its record -- never from scratch -- unless the
        snapshot carries non-positive weights, where the settle-order
        arguments behind the repair's tie-breaking do not hold and the
        per-source Dijkstra re-run remains the fallback.  Returns the number
        of affected sources; the published aggregates afterwards equal a
        from-scratch :class:`BorderPathPrecomputation` over the mutated
        network, bit for bit.
        """
        relevant = [change for change in changes if not change.is_noop]
        affected = self.affected_sources(relevant)
        if not affected:
            return 0
        csr = self.network.ensure_csr()
        ctx = self._derive_context(csr)
        index_of = csr.index_of
        repair_changes: Optional[List[Tuple[int, int, float, float]]] = None
        if not csr.has_nonpositive_weight:
            repair_changes = [
                (
                    index_of[change.source],
                    index_of[change.target],
                    change.old_weight,
                    change.new_weight,
                )
                for change in relevant
                if change.source in index_of and change.target in index_of
            ]
        np_mod = kernel.numpy_or_none()
        replaced = 0
        derived_changed = False
        for index in affected:
            record = self._sources[index]
            if repair_changes is None:
                new_record = self._compute_source(record.node, record.region, ctx)
            else:
                new_record = self._repair_source(record, repair_changes, csr, ctx)
            if new_record is record:
                continue  # affected but provably unmoved: keep the record
            self._sources[index] = new_record
            replaced += 1
            if new_record.min_to is not record.min_to:
                derived_changed = True
            if self._dist_matrix is not None and np_mod is not None:
                self._dist_matrix[index] = np_mod.frombuffer(new_record.dist)
        if derived_changed:
            # Repairs that only moved interior labels share the old record's
            # derived fields by reference; the fold inputs are then unchanged
            # and the published aggregates already equal a scratch build's.
            self._aggregate()
        return len(affected)

    def _repair_source(
        self,
        record: _BorderSource,
        changes: List[Tuple[int, int, float, float]],
        csr,
        ctx: Tuple,
    ) -> _BorderSource:
        """Batch dynamic SSSP repair of one source's labels (Ramalingam-Reps).

        Phase A invalidates the subtree hanging off every *tree* edge whose
        weight increased (its nodes are the only ones whose distance can
        grow) and re-seeds each invalidated node from its best intact
        in-neighbor.  Phase B seeds the queue from the tails of every
        changed edge and runs a bounded Dijkstra that settles only nodes
        whose label actually moves.  Finally, canonical predecessors --
        ``argmin`` over achieving in-edges of ``(dist[u], u)``, exactly the
        kernel reconstruction's "first achieving relaxation in settle order"
        -- are recomputed for every node whose tree attachment could have
        changed.

        Bit-identity: every label is produced by the same ``dist[u] + w``
        float expression a scratch Dijkstra evaluates, and under strictly
        positive weights the converged labels are the unique fixed point of
        those expressions, so the repaired labels (and the tie-broken tree)
        equal a scratch sweep's exactly.  If neither a distance nor a
        predecessor moved, the original record is returned unchanged.
        """
        fwd_adj = csr.fwd_adj
        rev_adj = csr.rev_adj
        _, index_of, _, _, border_indexes = ctx
        source_index = index_of[record.node]
        dist = array("d", record.dist)
        pred = array("q", record.pred)

        # Phase A: collect the subtrees hanging off broken tree edges.  The
        # supporting-weight test uses the *pre-batch* weight (the delta's
        # coalesced first-old), because the cached labels were computed over
        # exactly that weight.
        invalid: List[int] = []
        invalid_flag = bytearray(len(dist))
        for u, v, old_weight, new_weight in changes:
            if (
                new_weight > old_weight
                and not invalid_flag[v]
                and pred[v] == u
                and dist[u] + old_weight == dist[v]
            ):
                invalid_flag[v] = 1
                stack = [v]
                while stack:
                    x = stack.pop()
                    invalid.append(x)
                    for child, _w in fwd_adj[x]:
                        if pred[child] == x and not invalid_flag[child]:
                            invalid_flag[child] = 1
                            stack.append(child)

        old_dist: Dict[int, float] = {}
        for x in invalid:
            old_dist[x] = dist[x]
            dist[x] = INFINITY

        heap: List[Tuple[float, int]] = []
        push = heapq.heappush
        pop = heapq.heappop
        # Re-seed every invalidated node from its best currently-intact
        # in-neighbor (an over-estimate is fine: phase B settles downward).
        for x in invalid:
            best = INFINITY
            for u, w in rev_adj[x]:
                candidate = dist[u] + w
                if candidate < best:
                    best = candidate
            if best < INFINITY:
                dist[x] = best
                push(heap, (best, x))

        # Seed from the tails of every changed edge: a decreased edge can
        # only open a shorter path through a relaxation out of its tail.
        for u in {change[0] for change in changes}:
            du = dist[u]
            if du == INFINITY:
                continue
            for v, w in fwd_adj[u]:
                candidate = du + w
                if candidate < dist[v]:
                    if v not in old_dist:
                        old_dist[v] = dist[v]
                    dist[v] = candidate
                    push(heap, (candidate, v))

        # Phase B: bounded Dijkstra over the moving frontier only.
        while heap:
            d, x = pop(heap)
            if d > dist[x]:
                continue
            for v, w in fwd_adj[x]:
                candidate = d + w
                if candidate < dist[v]:
                    if v not in old_dist:
                        old_dist[v] = dist[v]
                    dist[v] = candidate
                    push(heap, (candidate, v))

        moved = [x for x, previous in old_dist.items() if dist[x] != previous]

        # Canonical predecessor recompute: every invalidated node, every
        # changed-edge head, every moved node and its out-neighbors -- the
        # complete set of nodes whose achieving-in-edge minimum could differ.
        dirty: Set[int] = set(invalid)
        for _u, v, _old, _new in changes:
            dirty.add(v)
        for x in moved:
            dirty.add(x)
            for v, _w in fwd_adj[x]:
                dirty.add(v)
        dirty.discard(source_index)

        pred_flipped: List[int] = []
        for x in dirty:
            dx = dist[x]
            if dx == INFINITY:
                best = -1
            else:
                best = -1
                best_key = None
                for u, w in rev_adj[x]:
                    if dist[u] + w == dx:
                        key = (dist[u], u)
                        if best_key is None or key < best_key:
                            best_key = key
                            best = u
            if best != pred[x]:
                pred[x] = best
                pred_flipped.append(x)

        if not moved and not pred_flipped:
            # Neither a label nor the tie-broken tree moved: the record's
            # derived contributions are identical by construction.
            return record

        # Derive-skip: a border target's distance can only move if the
        # border is itself in ``moved``, and its predecessor chain can only
        # change if the chain passes a flipped attachment -- which makes the
        # border a new-tree descendant of a changed node.  So when the
        # closure of changed nodes under new-tree children reaches no border
        # target, every published contribution of this record (cross-border
        # nodes, traversed masks, min/max folds, finite-pair count) is
        # bit-identical, and only the raw labels need replacing.
        closure: Set[int] = set(moved)
        closure.update(pred_flipped)
        stack = list(closure)
        touches_border = False
        while stack:
            x = stack.pop()
            if x in border_indexes:
                touches_border = True
                break
            for child, _w in fwd_adj[x]:
                if pred[child] == x and child not in closure:
                    closure.add(child)
                    stack.append(child)
        if not touches_border:
            return _BorderSource(
                node=record.node,
                region=record.region,
                dist=dist,
                pred=pred,
                cross_nodes=record.cross_nodes,
                finite_pairs=record.finite_pairs,
                min_to=record.min_to,
                max_to=record.max_to,
                traversed=record.traversed,
            )
        return self._record_from_labels(
            dist, pred, record.node, record.region, ctx
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def upper_bound(self, source_region: int, target_region: int) -> float:
        """EB's upper bound UB for a query between the two regions."""
        return self.max_distance[source_region][target_region]

    def needed_regions_eb(self, source_region: int, target_region: int) -> List[int]:
        """Regions EB must receive: the "network ellipse" of Section 4.2."""
        upper = self.upper_bound(source_region, target_region)
        needed = {source_region, target_region}
        if upper == INFINITY:
            # No pruning possible; every region may be required.
            return list(range(self.num_regions))
        for region in range(self.num_regions):
            min_to = self.min_distance[source_region][region]
            min_from = self.min_distance[region][target_region]
            if min_to + min_from <= upper:
                needed.add(region)
        return sorted(needed)

    def needed_regions_nr(self, source_region: int, target_region: int) -> List[int]:
        """Regions NR marks as needed: union of traversed regions plus endpoints."""
        regions = set(self.traversed_regions.get((source_region, target_region), set()))
        regions.add(source_region)
        regions.add(target_region)
        return sorted(regions)

    def cross_border_in_region(self, region: int) -> List[int]:
        """Cross-border nodes that belong to ``region``."""
        return [
            node
            for node in self.partitioning.nodes_in_region(region)
            if node in self.cross_border_nodes
        ]

    def local_in_region(self, region: int) -> List[int]:
        """Local (non cross-border) nodes of ``region``."""
        return [
            node
            for node in self.partitioning.nodes_in_region(region)
            if node not in self.cross_border_nodes
        ]
