"""Shared EB/NR server-side pre-computation over border nodes.

Both EB and NR pre-compute the shortest paths between border nodes of the
partitioned network (paper Sections 4.1 and 5; the paper notes their
pre-computation cost is identical).  From those paths this module derives:

* the minimum and maximum shortest path distance between every ordered pair
  of regions (EB's array ``A``),
* the set of *cross-border* nodes -- nodes appearing on at least one
  pre-computed path -- used to split each region's data into a cross-border
  and a local segment, and
* for every ordered region pair, the set of regions traversed by any
  pre-computed shortest path between their border nodes (NR's region sets).

The paper defines the pre-computed set ``S`` over border-node pairs from
*different* regions.  We additionally include pairs of border nodes of the
*same* region so that queries whose source and destination fall in one region
remain covered; this only grows the index conservatively (documented
deviation, see DESIGN.md).
"""

from __future__ import annotations

import time
from typing import Dict, List, Set, Tuple

from repro.network.algorithms.dijkstra import dijkstra_distances
from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["BorderPathPrecomputation"]


class BorderPathPrecomputation:
    """All border-to-border shortest path information EB and NR need."""

    def __init__(self, network: RoadNetwork, partitioning: Partitioning) -> None:
        self.network = network
        self.partitioning = partitioning
        num_regions = partitioning.num_regions
        self.num_regions = num_regions

        #: ``min_distance[i][j]`` / ``max_distance[i][j]``: extreme shortest
        #: path distances from a border node of region i to one of region j.
        self.min_distance: List[List[float]] = [
            [INFINITY] * num_regions for _ in range(num_regions)
        ]
        self.max_distance: List[List[float]] = [
            [INFINITY] * num_regions for _ in range(num_regions)
        ]
        #: Nodes appearing on at least one pre-computed border-to-border path.
        self.cross_border_nodes: Set[int] = set()
        #: ``traversed_regions[(i, j)]``: regions crossed by any pre-computed
        #: shortest path from a border node of i to a border node of j.
        self.traversed_regions: Dict[Tuple[int, int], Set[int]] = {}
        self.num_border_pairs = 0
        self.precomputation_seconds = 0.0

        self._compute()

    def _compute(self) -> None:
        started = time.perf_counter()
        partitioning = self.partitioning
        region_of = partitioning.region_of
        num_regions = self.num_regions

        border_by_region: List[List[int]] = [
            partitioning.border_nodes(region) for region in range(num_regions)
        ]
        all_border: List[Tuple[int, int]] = [
            (node, region)
            for region in range(num_regions)
            for node in border_by_region[region]
        ]
        border_set = {node for node, _ in all_border}

        max_seen: List[List[float]] = [[-1.0] * num_regions for _ in range(num_regions)]

        for source, source_region in all_border:
            result = dijkstra_distances(self.network, source)
            distances = result.distances
            predecessors = result.predecessors
            # Nodes already marked on some path from this source; walking a
            # predecessor chain can stop as soon as it hits a marked node.
            marked_from_source: Set[int] = {source}
            self.cross_border_nodes.add(source)

            for target, target_region in all_border:
                if target == source:
                    continue
                distance = distances.get(target, INFINITY)
                pair = (source_region, target_region)
                if distance == INFINITY:
                    continue
                self.num_border_pairs += 1
                if distance < self.min_distance[source_region][target_region]:
                    self.min_distance[source_region][target_region] = distance
                if distance > max_seen[source_region][target_region]:
                    max_seen[source_region][target_region] = distance

                regions = self.traversed_regions.setdefault(pair, set())
                # Walk the shortest path tree from target back toward source,
                # marking cross-border nodes and collecting traversed regions.
                node = target
                while node is not None:
                    regions.add(region_of(node))
                    if node in marked_from_source:
                        # Nodes from here to the source are already marked as
                        # cross-border, but we still need their regions.
                        node = predecessors.get(node)
                        while node is not None:
                            regions.add(region_of(node))
                            node = predecessors.get(node)
                        break
                    marked_from_source.add(node)
                    self.cross_border_nodes.add(node)
                    node = predecessors.get(node)

        for i in range(self.num_regions):
            for j in range(self.num_regions):
                if max_seen[i][j] >= 0.0:
                    self.max_distance[i][j] = max_seen[i][j]
        self._border_set = border_set
        self.precomputation_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def upper_bound(self, source_region: int, target_region: int) -> float:
        """EB's upper bound UB for a query between the two regions."""
        return self.max_distance[source_region][target_region]

    def needed_regions_eb(self, source_region: int, target_region: int) -> List[int]:
        """Regions EB must receive: the "network ellipse" of Section 4.2."""
        upper = self.upper_bound(source_region, target_region)
        needed = {source_region, target_region}
        if upper == INFINITY:
            # No pruning possible; every region may be required.
            return list(range(self.num_regions))
        for region in range(self.num_regions):
            min_to = self.min_distance[source_region][region]
            min_from = self.min_distance[region][target_region]
            if min_to + min_from <= upper:
                needed.add(region)
        return sorted(needed)

    def needed_regions_nr(self, source_region: int, target_region: int) -> List[int]:
        """Regions NR marks as needed: union of traversed regions plus endpoints."""
        regions = set(self.traversed_regions.get((source_region, target_region), set()))
        regions.add(source_region)
        regions.add(target_region)
        return sorted(regions)

    def cross_border_in_region(self, region: int) -> List[int]:
        """Cross-border nodes that belong to ``region``."""
        return [
            node
            for node in self.partitioning.nodes_in_region(region)
            if node in self.cross_border_nodes
        ]

    def local_in_region(self, region: int) -> List[int]:
        """Local (non cross-border) nodes of ``region``."""
        return [
            node
            for node in self.partitioning.nodes_in_region(region)
            if node not in self.cross_border_nodes
        ]
