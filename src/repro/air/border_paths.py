"""Shared EB/NR server-side pre-computation over border nodes.

Both EB and NR pre-compute the shortest paths between border nodes of the
partitioned network (paper Sections 4.1 and 5; the paper notes their
pre-computation cost is identical).  From those paths this module derives:

* the minimum and maximum shortest path distance between every ordered pair
  of regions (EB's array ``A``),
* the set of *cross-border* nodes -- nodes appearing on at least one
  pre-computed path -- used to split each region's data into a cross-border
  and a local segment, and
* for every ordered region pair, the set of regions traversed by any
  pre-computed shortest path between border nodes of those regions (NR's
  region sets).

The paper defines the pre-computed set ``S`` over border-node pairs from
*different* regions.  We additionally include pairs of border nodes of the
*same* region so that queries whose source and destination fall in one region
remain covered; this only grows the index conservatively (documented
deviation, see DESIGN.md).

Dynamic networks: the computation is organized as one independent record per
border *source* (its Dijkstra distances plus everything derived from its
shortest path tree), and the published aggregates are a pure, order-free fold
over those records.  :meth:`BorderPathPrecomputation.refresh` exploits that:
given a batch of applied weight changes, it re-runs the per-source
computation only for sources whose shortest path tree could be affected --
decided exactly from the cached distances and the old/new weights -- and
re-folds.  Unaffected sources provably have bit-identical Dijkstra results,
so the refreshed state equals a from-scratch rebuild.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.network.algorithms import kernel
from repro.network.algorithms.paths import INFINITY
from repro.network.delta import WeightChange
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["BorderPathPrecomputation"]


@dataclass
class _BorderSource:
    """Everything pre-computed from one border source node.

    The published aggregates (min/max region distances, cross-border node
    set, traversed-region sets) are folds over these records, which is what
    lets :meth:`BorderPathPrecomputation.refresh` re-run only the affected
    sources after a weight update.
    """

    node: int
    region: int
    #: Dijkstra distances from the source (kept for the affected-source test).
    distances: Dict[int, float] = field(default_factory=dict)
    #: Nodes on at least one pre-computed path from this source.
    cross_nodes: Set[int] = field(default_factory=set)
    #: Finite border-pair count contributed by this source.
    finite_pairs: int = 0
    #: Target region -> min / max shortest distance from this source.
    min_to: Dict[int, float] = field(default_factory=dict)
    max_to: Dict[int, float] = field(default_factory=dict)
    #: Target region -> regions traversed by the pre-computed paths there.
    traversed: Dict[int, Set[int]] = field(default_factory=dict)


class BorderPathPrecomputation:
    """All border-to-border shortest path information EB and NR need."""

    def __init__(self, network: RoadNetwork, partitioning: Partitioning) -> None:
        self.network = network
        self.partitioning = partitioning
        num_regions = partitioning.num_regions
        self.num_regions = num_regions

        #: ``min_distance[i][j]`` / ``max_distance[i][j]``: extreme shortest
        #: path distances from a border node of region i to one of region j.
        self.min_distance: List[List[float]] = []
        self.max_distance: List[List[float]] = []
        #: Nodes appearing on at least one pre-computed border-to-border path.
        self.cross_border_nodes: Set[int] = set()
        #: ``traversed_regions[(i, j)]``: regions crossed by any pre-computed
        #: shortest path from a border node of i to a border node of j.
        self.traversed_regions: Dict[Tuple[int, int], Set[int]] = {}
        self.num_border_pairs = 0
        self.precomputation_seconds = 0.0
        #: Backing storage of the ``_sources`` property; a restore keeps the
        #: records encoded in ``_sources_blob`` until a refresh needs them.
        self._source_records: List[_BorderSource] = []
        self._sources_blob = None

        self._compute()

    def _compute(self) -> None:
        started = time.perf_counter()
        partitioning = self.partitioning

        border_by_region: List[List[int]] = [
            partitioning.border_nodes(region) for region in range(self.num_regions)
        ]
        #: ``(node, region)`` for every border node, in region-then-list order.
        self._all_border: List[Tuple[int, int]] = [
            (node, region)
            for region in range(self.num_regions)
            for node in border_by_region[region]
        ]
        self._border_set = {node for node, _ in self._all_border}

        # One batched kernel sweep covers every border source: the arena's
        # many-to-many path computes the distance labels of whole source
        # chunks per accelerated call, and each source's shortest path tree
        # arrives as flat index arrays the tree walks below iterate.
        arena = kernel.arena_for(self.network.ensure_csr())
        sweeps = arena.many_to_many(
            [source for source, _ in self._all_border], need_predecessors=True
        )
        self._source_records = [
            self._derive_source(sweep, source, source_region)
            for sweep, (source, source_region) in zip(sweeps, self._all_border)
        ]
        self._aggregate()
        self.precomputation_seconds = time.perf_counter() - started

    def _compute_source(self, source: int, source_region: int) -> _BorderSource:
        """Run one border source's Dijkstra and derive its contributions."""
        arena = kernel.arena_for(self.network.ensure_csr())
        sweep = arena.sssp(source, need_predecessors=True)
        return self._derive_source(sweep, source, source_region)

    def _derive_source(
        self, sweep: "kernel.KernelResult", source: int, source_region: int
    ) -> _BorderSource:
        """Fold one kernel sweep into the source's published contributions."""
        distances = sweep.distances_dict()
        predecessors = sweep.pred
        ids = sweep.csr.ids
        index_of = sweep.csr.index_of
        source_index = sweep.source_index
        record = _BorderSource(node=source, region=source_region, distances=distances)
        # Node indexes already marked on some path from this source; walking
        # a predecessor chain can stop as soon as it hits a marked node.
        marked_from_source = bytearray(sweep.csr.num_nodes)
        marked_from_source[source_index] = 1
        record.cross_nodes.add(source)
        cross_nodes_add = record.cross_nodes.add
        region_of = self.partitioning.region_of

        for target, target_region in self._all_border:
            if target == source:
                continue
            distance = distances.get(target, INFINITY)
            if distance == INFINITY:
                continue
            record.finite_pairs += 1
            if distance < record.min_to.get(target_region, INFINITY):
                record.min_to[target_region] = distance
            if distance > record.max_to.get(target_region, -1.0):
                record.max_to[target_region] = distance

            regions = record.traversed.setdefault(target_region, set())
            regions_add = regions.add
            # Walk the shortest path tree from target back toward source,
            # marking cross-border nodes and collecting traversed regions.
            node = index_of[target]
            while node >= 0:
                regions_add(region_of(ids[node]))
                if marked_from_source[node]:
                    # Nodes from here to the source are already marked as
                    # cross-border, but we still need their regions.
                    node = -1 if node == source_index else predecessors[node]
                    while node >= 0:
                        regions_add(region_of(ids[node]))
                        node = -1 if node == source_index else predecessors[node]
                    break
                marked_from_source[node] = 1
                cross_nodes_add(ids[node])
                node = predecessors[node]
        return record

    def _aggregate(self) -> None:
        """Fold the per-source records into the published aggregates.

        Pure and order-free (mins, maxes, unions, sums), so re-folding after
        an incremental refresh yields exactly what a from-scratch build would.
        """
        n = self.num_regions
        self.min_distance = [[INFINITY] * n for _ in range(n)]
        self.max_distance = [[INFINITY] * n for _ in range(n)]
        self.cross_border_nodes = set()
        self.traversed_regions = {}
        self.num_border_pairs = 0
        max_seen: List[List[float]] = [[-1.0] * n for _ in range(n)]

        for record in self._sources:
            i = record.region
            self.cross_border_nodes |= record.cross_nodes
            self.num_border_pairs += record.finite_pairs
            row_min = self.min_distance[i]
            row_max = max_seen[i]
            for j, value in record.min_to.items():
                if value < row_min[j]:
                    row_min[j] = value
            for j, value in record.max_to.items():
                if value > row_max[j]:
                    row_max[j] = value
            for j, regions in record.traversed.items():
                self.traversed_regions.setdefault((i, j), set()).update(regions)

        for i in range(n):
            for j in range(n):
                if max_seen[i][j] >= 0.0:
                    self.max_distance[i][j] = max_seen[i][j]

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The computed state as plain values (see :mod:`repro.serialize`).

        Two parts with different service lives: the published *aggregates*
        (what query processing reads) are stored eagerly, while the heavy
        per-source records (only :meth:`refresh` needs them) are packed
        columnar -- a handful of flat int/float arrays instead of thousands
        of small dicts -- and nested as one pre-encoded blob that
        :meth:`from_state` defers decoding until the first refresh.  That
        keeps a warm start independent of the per-source table size without
        giving up bit-identical refreshes.
        """
        from repro.serialize.codec import encode_value

        if self._source_records is None:
            # Restored and never refreshed: the records are still encoded;
            # re-publish the blob as-is instead of a decode/encode round.
            sources_blob = self._sources_blob
        else:
            sources_blob = encode_value(self._sources_columnar())
        flat_min = [value for row in self.min_distance for value in row]
        flat_max = [value for row in self.max_distance for value in row]
        trav_items: List[int] = []
        trav_offsets: List[int] = [0]
        trav_keys_i: List[int] = []
        trav_keys_j: List[int] = []
        for (i, j), regions in self.traversed_regions.items():
            trav_keys_i.append(i)
            trav_keys_j.append(j)
            trav_items.extend(sorted(regions))
            trav_offsets.append(len(trav_items))
        return {
            "all_border": {
                "nodes": [node for node, _ in self._all_border],
                "regions": [region for _, region in self._all_border],
            },
            "aggregates": {
                "min_distance": flat_min,
                "max_distance": flat_max,
                "cross_border_nodes": sorted(self.cross_border_nodes),
                "trav_keys_i": trav_keys_i,
                "trav_keys_j": trav_keys_j,
                "trav_offsets": trav_offsets,
                "trav_items": trav_items,
                "num_border_pairs": self.num_border_pairs,
            },
            "sources_blob": sources_blob,
            "seconds": self.precomputation_seconds,
        }

    def _sources_columnar(self) -> Dict[str, Any]:
        """The per-source records as flat columns (orders preserved).

        Every per-record container is concatenated into one array with an
        offsets column, so the codec stores a fixed number of bulk arrays
        however many border sources exist.  Dict insertion orders (settle
        order for ``distances``, encounter order for ``min_to``/``max_to``/
        ``traversed``) survive the concatenation; sets are stored sorted.
        """
        columns: Dict[str, List] = {
            "node": [],
            "region": [],
            "finite_pairs": [],
            "dist_offsets": [0],
            "dist_keys": [],
            "dist_values": [],
            "cross_offsets": [0],
            "cross_items": [],
            "min_offsets": [0],
            "min_keys": [],
            "min_values": [],
            "max_offsets": [0],
            "max_keys": [],
            "max_values": [],
            "trav_offsets": [0],
            "trav_keys": [],
            "trav_set_offsets": [0],
            "trav_set_items": [],
        }
        for record in self._sources:
            columns["node"].append(record.node)
            columns["region"].append(record.region)
            columns["finite_pairs"].append(record.finite_pairs)
            columns["dist_keys"].extend(record.distances.keys())
            columns["dist_values"].extend(record.distances.values())
            columns["dist_offsets"].append(len(columns["dist_keys"]))
            columns["cross_items"].extend(sorted(record.cross_nodes))
            columns["cross_offsets"].append(len(columns["cross_items"]))
            columns["min_keys"].extend(record.min_to.keys())
            columns["min_values"].extend(record.min_to.values())
            columns["min_offsets"].append(len(columns["min_keys"]))
            columns["max_keys"].extend(record.max_to.keys())
            columns["max_values"].extend(record.max_to.values())
            columns["max_offsets"].append(len(columns["max_keys"]))
            for region, regions in record.traversed.items():
                columns["trav_keys"].append(region)
                columns["trav_set_items"].extend(sorted(regions))
                columns["trav_set_offsets"].append(len(columns["trav_set_items"]))
            columns["trav_offsets"].append(len(columns["trav_keys"]))
        return columns

    @staticmethod
    def _sources_from_columnar(columns: Dict[str, Any]) -> List[_BorderSource]:
        """Inverse of :meth:`_sources_columnar`."""
        records: List[_BorderSource] = []
        for index, (node, region, finite) in enumerate(
            zip(columns["node"], columns["region"], columns["finite_pairs"])
        ):
            d0, d1 = columns["dist_offsets"][index : index + 2]
            c0, c1 = columns["cross_offsets"][index : index + 2]
            m0, m1 = columns["min_offsets"][index : index + 2]
            x0, x1 = columns["max_offsets"][index : index + 2]
            t0, t1 = columns["trav_offsets"][index : index + 2]
            traversed: Dict[int, Set[int]] = {}
            for position in range(t0, t1):
                s0, s1 = columns["trav_set_offsets"][position : position + 2]
                traversed[columns["trav_keys"][position]] = set(
                    columns["trav_set_items"][s0:s1]
                )
            records.append(
                _BorderSource(
                    node=node,
                    region=region,
                    distances=dict(
                        zip(
                            columns["dist_keys"][d0:d1],
                            columns["dist_values"][d0:d1],
                        )
                    ),
                    cross_nodes=set(columns["cross_items"][c0:c1]),
                    finite_pairs=finite,
                    min_to=dict(
                        zip(columns["min_keys"][m0:m1], columns["min_values"][m0:m1])
                    ),
                    max_to=dict(
                        zip(columns["max_keys"][x0:x1], columns["max_values"][x0:x1])
                    ),
                    traversed=traversed,
                )
            )
        return records

    @classmethod
    def from_state(
        cls, network: RoadNetwork, partitioning: Partitioning, state: Dict[str, Any]
    ) -> "BorderPathPrecomputation":
        """Reconstruct from :meth:`state` output without re-running Dijkstra.

        The published aggregates install directly; the per-source blob stays
        encoded until the first :meth:`refresh`/:meth:`affected_sources`
        call touches :attr:`_sources` (serving queries never does).
        """
        self = object.__new__(cls)
        self.network = network
        self.partitioning = partitioning
        n = partitioning.num_regions
        self.num_regions = n
        roster = state["all_border"]
        self._all_border = list(zip(roster["nodes"], roster["regions"]))
        self._border_set = set(roster["nodes"])
        aggregates = state["aggregates"]
        flat_min = aggregates["min_distance"]
        flat_max = aggregates["max_distance"]
        self.min_distance = [flat_min[i * n : (i + 1) * n] for i in range(n)]
        self.max_distance = [flat_max[i * n : (i + 1) * n] for i in range(n)]
        self.cross_border_nodes = set(aggregates["cross_border_nodes"])
        self.traversed_regions = {
            (i, j): set(aggregates["trav_items"][start:end])
            for i, j, start, end in zip(
                aggregates["trav_keys_i"],
                aggregates["trav_keys_j"],
                aggregates["trav_offsets"],
                aggregates["trav_offsets"][1:],
            )
        }
        self.num_border_pairs = aggregates["num_border_pairs"]
        self._source_records = None
        self._sources_blob = state["sources_blob"]
        self.precomputation_seconds = state["seconds"]
        return self

    @property
    def _sources(self) -> List[_BorderSource]:
        """The per-source records, decoding the deferred blob on first use."""
        if self._source_records is None:
            from repro.serialize.codec import decode_value

            self._source_records = self._sources_from_columnar(
                decode_value(self._sources_blob)
            )
            self._sources_blob = None
        return self._source_records

    # ------------------------------------------------------------------
    # Incremental refresh
    # ------------------------------------------------------------------
    def affected_sources(self, changes: Sequence[WeightChange]) -> List[int]:
        """Indexes of border sources whose results a change batch can touch.

        For a source with cached distances ``d``, a weight change on edge
        ``(u, v)`` is relevant iff

        * **decrease** (``new < old``): ``d(u) + new <= d(v)`` -- the cheaper
          edge creates (or ties) a shorter path through ``(u, v)``; or
        * **increase** (``new > old``): ``d(u) + old <= d(v)`` -- by the
          triangle inequality ``d(v) <= d(u) + old`` always holds, so this is
          the tightness test ``d(u) + old == d(v)``, i.e. "some shortest path
          uses ``(u, v)`` as its final hop into ``v``" (and any shortest path
          through the edge has such a prefix).

        Both tests include ties, which makes the unaffected set *provably*
        bit-identical under a re-run: the old distance labels remain a
        feasible potential and the old shortest path tree contains no changed
        edge, so Dijkstra's relaxations (and tie-breaks) replay unchanged.
        """
        relevant = [change for change in changes if not change.is_noop]
        affected: List[int] = []
        for index, record in enumerate(self._sources):
            distances = record.distances
            for change in relevant:
                du = distances.get(change.source)
                if du is None:
                    continue
                dv = distances.get(change.target, INFINITY)
                if change.new_weight < change.old_weight:
                    if du + change.new_weight <= dv:
                        affected.append(index)
                        break
                elif du + change.old_weight <= dv:
                    affected.append(index)
                    break
        return affected

    def refresh(self, changes: Sequence[WeightChange]) -> int:
        """Re-run the affected border sources after a weight-change batch.

        Only valid for weight changes (the caller handles structural changes
        with a full rebuild: they can move borders).  Returns the number of
        sources re-run; the published aggregates afterwards equal a
        from-scratch :class:`BorderPathPrecomputation` over the mutated
        network, bit for bit.
        """
        affected = self.affected_sources(changes)
        for index in affected:
            record = self._sources[index]
            self._sources[index] = self._compute_source(record.node, record.region)
        if affected:
            self._aggregate()
        return len(affected)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def upper_bound(self, source_region: int, target_region: int) -> float:
        """EB's upper bound UB for a query between the two regions."""
        return self.max_distance[source_region][target_region]

    def needed_regions_eb(self, source_region: int, target_region: int) -> List[int]:
        """Regions EB must receive: the "network ellipse" of Section 4.2."""
        upper = self.upper_bound(source_region, target_region)
        needed = {source_region, target_region}
        if upper == INFINITY:
            # No pruning possible; every region may be required.
            return list(range(self.num_regions))
        for region in range(self.num_regions):
            min_to = self.min_distance[source_region][region]
            min_from = self.min_distance[region][target_region]
            if min_to + min_from <= upper:
                needed.add(region)
        return sorted(needed)

    def needed_regions_nr(self, source_region: int, target_region: int) -> List[int]:
        """Regions NR marks as needed: union of traversed regions plus endpoints."""
        regions = set(self.traversed_regions.get((source_region, target_region), set()))
        regions.add(source_region)
        regions.add(target_region)
        return sorted(regions)

    def cross_border_in_region(self, region: int) -> List[int]:
        """Cross-border nodes that belong to ``region``."""
        return [
            node
            for node in self.partitioning.nodes_in_region(region)
            if node in self.cross_border_nodes
        ]

    def local_in_region(self, region: int) -> List[int]:
        """Local (non cross-border) nodes of ``region``."""
        return [
            node
            for node in self.partitioning.nodes_in_region(region)
            if node not in self.cross_border_nodes
        ]
