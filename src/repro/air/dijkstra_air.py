"""Broadcast adaptation of Dijkstra's algorithm (paper Section 3.2).

No pre-computation: the cycle contains only the adjacency lists, which is why
it is the shortest possible cycle (Table 1).  The client listens to the whole
cycle, stores the entire network, and runs Dijkstra locally -- minimal access
latency, but maximal tuning time and memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.air.full_cycle import FullCycleScheme
from repro.air.registry import register_scheme
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import PathResult

__all__ = ["DijkstraBroadcastScheme", "DJParams"]


@dataclass(frozen=True)
class DJParams:
    """Dijkstra broadcasts plain adjacency data; nothing to tune."""


@register_scheme(
    "DJ",
    params=DJParams,
    description="Full-cycle Dijkstra adaptation: adjacency only (Section 3.2)",
)
class DijkstraBroadcastScheme(FullCycleScheme):
    """Adjacency-only broadcast cycle with local Dijkstra processing."""

    short_name = "DJ"

    def _refresh_precomputation(self, delta) -> bool:
        # No pre-computed state at all: a weight delta only requires the
        # dirty data segments to be re-packed, which the base class does.
        return True

    def local_query(self, source: int, target: int, degraded: bool) -> PathResult:
        # Dijkstra has no pre-computed information, so there is nothing to
        # degrade: lost adjacency packets were already re-received.
        return shortest_path(self.network, source, target)
