"""Placement of EB's distance-array cells into packets (paper Section 6.2).

For a query with source region ``i`` and target region ``j``, EB needs the
``i``-th row and ``j``-th column of its n x n min/max array ``A``.  When a
packet is lost, the client must wait a full extra cycle only if the packet
contained one of those cells, so the server wants each packet to intersect
as few rows and columns as possible.  Among all rectangles covering the same
number of cells, a square intersects the fewest rows plus columns, hence the
paper packs cells into ``w x w`` squares (Figure 9).

This module provides both the square packing and the naive row-major packing
(used as the ablation baseline) as explicit cell -> packet mappings, so both
the server (sizing) and the client (which packet do I need?  which cells did
a lost packet take with it?) agree on the layout.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

__all__ = ["CellPacking", "SquareCellPacking", "RowMajorCellPacking"]


class CellPacking:
    """Abstract mapping between cells of an n x n array and packet slots."""

    def __init__(self, num_regions: int, cells_per_packet: int) -> None:
        if num_regions < 1:
            raise ValueError("num_regions must be positive")
        if cells_per_packet < 1:
            raise ValueError("cells_per_packet must be positive")
        self.num_regions = num_regions
        self.cells_per_packet = cells_per_packet

    def packet_of(self, row: int, col: int) -> int:
        """Packet index carrying cell ``(row, col)``."""
        raise NotImplementedError

    @property
    def num_packets(self) -> int:
        """Total number of packets used by the array."""
        raise NotImplementedError

    def packets_for_row_and_column(self, row: int, col: int) -> Set[int]:
        """Packets that intersect the given row or the given column.

        These are the packets whose loss would force the EB client to wait
        for another index copy.
        """
        packets: Set[int] = set()
        for k in range(self.num_regions):
            packets.add(self.packet_of(row, k))
            packets.add(self.packet_of(k, col))
        return packets

    def cells_in_packet(self, packet: int) -> List[Tuple[int, int]]:
        """All cells carried by ``packet`` (inverse mapping, for diagnostics)."""
        return [
            (row, col)
            for row in range(self.num_regions)
            for col in range(self.num_regions)
            if self.packet_of(row, col) == packet
        ]


class SquareCellPacking(CellPacking):
    """Pack cells into w x w squares, w = floor(sqrt(cells_per_packet))."""

    def __init__(self, num_regions: int, cells_per_packet: int) -> None:
        super().__init__(num_regions, cells_per_packet)
        self.window = max(1, int(math.isqrt(cells_per_packet)))
        self.blocks_per_side = -(-num_regions // self.window)

    def packet_of(self, row: int, col: int) -> int:
        self._check(row, col)
        block_row = row // self.window
        block_col = col // self.window
        return block_row * self.blocks_per_side + block_col

    @property
    def num_packets(self) -> int:
        return self.blocks_per_side * self.blocks_per_side

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.num_regions and 0 <= col < self.num_regions):
            raise IndexError(f"cell ({row}, {col}) outside {self.num_regions}x{self.num_regions}")


class RowMajorCellPacking(CellPacking):
    """Pack cells row by row (the naive layout, used for ablation)."""

    def packet_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.num_regions and 0 <= col < self.num_regions):
            raise IndexError(f"cell ({row}, {col}) outside {self.num_regions}x{self.num_regions}")
        flat = row * self.num_regions + col
        return flat // self.cells_per_packet

    @property
    def num_packets(self) -> int:
        total_cells = self.num_regions * self.num_regions
        return -(-total_cells // self.cells_per_packet)


def expected_vulnerable_packets(packing: CellPacking) -> float:
    """Average, over all (row, col) queries, of packets whose loss hurts EB.

    This is the quantity the square packing minimizes; the ablation benchmark
    compares it against the row-major layout.
    """
    total = 0
    n = packing.num_regions
    for row in range(n):
        for col in range(n):
            total += len(packing.packets_for_row_and_column(row, col))
    return total / (n * n)
