"""Common abstractions shared by every air-index scheme.

A scheme has two halves:

* the **server** half builds the broadcast cycle (``build_cycle``) and
  reports one-off costs (``server_metrics``), and
* the **client** half (``client()``) processes point-to-point queries by
  tuning into a :class:`~repro.broadcast.channel.BroadcastChannel` and
  returning a :class:`QueryResult` with the path and the per-query
  performance factors of paper Section 3.1.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.broadcast.channel import BroadcastChannel, ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.device import DeviceProfile, J2ME_CLAMSHELL
from repro.broadcast.metrics import ClientMetrics, MemoryTracker, ServerMetrics
from repro.broadcast.packet import SegmentKind
from repro.network.graph import RoadNetwork
from repro.air.records import DEFAULT_LAYOUT, RecordLayout
from repro.serialize.artifacts import ArtifactMismatchError, BuildArtifact
from repro.serialize.codec import decode_value, encode_value
from repro.serialize.graphs import cycle_layout

__all__ = [
    "ClientOptions",
    "MISMATCH_RTOL",
    "QueryResult",
    "AirClient",
    "AirIndexScheme",
    "CpuTimer",
    "is_mismatch",
]

#: Relative tolerance for declaring an on-air answer a mismatch against the
#: ground truth; shared by the engine's workload runner and the fleet
#: simulator so both count mismatches by the same rule.
MISMATCH_RTOL = 1e-6


def is_mismatch(distance: float, truth: Optional[float]) -> bool:
    """Whether an on-air answer disagrees with the ground truth.

    ``truth`` may be ``None`` (no ground truth available), which never
    counts as a mismatch.  The one rule both the engine's workload runner
    and the fleet simulator apply.
    """
    if truth is None:
        return False
    return abs(distance - truth) > MISMATCH_RTOL * max(1.0, truth)


@dataclass(frozen=True)
class ClientOptions:
    """Everything that shapes a client's behaviour, in one object.

    Passed to :meth:`AirIndexScheme.client`, so that every scheme exposes the
    same client factory signature -- the Section 6.1 memory-bound mode is an
    option here rather than a per-scheme constructor overload.
    """

    #: The client hardware (heap size, radio/CPU power, CPU slowdown).
    device: DeviceProfile = J2ME_CLAMSHELL
    #: Section 6.1 super-edge compression (only EB and NR support it).
    memory_bound: bool = False
    #: Bernoulli per-packet loss probability of the default channel.
    loss_rate: float = 0.0
    #: Seed of the default channel's loss/tune-in randomness.
    loss_seed: int = 0
    #: Fixed cycle offset at which clients tune in; random when ``None``.
    tune_in_offset: Optional[int] = None

    def replace(self, **changes) -> "ClientOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


@dataclass
class QueryResult:
    """Outcome of one on-air shortest path query."""

    source: int
    target: int
    distance: float
    path: List[int] = field(default_factory=list)
    metrics: ClientMetrics = field(default_factory=ClientMetrics)
    #: Regions the client received (empty for full-cycle methods).
    received_regions: List[int] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """``True`` when a finite-distance path was computed."""
        return self.distance != float("inf")


class CpuTimer:
    """Accumulates client-side CPU time, scaled to the device's processor."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        self.seconds = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "CpuTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        if self._started is not None:
            self.seconds += (time.perf_counter() - self._started) * self.device.cpu_slowdown
            self._started = None


class AirIndexScheme(abc.ABC):
    """Server side of a broadcast scheme."""

    #: Short name used in tables (the paper's abbreviations: DJ, EB, NR, ...).
    short_name: str = "?"
    #: Whether the scheme's client implements the Section 6.1 memory-bound
    #: (super-edge compression) mode; only EB and NR do.
    supports_memory_bound: bool = False

    def __init__(self, network: RoadNetwork, layout: RecordLayout = DEFAULT_LAYOUT) -> None:
        self.network = network
        # Compile the network's CSR snapshot up front: every shortest path
        # the scheme runs -- pre-computation sweeps and per-query client
        # searches alike -- then dispatches to the array kernel.  The
        # snapshot is shared (and kept fresh) network-wide, so repeated
        # scheme builds pay nothing.
        network.ensure_csr()
        self.layout = layout
        self._cycle: Optional[BroadcastCycle] = None
        self.precomputation_seconds = 0.0
        #: Incremental-refresh accounting (see :meth:`incremental_rebuild`).
        self.refresh_count = 0
        self.refresh_seconds = 0.0

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_cycle(self) -> BroadcastCycle:
        """Pre-compute whatever the scheme needs and lay out the cycle."""

    @property
    def cycle(self) -> BroadcastCycle:
        """The broadcast cycle, building it on first access."""
        if self._cycle is None:
            self._cycle = self.build_cycle()
        return self._cycle

    def incremental_rebuild(self, network: RoadNetwork, delta) -> bool:
        """Refresh this scheme's state and cycle after in-place mutation.

        ``network`` is the scheme's own (mutated) network and ``delta`` the
        :class:`~repro.network.delta.NetworkDelta` describing what changed
        since the scheme's state was last consistent.  A scheme that can
        apply the delta re-computes only the touched parts of its
        pre-computation and re-packs only the touched cycle segments, then
        returns ``True``; the refreshed state must be **bit-identical** to a
        from-scratch build over the mutated network (the property suite
        asserts this).  Returning ``False`` -- the default, and what every
        scheme does for structural deltas -- tells the caller (the engine's
        :meth:`~repro.engine.system.AirSystem.refresh`) to construct a fresh
        scheme instead.

        Implementations should bill their work to :attr:`refresh_count` /
        :attr:`refresh_seconds` via :meth:`_track_refresh`.
        """
        return False

    def _track_refresh(self, started: float) -> bool:
        """Record one successful incremental refresh; returns ``True``."""
        self.refresh_count += 1
        self.refresh_seconds += time.perf_counter() - started
        return True

    def shadow_rebuild(self, network: RoadNetwork, delta) -> Optional["AirIndexScheme"]:
        """Build a refreshed *replacement* instance, leaving this one intact.

        The double-buffered counterpart of :meth:`incremental_rebuild`: the
        caller (the engine's ``refresh_async``) keeps serving queries from
        this instance's pre-delta state while the returned shadow -- already
        refreshed over the mutated network -- waits to be swapped in.  The
        shadow must satisfy the same bit-identity contract as an in-place
        incremental rebuild; returns ``None`` when the delta cannot be
        applied incrementally (the caller then builds from scratch).

        The default clones this scheme through an artifact-state round trip
        (so the shadow shares no mutable pre-computation state with the
        serving instance) and runs the ordinary :meth:`incremental_rebuild`
        on the clone.  Schemes whose state is dominated by per-unit records
        (NR/EB's border sources) override this with structural sharing.
        """
        clone = self._shadow_clone()
        if clone.incremental_rebuild(network, delta):
            return clone
        return None

    def _shadow_clone(self) -> "AirIndexScheme":
        """A deep, independent copy of this scheme via its artifact state.

        The encode/decode round trip guarantees the clone holds no live
        references into the serving instance's state; the built broadcast
        cycle is shared as-is (immutable by contract -- every incremental
        path constructs a *new* cycle object rather than mutating segments
        in place), so the clone's ``incremental_rebuild`` can reuse
        untouched segments exactly as the in-place path would.
        """
        clone = object.__new__(type(self))
        AirIndexScheme.__init__(clone, self.network, self.layout)
        clone._configure(**self._artifact_params())
        clone._restore_state(decode_value(encode_value(self._artifact_state())))
        clone.precomputation_seconds = self.precomputation_seconds
        clone.refresh_count = self.refresh_count
        clone.refresh_seconds = self.refresh_seconds
        clone._cycle = self._cycle
        return clone

    # ------------------------------------------------------------------
    # Build/serve split: versioned artifacts
    # ------------------------------------------------------------------
    def _configure(self, **params: Any) -> None:
        """Apply the scheme's parameter-derived configuration (cheap).

        Every scheme's ``__init__`` is split into *configure* (parameters
        and everything derivable from them in O(1)) and *build*
        (:meth:`_build_state`, the expensive pre-computation), so that
        :meth:`from_artifact` can run configure and then *restore* instead
        of build.  The default stores each parameter as an attribute of the
        same name, which is also what :meth:`artifact` reads back.
        """
        for name, value in params.items():
            setattr(self, name, value)

    def _build_state(self) -> None:
        """Run the scheme's pre-computation from scratch (may be expensive)."""

    def _artifact_state(self) -> Dict[str, Any]:
        """The scheme's built state as plain values; ``{}`` when stateless."""
        return {}

    def _restore_state(self, state: Dict[str, Any]) -> None:
        """Install previously built state (inverse of :meth:`_artifact_state`)."""

    def _artifact_params(self) -> Dict[str, Any]:
        """The full parameter set, read back off the registered dataclass."""
        from repro.air import registry

        info = registry.get_scheme(self.short_name)
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(info.params)
        }

    def artifact(self) -> BuildArtifact:
        """Detach the built state into a versioned :class:`BuildArtifact`.

        The artifact carries the scheme name, the full parameter set, the
        network fingerprint the state was computed over, the scheme state,
        and the broadcast cycle's on-air layout (used as an integrity check
        on restore).  Together with the network, it is everything a serving
        process needs: ``Scheme.from_artifact(network, artifact)`` answers
        queries, refreshes, and replays bit-identically to this instance.
        """
        payload = {
            "state": self._artifact_state(),
            "precomputation_seconds": self.precomputation_seconds,
            "cycle": cycle_layout(self.cycle),
            # Record sizing shapes every segment's byte count, so it is part
            # of the built state: restore re-creates the same layout unless
            # the caller explicitly overrides it.
            "layout": dataclasses.asdict(self.layout),
        }
        return BuildArtifact(
            scheme=self.short_name,
            params=self._artifact_params(),
            network_fingerprint=self.network.fingerprint(),
            payload=encode_value(payload),
        )

    @classmethod
    def from_artifact(
        cls,
        network: RoadNetwork,
        artifact: BuildArtifact,
        layout: Optional[RecordLayout] = None,
        *,
        zero_copy: bool = False,
    ) -> "AirIndexScheme":
        """Reconstruct a serving-ready scheme from a build artifact.

        Callable on a concrete scheme class (the artifact must name it) or
        on :class:`AirIndexScheme` itself, which resolves the class through
        the registry.  The artifact must have been built over a network with
        the same fingerprint as ``network`` -- built state is only valid for
        the exact structure and weights it was computed from.  The record
        layout defaults to the one recorded in the artifact (it shapes every
        on-air byte count); pass ``layout`` only to override it knowingly.
        The broadcast cycle is re-laid from the restored state (layout is
        cheap relative to pre-computation) and verified against the cycle
        layout recorded at build time, so silent drift between writer and
        reader code raises instead of serving a subtly different cycle.

        ``zero_copy=True`` decodes the payload with byte blobs as views into
        ``artifact.payload`` (see :func:`repro.serialize.codec.decode_value`);
        with a payload that is itself a memoryview over a shared segment,
        deferred blobs -- the border-path source records, notably -- are then
        referenced in place rather than copied per process.  The views stay
        valid only while the payload's underlying buffer stays mapped.
        """
        from repro.air import registry

        if cls is AirIndexScheme:
            target = registry.get_scheme(artifact.scheme).cls
        else:
            if artifact.scheme != cls.short_name:
                raise ArtifactMismatchError(
                    f"artifact is for scheme {artifact.scheme!r}, "
                    f"not {cls.short_name!r}"
                )
            target = cls
        fingerprint = network.fingerprint()
        if artifact.network_fingerprint != fingerprint:
            raise ArtifactMismatchError(
                f"artifact was built over network {artifact.network_fingerprint}, "
                f"but the given network fingerprints as {fingerprint}"
            )
        payload = decode_value(artifact.payload, bytes_views=zero_copy)
        if layout is None:
            layout = RecordLayout(**payload["layout"])
        scheme = object.__new__(target)
        AirIndexScheme.__init__(scheme, network, layout)
        scheme._configure(**dict(artifact.params))
        scheme._restore_state(payload["state"])
        scheme.precomputation_seconds = payload["precomputation_seconds"]
        scheme._cycle = scheme.build_cycle()
        # The recorded cycle layout was laid under the build-time record
        # sizing; with an explicitly overridden layout the byte counts are
        # *expected* to differ, so drift detection only applies when the
        # effective layout is the recorded one.
        if dataclasses.asdict(layout) == payload["layout"]:
            rebuilt = cycle_layout(scheme._cycle)
            if rebuilt != payload["cycle"]:
                raise ArtifactMismatchError(
                    f"restored {artifact.scheme} state re-lays a different cycle "
                    "than the one recorded at build time (format drift without a "
                    "version bump?)"
                )
        return scheme

    def server_metrics(self) -> ServerMetrics:
        """Cycle size and pre-computation cost (paper Tables 1 and 3)."""
        cycle = self.cycle
        composition = cycle.composition()
        data_kinds = (
            SegmentKind.NETWORK_DATA.value,
            SegmentKind.REGION_CROSS_BORDER.value,
            SegmentKind.REGION_LOCAL.value,
        )
        data_packets = sum(composition.get(kind, 0) for kind in data_kinds)
        return ServerMetrics(
            scheme=self.short_name,
            cycle_packets=cycle.total_packets,
            cycle_bytes=cycle.total_bytes,
            precomputation_seconds=self.precomputation_seconds,
            data_packets=data_packets,
            index_packets=cycle.total_packets - data_packets,
            refreshes=self.refresh_count,
            refresh_seconds=self.refresh_seconds,
        )

    def channel(self, loss_rate: float = 0.0, seed: int = 0) -> BroadcastChannel:
        """A broadcast channel repeatedly transmitting this scheme's cycle."""
        return BroadcastChannel(self.cycle, loss_rate=loss_rate, seed=seed)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def client(
        self,
        device: Optional[DeviceProfile] = None,
        options: Optional[ClientOptions] = None,
        *,
        memory_bound: Optional[bool] = None,
        loss_rate: Optional[float] = None,
        loss_seed: Optional[int] = None,
        tune_in_offset: Optional[int] = None,
    ) -> "AirClient":
        """Create a query processor bound to this scheme's broadcast content.

        The signature is uniform across every scheme: pass a full
        :class:`ClientOptions`, or override individual fields by keyword.
        Asking for the memory-bound mode on a scheme that does not support it
        raises ``ValueError`` instead of silently ignoring the request.
        """
        options = options or ClientOptions()
        overrides = {
            key: value
            for key, value in (
                ("device", device),
                ("memory_bound", memory_bound),
                ("loss_rate", loss_rate),
                ("loss_seed", loss_seed),
                ("tune_in_offset", tune_in_offset),
            )
            if value is not None
        }
        if overrides:
            options = options.replace(**overrides)
        if options.memory_bound and not self.supports_memory_bound:
            raise ValueError(
                f"scheme {self.short_name!r} does not support the memory-bound "
                "client mode (only EB and NR implement Section 6.1)"
            )
        return self._make_client(options)

    @abc.abstractmethod
    def _make_client(self, options: ClientOptions) -> "AirClient":
        """Scheme-specific client construction from resolved options."""


class AirClient(abc.ABC):
    """Client side of a broadcast scheme."""

    def __init__(
        self,
        scheme: AirIndexScheme,
        device: Optional[DeviceProfile] = None,
        options: Optional[ClientOptions] = None,
    ) -> None:
        if options is None:
            options = ClientOptions(device=device or J2ME_CLAMSHELL)
        elif device is not None:
            options = options.replace(device=device)
        self.scheme = scheme
        self.options = options
        self.device = options.device

    @abc.abstractmethod
    def process(
        self, source: int, target: int, session: ClientSession, memory: MemoryTracker
    ) -> QueryResult:
        """Scheme-specific query protocol over an open tuning session."""

    def query(
        self,
        source: int,
        target: int,
        channel: Optional[BroadcastChannel] = None,
        tune_in_offset: Optional[int] = None,
        session: Optional[ClientSession] = None,
    ) -> QueryResult:
        """Process one query end to end and fill in the client metrics.

        Parameters
        ----------
        channel:
            The broadcast channel to tune into.  Defaults to a channel
            carrying this scheme's cycle with the client options' loss rate
            and seed (loss-free under the default options).
        tune_in_offset:
            Cycle offset at which the client tunes in; when omitted, falls
            back to the client options' offset, and finally to a random (but
            deterministic per channel) one -- queries are posed at arbitrary
            moments, exactly as in the paper's evaluation.
        session:
            A pre-opened tuning session.  Used by the engine's batch runner
            to draw sessions in a deterministic order before fanning queries
            out to worker threads; mutually exclusive with ``channel``.
        """
        if session is None:
            if channel is None:
                channel = self.scheme.channel(
                    loss_rate=self.options.loss_rate, seed=self.options.loss_seed
                )
            if tune_in_offset is None:
                tune_in_offset = self.options.tune_in_offset
            session = channel.session(tune_in_offset)
        elif channel is not None:
            raise ValueError("pass either channel or session, not both")
        memory = MemoryTracker()
        result = self.process(source, target, session, memory)
        result.metrics.tuning_time_packets = session.tuning_packets
        result.metrics.access_latency_packets = session.elapsed_packets
        result.metrics.peak_memory_bytes = max(
            result.metrics.peak_memory_bytes, memory.peak_bytes
        )
        result.metrics.lost_packets = session.lost_packets
        return result
