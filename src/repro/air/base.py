"""Common abstractions shared by every air-index scheme.

A scheme has two halves:

* the **server** half builds the broadcast cycle (``build_cycle``) and
  reports one-off costs (``server_metrics``), and
* the **client** half (``client()``) processes point-to-point queries by
  tuning into a :class:`~repro.broadcast.channel.BroadcastChannel` and
  returning a :class:`QueryResult` with the path and the per-query
  performance factors of paper Section 3.1.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.broadcast.channel import BroadcastChannel, ClientSession
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.device import DeviceProfile, J2ME_CLAMSHELL
from repro.broadcast.metrics import ClientMetrics, MemoryTracker, ServerMetrics
from repro.broadcast.packet import SegmentKind
from repro.network.graph import RoadNetwork
from repro.air.records import DEFAULT_LAYOUT, RecordLayout

__all__ = ["QueryResult", "AirClient", "AirIndexScheme", "CpuTimer"]


@dataclass
class QueryResult:
    """Outcome of one on-air shortest path query."""

    source: int
    target: int
    distance: float
    path: List[int] = field(default_factory=list)
    metrics: ClientMetrics = field(default_factory=ClientMetrics)
    #: Regions the client received (empty for full-cycle methods).
    received_regions: List[int] = field(default_factory=list)

    @property
    def found(self) -> bool:
        """``True`` when a finite-distance path was computed."""
        return self.distance != float("inf")


class CpuTimer:
    """Accumulates client-side CPU time, scaled to the device's processor."""

    def __init__(self, device: DeviceProfile) -> None:
        self.device = device
        self.seconds = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "CpuTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        if self._started is not None:
            self.seconds += (time.perf_counter() - self._started) * self.device.cpu_slowdown
            self._started = None


class AirIndexScheme(abc.ABC):
    """Server side of a broadcast scheme."""

    #: Short name used in tables (the paper's abbreviations: DJ, EB, NR, ...).
    short_name: str = "?"

    def __init__(self, network: RoadNetwork, layout: RecordLayout = DEFAULT_LAYOUT) -> None:
        self.network = network
        self.layout = layout
        self._cycle: Optional[BroadcastCycle] = None
        self.precomputation_seconds = 0.0

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_cycle(self) -> BroadcastCycle:
        """Pre-compute whatever the scheme needs and lay out the cycle."""

    @property
    def cycle(self) -> BroadcastCycle:
        """The broadcast cycle, building it on first access."""
        if self._cycle is None:
            self._cycle = self.build_cycle()
        return self._cycle

    def server_metrics(self) -> ServerMetrics:
        """Cycle size and pre-computation cost (paper Tables 1 and 3)."""
        cycle = self.cycle
        composition = cycle.composition()
        data_kinds = (
            SegmentKind.NETWORK_DATA.value,
            SegmentKind.REGION_CROSS_BORDER.value,
            SegmentKind.REGION_LOCAL.value,
        )
        data_packets = sum(composition.get(kind, 0) for kind in data_kinds)
        return ServerMetrics(
            scheme=self.short_name,
            cycle_packets=cycle.total_packets,
            cycle_bytes=cycle.total_bytes,
            precomputation_seconds=self.precomputation_seconds,
            data_packets=data_packets,
            index_packets=cycle.total_packets - data_packets,
        )

    def channel(self, loss_rate: float = 0.0, seed: int = 0) -> BroadcastChannel:
        """A broadcast channel repeatedly transmitting this scheme's cycle."""
        return BroadcastChannel(self.cycle, loss_rate=loss_rate, seed=seed)

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def client(self, device: DeviceProfile = J2ME_CLAMSHELL) -> "AirClient":
        """Create a query processor bound to this scheme's broadcast content."""


class AirClient(abc.ABC):
    """Client side of a broadcast scheme."""

    def __init__(self, scheme: AirIndexScheme, device: DeviceProfile = J2ME_CLAMSHELL) -> None:
        self.scheme = scheme
        self.device = device

    @abc.abstractmethod
    def process(
        self, source: int, target: int, session: ClientSession, memory: MemoryTracker
    ) -> QueryResult:
        """Scheme-specific query protocol over an open tuning session."""

    def query(
        self,
        source: int,
        target: int,
        channel: Optional[BroadcastChannel] = None,
        tune_in_offset: Optional[int] = None,
    ) -> QueryResult:
        """Process one query end to end and fill in the client metrics.

        Parameters
        ----------
        channel:
            The broadcast channel to tune into.  Defaults to a loss-free
            channel carrying this scheme's cycle.
        tune_in_offset:
            Cycle offset at which the client tunes in; random (but
            deterministic per channel) when omitted -- queries are posed at
            arbitrary moments, exactly as in the paper's evaluation.
        """
        if channel is None:
            channel = self.scheme.channel()
        session = channel.session(tune_in_offset)
        memory = MemoryTracker()
        result = self.process(source, target, session, memory)
        result.metrics.tuning_time_packets = session.tuning_packets
        result.metrics.access_latency_packets = session.elapsed_packets
        result.metrics.peak_memory_bytes = max(
            result.metrics.peak_memory_bytes, memory.peak_bytes
        )
        result.metrics.lost_packets = session.lost_packets
        return result
