"""Broadcast adaptation of the shortest path quad-tree (paper Section 3.2).

SPQ would broadcast a colored quad-tree per node alongside its adjacency
list.  Selective tuning fails for the same reason as Dijkstra (the next node
to visit may already have passed), so the only viable option is to receive
the entire cycle -- and the quad-trees make that cycle several times longer
than the network itself (Table 1), which is why the paper excludes SPQ from
the device experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.air.full_cycle import FullCycleScheme
from repro.air.registry import register_scheme
from repro.broadcast.packet import Segment, SegmentKind
from repro.index.spq import ShortestPathQuadTreeIndex
from repro.network.algorithms.paths import PathResult
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.graph import RoadNetwork
from repro.air.records import DEFAULT_LAYOUT, RecordLayout

__all__ = ["SPQBroadcastScheme", "SPQParams"]


@dataclass(frozen=True)
class SPQParams:
    """Tunable knobs of the shortest path quad-tree adaptation."""

    max_depth: int = 16


@register_scheme(
    "SPQ",
    params=SPQParams,
    description="Full-cycle SPQ adaptation: adjacency + per-node quad-trees (Table 1 only)",
    comparison=False,
)
class SPQBroadcastScheme(FullCycleScheme):
    """Adjacency plus one colored quad-tree per node, received in full."""

    short_name = "SPQ"

    def __init__(
        self,
        network: RoadNetwork,
        max_depth: int = 16,
        layout: RecordLayout = DEFAULT_LAYOUT,
    ) -> None:
        super().__init__(network, layout)
        self._configure(max_depth=max_depth)
        self._build_state()

    def _build_state(self) -> None:
        self.index = ShortestPathQuadTreeIndex(self.network, max_depth=self.max_depth)
        self.precomputation_seconds = self.index.precomputation_seconds

    def _artifact_state(self) -> dict:
        return {"index": self.index.state()}

    def _restore_state(self, state: dict) -> None:
        self.index = ShortestPathQuadTreeIndex.from_state(self.network, state["index"])

    def _precomputed_segments(self) -> List[Segment]:
        return [
            Segment(
                name="spq-quadtrees",
                kind=SegmentKind.PRECOMPUTED,
                size_bytes=self.layout.spq_bytes(self.index.total_blocks()),
                payload={"blocks": self.index.total_blocks()},
            )
        ]

    def local_query(self, source: int, target: int, degraded: bool) -> PathResult:
        if degraded:
            # A lost quad-tree means all incident edges of the affected node
            # must be considered (Section 6.2); the safe fallback over the
            # fully received network is a plain Dijkstra.
            return shortest_path(self.network, source, target)
        return self.index.query(source, target)
