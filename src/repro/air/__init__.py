"""Air-index schemes: the paper's core contribution.

Every scheme pairs a server-side broadcast cycle builder with a client-side
query processor that tunes into the simulated channel selectively:

* :class:`DijkstraBroadcastScheme`, :class:`ArcFlagBroadcastScheme`,
  :class:`LandmarkBroadcastScheme` -- the full-cycle adaptations of
  Section 3.2,
* :class:`HiTiBroadcastScheme`, :class:`SPQBroadcastScheme` -- the
  pre-computation-heavy adaptations used to quantify oversized indexes,
* :class:`EllipticBoundaryScheme` (EB, Section 4) and
  :class:`NextRegionScheme` (NR, Section 5) -- the paper's novel methods.

Schemes self-register in a pluggable registry (:mod:`repro.air.registry`);
prefer constructing them by short name over hard-coding classes::

    from repro import air

    air.available_schemes()                    # ['DJ', 'NR', 'EB', ...]
    scheme = air.create("NR", network, num_regions=16)
    client = scheme.client(options=air.ClientOptions(loss_rate=0.05))
"""

from repro.air.base import AirClient, AirIndexScheme, ClientOptions, QueryResult
from repro.air.records import RecordLayout, DEFAULT_LAYOUT
from repro.air.border_paths import BorderPathPrecomputation
from repro.air.registry import (
    SchemeInfo,
    available_schemes,
    canonical_name,
    comparison_schemes,
    create,
    get_scheme,
    params_from_config,
    register_scheme,
    scheme_defaults,
)

# Importing the scheme modules populates the registry; the import order below
# fixes the order in which ``available_schemes()`` lists them (paper order:
# the baseline first, then the paper's methods, then the Table-1-only ones).
from repro.air.dijkstra_air import DijkstraBroadcastScheme, DJParams
from repro.air.nr import NextRegionScheme, NRParams
from repro.air.eb import EllipticBoundaryScheme, EBParams
from repro.air.landmark_air import LandmarkBroadcastScheme, LDParams
from repro.air.arcflag_air import ArcFlagBroadcastScheme, AFParams
from repro.air.spq_air import SPQBroadcastScheme, SPQParams
from repro.air.hiti_air import HiTiBroadcastScheme, HiTiParams

__all__ = [
    "AFParams",
    "AirClient",
    "AirIndexScheme",
    "ArcFlagBroadcastScheme",
    "BorderPathPrecomputation",
    "ClientOptions",
    "DEFAULT_LAYOUT",
    "DJParams",
    "DijkstraBroadcastScheme",
    "EBParams",
    "EllipticBoundaryScheme",
    "HiTiBroadcastScheme",
    "HiTiParams",
    "LDParams",
    "LandmarkBroadcastScheme",
    "NRParams",
    "NextRegionScheme",
    "QueryResult",
    "RecordLayout",
    "SPQBroadcastScheme",
    "SPQParams",
    "SchemeInfo",
    "available_schemes",
    "canonical_name",
    "comparison_schemes",
    "create",
    "get_scheme",
    "params_from_config",
    "register_scheme",
    "scheme_defaults",
]

#: Back-compat view of the registry: short name -> scheme class.  Prefer
#: :func:`available_schemes` / :func:`get_scheme` / :func:`create`.
SCHEME_REGISTRY = {name: get_scheme(name).cls for name in available_schemes()}
