"""Air-index schemes: the paper's core contribution.

Every scheme pairs a server-side broadcast cycle builder with a client-side
query processor that tunes into the simulated channel selectively:

* :class:`DijkstraBroadcastScheme`, :class:`ArcFlagBroadcastScheme`,
  :class:`LandmarkBroadcastScheme` -- the full-cycle adaptations of
  Section 3.2,
* :class:`HiTiBroadcastScheme`, :class:`SPQBroadcastScheme` -- the
  pre-computation-heavy adaptations used to quantify oversized indexes,
* :class:`EllipticBoundaryScheme` (EB, Section 4) and
  :class:`NextRegionScheme` (NR, Section 5) -- the paper's novel methods.
"""

from repro.air.base import AirClient, AirIndexScheme, QueryResult
from repro.air.records import RecordLayout, DEFAULT_LAYOUT
from repro.air.border_paths import BorderPathPrecomputation
from repro.air.dijkstra_air import DijkstraBroadcastScheme
from repro.air.arcflag_air import ArcFlagBroadcastScheme
from repro.air.landmark_air import LandmarkBroadcastScheme
from repro.air.hiti_air import HiTiBroadcastScheme
from repro.air.spq_air import SPQBroadcastScheme
from repro.air.eb import EllipticBoundaryScheme
from repro.air.nr import NextRegionScheme

__all__ = [
    "AirClient",
    "AirIndexScheme",
    "ArcFlagBroadcastScheme",
    "BorderPathPrecomputation",
    "DEFAULT_LAYOUT",
    "DijkstraBroadcastScheme",
    "EllipticBoundaryScheme",
    "HiTiBroadcastScheme",
    "LandmarkBroadcastScheme",
    "NextRegionScheme",
    "QueryResult",
    "RecordLayout",
    "SPQBroadcastScheme",
]

#: Registry of scheme constructors keyed by the short names the paper uses.
SCHEME_REGISTRY = {
    "DJ": DijkstraBroadcastScheme,
    "AF": ArcFlagBroadcastScheme,
    "LD": LandmarkBroadcastScheme,
    "HiTi": HiTiBroadcastScheme,
    "SPQ": SPQBroadcastScheme,
    "EB": EllipticBoundaryScheme,
    "NR": NextRegionScheme,
}
