"""Broadcast adaptation of ArcFlag (paper Section 3.2).

The cycle carries, besides the adjacency lists, one flag vector per edge
(one entry per region).  Selective tuning is impossible for the same reason
as Dijkstra, so the client receives the whole cycle; the flags only speed up
the local search.  When flag packets are lost, the affected flags are assumed
to be all ones (Section 6.2), which keeps the search correct but less pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.air.full_cycle import FullCycleScheme
from repro.air.registry import register_scheme
from repro.broadcast.packet import Segment, SegmentKind
from repro.index.arcflag import ArcFlagIndex
from repro.network.algorithms.paths import PathResult
from repro.network.graph import RoadNetwork
from repro.partitioning.kdtree import build_kdtree_partitioning
from repro.air.records import DEFAULT_LAYOUT, RecordLayout
from repro.serialize.graphs import partitioning_state, restore_partitioning

__all__ = ["ArcFlagBroadcastScheme", "AFParams"]


@dataclass(frozen=True)
class AFParams:
    """Tunable knobs of the ArcFlag broadcast adaptation."""

    num_regions: int = 16


@register_scheme(
    "AF",
    params=AFParams,
    description="Full-cycle ArcFlag adaptation: adjacency + edge flags (Section 3.2)",
    config_map={"num_regions": "arcflag_regions"},
)
class ArcFlagBroadcastScheme(FullCycleScheme):
    """Adjacency plus per-edge region flags, received in full by the client."""

    short_name = "AF"

    def __init__(
        self,
        network: RoadNetwork,
        num_regions: int = 16,
        layout: RecordLayout = DEFAULT_LAYOUT,
    ) -> None:
        super().__init__(network, layout)
        self._configure(num_regions=num_regions)
        self._build_state()

    def _build_state(self) -> None:
        self.partitioning = build_kdtree_partitioning(self.network, self.num_regions)
        self.index = ArcFlagIndex(self.network, self.partitioning)
        self.precomputation_seconds = self.index.precomputation_seconds

    def _artifact_state(self) -> dict:
        return {
            "partitioning": partitioning_state(self.partitioning),
            "index": self.index.state(),
        }

    def _restore_state(self, state: dict) -> None:
        self.partitioning = restore_partitioning(self.network, state["partitioning"])
        self.index = ArcFlagIndex.from_state(
            self.network, self.partitioning, state["index"]
        )

    def _precomputed_segments(self) -> List[Segment]:
        flag_bytes = self.network.num_edges * self.layout.arcflag_bytes_per_edge(
            self.num_regions
        )
        return [
            Segment(
                name="arcflag-flags",
                kind=SegmentKind.PRECOMPUTED,
                size_bytes=flag_bytes,
                payload={"num_regions": self.num_regions},
            )
        ]

    def local_query(self, source: int, target: int, degraded: bool) -> PathResult:
        if degraded:
            # Lost flag packets: assume all bits set, i.e. fall back to an
            # unpruned Dijkstra over the received network.
            from repro.network.algorithms.dijkstra import shortest_path

            return shortest_path(self.network, source, target)
        return self.index.query(source, target)
