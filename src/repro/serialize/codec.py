"""Deterministic tagged binary codec for plain Python values.

The value model covers exactly what the schemes' built state is made of:
``None``, ``bool``, ``int`` (arbitrary precision), ``float`` (IEEE-754
doubles, encoded exactly), ``str``, ``bytes``, ``list``, ``tuple``, ``dict``,
``set`` and ``frozenset``.  Three properties matter for the bit-identity
contract of the build/serve split:

* **Order preservation.**  Lists, tuples and dict insertion order round-trip
  exactly -- several structures (a Dijkstra sweep's settle-order distance
  dict, ArcFlag's edge-order flag table) rely on insertion order matching a
  from-scratch build.  Sets carry no meaningful order and are stored sorted,
  which also makes the encoding canonical.
* **Exactness.**  Floats are encoded as their 8 raw IEEE-754 bytes (``inf``
  included), ints as unbounded zigzag varints, so no value is rounded.
* **Determinism.**  Equal values encode to equal bytes (given equal
  insertion orders), so artifact files are reproducible and the store's
  checksums are stable.

Large homogeneous containers -- the distance tables dominating a scheme's
state -- take bulk fast paths: a list/tuple of ``int64``-range ints or of
floats is packed through :class:`array.array` in one shot, and dicts encode
as a key list plus a value list so both sides inherit the same fast paths.
"""

from __future__ import annotations

import sys
from array import array
from typing import Any, Tuple

__all__ = ["CodecError", "encode_value", "decode_value"]

_LITTLE_ENDIAN = sys.byteorder == "little"

# One byte per value tag.  Changing any tag's wire layout is a format
# change: bump repro.serialize.artifacts.FORMAT_VERSION alongside.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_SET = 0x0A
_T_FROZENSET = 0x0B
_T_LIST_I64 = 0x0C
_T_LIST_F64 = 0x0D
_T_TUPLE_I64 = 0x0E
_T_TUPLE_F64 = 0x0F


class CodecError(ValueError):
    """Raised for unsupported values on encode or malformed bytes on decode."""


# ----------------------------------------------------------------------
# Varints (unsigned base-128, zigzag for signed)
# ----------------------------------------------------------------------
def _write_uvarint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _zigzag(value: int) -> int:
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


class _Reader:
    """Sequential reader over the encoded bytes with bounds checking.

    ``data`` may be ``bytes`` or a 1-D uint8 ``memoryview`` (e.g. over a
    shared-memory segment); slicing a memoryview is zero-copy, so a reader
    over one never duplicates the underlying buffer.  ``bytes_views``
    controls what :data:`_T_BYTES` values decode to: copies (``False``, the
    default) or zero-copy sub-views of ``data`` (``True``).
    """

    __slots__ = ("data", "pos", "bytes_views")

    def __init__(self, data, bytes_views: bool = False) -> None:
        self.data = data
        self.pos = 0
        self.bytes_views = bytes_views

    def take(self, count: int):
        end = self.pos + count
        if end > len(self.data):
            raise CodecError("truncated value: ran past the end of the buffer")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def uvarint(self) -> int:
        data = self.data
        pos = self.pos
        result = 0
        shift = 0
        while True:
            if pos >= len(data):
                raise CodecError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        self.pos = pos
        return result


# ----------------------------------------------------------------------
# Bulk (homogeneous) container fast paths
# ----------------------------------------------------------------------
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _bulk_pack(value) -> Tuple[int, bytes]:
    """Try the homogeneous fast path; returns ``(kind, packed)`` or ``(0, b"")``.

    ``kind`` is 1 for int64 payloads, 2 for float payloads.  ``bool`` is a
    subclass of ``int``, so element types are checked exactly -- ``True``
    must round-trip as ``True``, not ``1``.
    """
    first_type = type(value[0])
    if first_type is int:
        for item in value:
            if type(item) is not int or item < _I64_MIN or item > _I64_MAX:
                return 0, b""
        packed = array("q", value)
    elif first_type is float:
        for item in value:
            if type(item) is not float:
                return 0, b""
        packed = array("d", value)
    else:
        return 0, b""
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        packed.byteswap()
    return (1 if first_type is int else 2), packed.tobytes()


def _bulk_unpack(reader: _Reader, typecode: str) -> list:
    count = reader.uvarint()
    packed = array(typecode)
    packed.frombytes(reader.take(count * packed.itemsize))
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        packed.byteswap()
    return packed.tolist()


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _encode(buf: bytearray, value: Any) -> None:
    kind = type(value)
    if value is None:
        buf.append(_T_NONE)
    elif kind is bool:
        buf.append(_T_TRUE if value else _T_FALSE)
    elif kind is int:
        buf.append(_T_INT)
        _write_uvarint(buf, _zigzag(value))
    elif kind is float:
        buf.append(_T_FLOAT)
        packed = array("d", (value,))
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            packed.byteswap()
        buf += packed.tobytes()
    elif kind is str:
        raw = value.encode("utf-8")
        buf.append(_T_STR)
        _write_uvarint(buf, len(raw))
        buf += raw
    elif kind is bytes:
        buf.append(_T_BYTES)
        _write_uvarint(buf, len(value))
        buf += value
    elif kind is memoryview:
        # A zero-copy decode hands byte blobs back as memoryviews; encoding
        # them as plain bytes keeps re-publication (e.g. a restored scheme's
        # still-encoded sources blob) byte-identical to the original.
        raw = value.tobytes()
        buf.append(_T_BYTES)
        _write_uvarint(buf, len(raw))
        buf += raw
    elif kind is list or kind is tuple:
        is_list = kind is list
        if value:
            bulk_kind, packed = _bulk_pack(value)
            if bulk_kind:
                if bulk_kind == 1:
                    buf.append(_T_LIST_I64 if is_list else _T_TUPLE_I64)
                else:
                    buf.append(_T_LIST_F64 if is_list else _T_TUPLE_F64)
                _write_uvarint(buf, len(value))
                buf += packed
                return
        buf.append(_T_LIST if is_list else _T_TUPLE)
        _write_uvarint(buf, len(value))
        for item in value:
            _encode(buf, item)
    elif kind is dict:
        # Keys then values, each as one container, so large homogeneous
        # dicts (node id -> distance) hit the bulk paths on both sides.
        buf.append(_T_DICT)
        _encode(buf, list(value.keys()))
        _encode(buf, list(value.values()))
    elif kind is set or kind is frozenset:
        buf.append(_T_SET if kind is set else _T_FROZENSET)
        try:
            items = sorted(value)
        except TypeError as exc:
            raise CodecError(f"set elements must be sortable: {exc}") from None
        _encode(buf, items)
    else:
        raise CodecError(f"cannot encode value of type {kind.__name__}")


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def _decode(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _unzigzag(reader.uvarint())
    if tag == _T_FLOAT:
        packed = array("d")
        packed.frombytes(reader.take(8))
        if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
            packed.byteswap()
        return packed[0]
    if tag == _T_STR:
        try:
            return str(reader.take(reader.uvarint()), "utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"malformed utf-8 string: {exc}") from None
    if tag == _T_BYTES:
        chunk = reader.take(reader.uvarint())
        if reader.bytes_views and type(chunk) is memoryview:
            return chunk
        return bytes(chunk)
    if tag == _T_LIST or tag == _T_TUPLE:
        count = reader.uvarint()
        items = [_decode(reader) for _ in range(count)]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_LIST_I64 or tag == _T_TUPLE_I64:
        items = _bulk_unpack(reader, "q")
        return items if tag == _T_LIST_I64 else tuple(items)
    if tag == _T_LIST_F64 or tag == _T_TUPLE_F64:
        items = _bulk_unpack(reader, "d")
        return items if tag == _T_LIST_F64 else tuple(items)
    if tag == _T_DICT:
        keys = _decode(reader)
        values = _decode(reader)
        if type(keys) is not list or type(values) is not list or len(keys) != len(values):
            raise CodecError("malformed dict encoding")
        try:
            return dict(zip(keys, values))
        except TypeError as exc:  # corrupt bytes decoding an unhashable key
            raise CodecError(f"malformed dict encoding: {exc}") from None
    if tag == _T_SET or tag == _T_FROZENSET:
        items = _decode(reader)
        if type(items) not in (list, tuple):
            raise CodecError("malformed set encoding")
        try:
            return set(items) if tag == _T_SET else frozenset(items)
        except TypeError as exc:  # corrupt bytes decoding an unhashable item
            raise CodecError(f"malformed set encoding: {exc}") from None
    raise CodecError(f"unknown value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def encode_value(value: Any) -> bytes:
    """Encode a plain value to its deterministic binary form."""
    buf = bytearray()
    _encode(buf, value)
    return bytes(buf)


def decode_value(data, *, bytes_views: bool = False) -> Any:
    """Decode bytes produced by :func:`encode_value`.

    ``data`` may be ``bytes`` or a contiguous ``memoryview`` (a shared-memory
    mapping, say).  With ``bytes_views=True`` *and* a memoryview input,
    ``bytes`` values decode to zero-copy sub-views of ``data`` instead of
    copies -- the serving workers use this so an index blob inside a shared
    segment is referenced, never duplicated, per process.  View outputs stay
    valid only as long as the underlying buffer; everything else (ints,
    floats, strings, containers) is a normal owned object either way.

    Raises :class:`CodecError` on malformed or trailing bytes -- a value
    must occupy the buffer exactly.
    """
    if type(data) is memoryview and data.format != "B":
        data = data.cast("B")
    reader = _Reader(data, bytes_views=bytes_views)
    value = _decode(reader)
    if reader.pos != len(data):
        raise CodecError(
            f"trailing bytes after value ({len(data) - reader.pos} unread)"
        )
    return value
