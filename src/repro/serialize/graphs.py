"""Codecs for the shared substrate objects of the air-index system.

Everything here round-trips through the *plain value* model of
:mod:`repro.serialize.codec`: each object gets a ``*_state`` function
producing plain values and a ``restore_*`` function rebuilding the object,
plus ``encode_*``/``decode_*`` convenience wrappers where a standalone byte
form is useful.  The restore functions preserve the orders behaviour depends
on -- node insertion order, adjacency order, CSR index order -- so restored
objects are bit-identical substrates for the schemes built on top.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List

from repro.broadcast.cycle import BroadcastCycle
from repro.network.csr import CSRGraph
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning
from repro.partitioning.grid import GridPartitioner
from repro.partitioning.kdtree import KDTreePartitioner
from repro.serialize.codec import CodecError, decode_value, encode_value

__all__ = [
    "network_state",
    "restore_network",
    "encode_network",
    "decode_network",
    "csr_state",
    "restore_csr",
    "partitioning_state",
    "restore_partitioning",
    "cycle_layout",
]


# ----------------------------------------------------------------------
# RoadNetwork
# ----------------------------------------------------------------------
def network_state(network: RoadNetwork) -> Dict[str, Any]:
    """Plain-value snapshot of a network, orders preserved.

    Nodes are listed in insertion order and edges in adjacency-list order
    (grouped per source node), which is exactly what :func:`restore_network`
    replays -- the restored network has the same ``node_ids()`` sequence,
    the same per-node edge order, and therefore the same fingerprint and
    the same Dijkstra tie-breaking as the original.
    """
    node_ids: List[int] = []
    xs: List[float] = []
    ys: List[float] = []
    for node in network.nodes():
        node_ids.append(node.node_id)
        xs.append(node.x)
        ys.append(node.y)
    sources: List[int] = []
    targets: List[int] = []
    weights: List[float] = []
    for edge in network.edges():
        sources.append(edge.source)
        targets.append(edge.target)
        weights.append(edge.weight)
    return {
        "name": network.name,
        "node_ids": node_ids,
        "xs": xs,
        "ys": ys,
        "edge_sources": sources,
        "edge_targets": targets,
        "edge_weights": weights,
    }


def restore_network(state: Dict[str, Any]) -> RoadNetwork:
    """Rebuild a :class:`RoadNetwork` from :func:`network_state` output."""
    network = RoadNetwork(name=state["name"])
    for node_id, x, y in zip(state["node_ids"], state["xs"], state["ys"]):
        network.add_node(node_id, x, y)
    for source, target, weight in zip(
        state["edge_sources"], state["edge_targets"], state["edge_weights"]
    ):
        network.add_edge(source, target, weight)
    network.clear_delta()  # a finished artifact, not a pile of pending updates
    return network


def encode_network(network: RoadNetwork) -> bytes:
    """Standalone byte form of a network (codec-encoded state)."""
    return encode_value(network_state(network))


def decode_network(data: bytes) -> RoadNetwork:
    """Inverse of :func:`encode_network`."""
    return restore_network(decode_value(data))


# ----------------------------------------------------------------------
# CSRGraph
# ----------------------------------------------------------------------
def csr_state(csr: CSRGraph) -> Dict[str, Any]:
    """Plain-value snapshot of a compiled CSR graph (flat arrays + ids)."""
    return {
        "name": csr.name,
        "ids": list(csr.ids),
        "fwd_offsets": csr.fwd_offsets.tolist(),
        "fwd_targets": csr.fwd_targets.tolist(),
        "fwd_weights": csr.fwd_weights.tolist(),
        "rev_offsets": csr.rev_offsets.tolist(),
        "rev_targets": csr.rev_targets.tolist(),
        "rev_weights": csr.rev_weights.tolist(),
    }


def restore_csr(state: Dict[str, Any]) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` from :func:`csr_state` output.

    The arrays use the kernel's native typecodes (``'l'`` offsets/targets,
    ``'d'`` weights), so the restored snapshot is indistinguishable from a
    freshly compiled one.
    """
    return CSRGraph(
        list(state["ids"]),
        array("l", state["fwd_offsets"]),
        array("l", state["fwd_targets"]),
        array("d", state["fwd_weights"]),
        array("l", state["rev_offsets"]),
        array("l", state["rev_targets"]),
        array("d", state["rev_weights"]),
        name=state["name"],
    )


# ----------------------------------------------------------------------
# Partitionings
# ----------------------------------------------------------------------
def partitioning_state(partitioning: Partitioning) -> Dict[str, Any]:
    """Plain-value form of a partitioning's *locator*.

    Only the locator is stored: region membership and border sets are pure
    functions of (locator, network) and are recomputed on restore, exactly
    as the paper's clients rebuild the kd-tree from the broadcast splitting
    values alone.
    """
    locator = partitioning.locator
    if isinstance(locator, KDTreePartitioner):
        return {
            "kind": "kdtree",
            "num_regions": locator.num_regions,
            "splits": locator.splitting_values(),
        }
    if isinstance(locator, GridPartitioner):
        return {
            "kind": "grid",
            "bounds": list(locator.bounds),
            "rows": locator.rows,
            "cols": locator.cols,
        }
    raise CodecError(
        f"cannot serialize partitioning locator of type {type(locator).__name__}"
    )


def restore_partitioning(network: RoadNetwork, state: Dict[str, Any]) -> Partitioning:
    """Rebuild a :class:`Partitioning` over ``network`` from its locator state."""
    kind = state["kind"]
    if kind == "kdtree":
        locator = KDTreePartitioner.from_splitting_values(
            state["splits"], state["num_regions"]
        )
    elif kind == "grid":
        locator = GridPartitioner(tuple(state["bounds"]), state["rows"], state["cols"])
    else:
        raise CodecError(f"unknown partitioning kind {kind!r}")
    return Partitioning(network, locator)


# ----------------------------------------------------------------------
# BroadcastCycle layouts
# ----------------------------------------------------------------------
def cycle_layout(cycle: BroadcastCycle) -> Dict[str, Any]:
    """The on-air layout of a cycle as plain values (payloads excluded).

    One record per segment -- name, kind, payload size, packet count,
    region -- in broadcast order.  This pins down every packet position of
    the cycle without duplicating the (scheme-owned) payload objects:
    artifacts embed it so a restore can verify that the cycle it re-lays
    from the restored state matches the one the build produced, and the
    store's inspection tooling prints it without touching scheme state.
    """
    return {
        "name": cycle.name,
        "total_packets": cycle.total_packets,
        "segments": [
            [
                segment.name,
                segment.kind.value,
                segment.size_bytes,
                segment.num_packets,
                segment.region,
            ]
            for segment in cycle.segments
        ],
    }
