"""Versioned build artifacts: the unit the build/serve split moves around.

A :class:`BuildArtifact` carries everything a serving process needs to
reconstruct one scheme's built state over a network it already has: the
scheme's canonical name, its full parameter set, the fingerprint of the
network the state was computed over, and the scheme-specific payload encoded
with :mod:`repro.serialize.codec`.

On disk (and on the wire) an artifact is framed as::

    magic "AIRX" | u16 format version | u32 header length | header | payload | sha256

where the header is the codec encoding of a small dict (scheme, params,
network fingerprint, payload length) and the trailing sha256 covers every
preceding byte.  The framing gives the three failure modes their own
exception types so the store can react precisely: a bad magic/length/digest
is *corruption* (quarantine), a different format version is *staleness*
(rebuild cleanly), and a fingerprint that does not match the caller's
network is a *mismatch* (refuse to restore).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.serialize.codec import CodecError, decode_value, encode_value

__all__ = [
    "ARTIFACT_MAGIC",
    "FORMAT_VERSION",
    "STREAM_CHUNK_BYTES",
    "ArtifactError",
    "ArtifactChecksumError",
    "ArtifactVersionError",
    "ArtifactMismatchError",
    "BuildArtifact",
    "params_fingerprint",
]

#: First bytes of every artifact file.
ARTIFACT_MAGIC = b"AIRX"

#: Version of the serialized artifact layout *and* of every scheme's payload
#: schema.  Bump whenever either moves: readers reject other versions with
#: :class:`ArtifactVersionError`, which the store turns into a clean rebuild.
FORMAT_VERSION = 2

_CHECKSUM_BYTES = 32  # sha256 digest size
_PREFIX = struct.Struct("<HI")  # format version, header length

#: Copy granularity of the streaming encode/decode paths: large payloads
#: (continental CSR states) move between artifact and file in bounded
#: slices instead of one concatenated body + checksum copy.
STREAM_CHUNK_BYTES = 4 * 1024 * 1024


class ArtifactError(ValueError):
    """Base class for artifact encoding/decoding failures."""


class ArtifactChecksumError(ArtifactError):
    """The artifact bytes are corrupted (bad magic, framing, or digest)."""


class ArtifactVersionError(ArtifactError):
    """The artifact was written by a different format version."""

    def __init__(self, found: int, expected: int) -> None:
        super().__init__(
            f"artifact format version {found} != supported version {expected}"
        )
        self.found = found
        self.expected = expected


class ArtifactMismatchError(ArtifactError):
    """The artifact does not belong to the given scheme/network."""


def params_fingerprint(params: Mapping[str, Any]) -> str:
    """Canonical digest of a scheme's full parameter set.

    Key-order independent (items are sorted), value-exact (computed over the
    codec encoding, so ``1`` and ``True`` and ``1.0`` all differ).  Part of
    the store key alongside the network fingerprint and format version.
    """
    encoded = encode_value(tuple(sorted(params.items())))
    return hashlib.sha256(encoded).hexdigest()


@dataclass(frozen=True)
class BuildArtifact:
    """One scheme's built state, detached from any live object graph."""

    #: Canonical scheme name (the registry key, e.g. ``"NR"``).
    scheme: str
    #: Full parameter set (every dataclass field, defaults included).
    params: Dict[str, Any]
    #: ``RoadNetwork.fingerprint()`` of the network the state was built over.
    network_fingerprint: str
    #: Scheme-specific state, already codec-encoded.
    payload: bytes
    #: Format version the payload schema follows.
    format_version: int = FORMAT_VERSION

    def params_fingerprint(self) -> str:
        """Digest of :attr:`params` (see :func:`params_fingerprint`)."""
        return params_fingerprint(self.params)

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize with magic, version, header, payload and checksum."""
        header = encode_value(
            {
                "scheme": self.scheme,
                "params": dict(self.params),
                "network_fingerprint": self.network_fingerprint,
                "payload_bytes": len(self.payload),
            }
        )
        body = (
            ARTIFACT_MAGIC
            + _PREFIX.pack(self.format_version, len(header))
            + header
            + self.payload
        )
        return body + hashlib.sha256(body).digest()

    def write_to(self, handle, chunk_bytes: int = STREAM_CHUNK_BYTES) -> int:
        """Stream the framed encoding to a binary file object.

        Byte-for-byte identical output to ``handle.write(self.to_bytes())``
        but without ever concatenating the body: the payload moves in
        ``chunk_bytes`` slices while the checksum accumulates incrementally,
        so the extra memory is O(chunk) regardless of payload size (this is
        what keeps store publishes of continental CSR states flat).  Returns
        the number of bytes written.
        """
        digest = hashlib.sha256()
        header = encode_value(
            {
                "scheme": self.scheme,
                "params": dict(self.params),
                "network_fingerprint": self.network_fingerprint,
                "payload_bytes": len(self.payload),
            }
        )
        prefix = ARTIFACT_MAGIC + _PREFIX.pack(self.format_version, len(header)) + header
        handle.write(prefix)
        digest.update(prefix)
        payload = memoryview(self.payload)
        for start in range(0, len(payload), chunk_bytes):
            chunk = payload[start : start + chunk_bytes]
            handle.write(chunk)
            digest.update(chunk)
        handle.write(digest.digest())
        return len(prefix) + len(payload) + _CHECKSUM_BYTES

    @classmethod
    def read_from(cls, handle, chunk_bytes: int = STREAM_CHUNK_BYTES) -> "BuildArtifact":
        """Parse and fully validate an artifact from a binary file object.

        The streaming dual of :meth:`from_bytes`: the payload is read into
        a single buffer in ``chunk_bytes`` slices with the checksum
        accumulating alongside, so the framed whole (prefix + header +
        payload + digest) is never materialized as one contiguous copy the
        way ``read_bytes()`` + :meth:`from_bytes` does.
        Raises the same exceptions for the same failure modes -- truncation,
        bad magic, digest mismatch, or trailing garbage are
        :class:`ArtifactChecksumError`; a foreign format version is
        :class:`ArtifactVersionError` (checked before the header is
        interpreted).
        """
        digest = hashlib.sha256()
        prefix_len = len(ARTIFACT_MAGIC) + _PREFIX.size
        prefix = handle.read(prefix_len)
        if len(prefix) < prefix_len:
            raise ArtifactChecksumError("artifact truncated")
        if prefix[: len(ARTIFACT_MAGIC)] != ARTIFACT_MAGIC:
            raise ArtifactChecksumError("bad artifact magic")
        version, header_len = _PREFIX.unpack_from(prefix, len(ARTIFACT_MAGIC))
        if version != FORMAT_VERSION:
            raise ArtifactVersionError(version, FORMAT_VERSION)
        header_bytes = handle.read(header_len)
        if len(header_bytes) < header_len:
            raise ArtifactChecksumError("artifact header truncated")
        digest.update(prefix)
        digest.update(header_bytes)
        try:
            header = decode_value(header_bytes)
        except (CodecError, RecursionError) as exc:
            raise ArtifactChecksumError(f"malformed artifact header: {exc}") from None
        cls._check_header_fields(header)

        payload_bytes = header["payload_bytes"]
        payload = bytearray(payload_bytes)
        view = memoryview(payload)
        filled = 0
        while filled < payload_bytes:
            want = min(chunk_bytes, payload_bytes - filled)
            got = handle.readinto(view[filled : filled + want])
            if not got:
                raise ArtifactChecksumError("artifact truncated")
            digest.update(view[filled : filled + got])
            filled += got
        trailer = handle.read(_CHECKSUM_BYTES)
        if len(trailer) < _CHECKSUM_BYTES:
            raise ArtifactChecksumError("artifact truncated")
        if handle.read(1):
            raise ArtifactChecksumError("artifact has trailing bytes")
        if digest.digest() != trailer:
            raise ArtifactChecksumError("artifact checksum mismatch")
        return cls(
            scheme=header["scheme"],
            params=header["params"],
            network_fingerprint=header["network_fingerprint"],
            payload=bytes(payload),
            format_version=version,
        )

    @classmethod
    def from_bytes(cls, data, *, copy_payload: bool = True) -> "BuildArtifact":
        """Parse and fully validate artifact bytes.

        Raises :class:`ArtifactChecksumError` for corruption of any sort and
        :class:`ArtifactVersionError` for a foreign format version (version
        is checked before the header is decoded: a future format may change
        the codec itself, so foreign headers are never interpreted -- and
        stale-but-intact files stay distinguishable from damaged ones).

        ``data`` may be ``bytes`` or a ``memoryview`` over a larger mapping
        (a shared-memory segment).  With ``copy_payload=False`` and a
        memoryview input, the returned artifact's :attr:`payload` is a
        zero-copy sub-view of ``data`` -- valid only while the underlying
        buffer stays mapped.  Validation (checksum included) is identical
        either way.
        """
        version, header = cls._parse_header(data)
        body, digest = data[:-_CHECKSUM_BYTES], data[-_CHECKSUM_BYTES:]
        if hashlib.sha256(body).digest() != bytes(digest):
            raise ArtifactChecksumError("artifact checksum mismatch")
        payload_bytes = header["payload_bytes"]
        payload_start = len(data) - _CHECKSUM_BYTES - payload_bytes
        payload = data[payload_start : payload_start + payload_bytes]
        if copy_payload or type(payload) is not memoryview:
            payload = bytes(payload)
        return cls(
            scheme=header["scheme"],
            params=header["params"],
            network_fingerprint=header["network_fingerprint"],
            payload=payload,
            format_version=version,
        )

    @classmethod
    def read_header(cls, data: bytes, total_size: Optional[int] = None) -> Dict[str, Any]:
        """Parse only the header (no checksum verification).

        Cheap metadata access for store listings; returns the header dict
        plus the format version under ``"format_version"``.  ``data`` may be
        just a file *prefix* covering the header when ``total_size`` carries
        the full file length -- listings then cost a bounded read per entry
        instead of the whole artifact.  Foreign format versions raise
        :class:`ArtifactVersionError` without interpreting their header.
        """
        version, header = cls._parse_header(data, total_size)
        header["format_version"] = version
        return header

    @staticmethod
    def _check_header_fields(header) -> None:
        if not isinstance(header, dict) or not {
            "scheme",
            "params",
            "network_fingerprint",
            "payload_bytes",
        } <= set(header):
            raise ArtifactChecksumError("incomplete artifact header")
        if type(header["payload_bytes"]) is not int or header["payload_bytes"] < 0:
            raise ArtifactChecksumError("malformed artifact header: bad payload length")

    @staticmethod
    def _parse_header(
        data: bytes, total_size: Optional[int] = None
    ) -> Tuple[int, Dict[str, Any]]:
        total = len(data) if total_size is None else total_size
        prefix_end = len(ARTIFACT_MAGIC) + _PREFIX.size
        if total < prefix_end + _CHECKSUM_BYTES or len(data) < prefix_end:
            raise ArtifactChecksumError("artifact truncated")
        if data[: len(ARTIFACT_MAGIC)] != ARTIFACT_MAGIC:
            raise ArtifactChecksumError("bad artifact magic")
        version, header_len = _PREFIX.unpack_from(data, len(ARTIFACT_MAGIC))
        if version != FORMAT_VERSION:
            raise ArtifactVersionError(version, FORMAT_VERSION)
        header_end = prefix_end + header_len
        if header_end + _CHECKSUM_BYTES > total or header_end > len(data):
            raise ArtifactChecksumError("artifact header truncated")
        try:
            header = decode_value(bytes(data[prefix_end:header_end]))
        except (CodecError, RecursionError) as exc:
            raise ArtifactChecksumError(f"malformed artifact header: {exc}") from None
        BuildArtifact._check_header_fields(header)
        expected = header_end + header["payload_bytes"] + _CHECKSUM_BYTES
        if expected != total:
            raise ArtifactChecksumError(
                f"artifact length {total} != framed length {expected}"
            )
        return version, header
