"""Versioned binary serialization of built index state (the build/serve split).

The paper's broadcast cycle is a *static artifact* of ``(network, scheme,
params)``: the server pre-computes once and then "repeatedly transmits
identical broadcast cycles".  This package makes that artifact explicit so a
serving process never has to re-run the Table 3 pre-computation it already
paid for:

* :mod:`repro.serialize.codec` -- a deterministic, order-preserving tagged
  binary codec for plain Python values (the value model every scheme's built
  state is expressed in), with bulk ``int64``/``float64`` fast paths for the
  large distance tables.
* :mod:`repro.serialize.artifacts` -- :class:`BuildArtifact`, the versioned
  container (magic, format version, payload checksum) produced by
  :meth:`~repro.air.base.AirIndexScheme.artifact` and consumed by
  :meth:`~repro.air.base.AirIndexScheme.from_artifact`.
* :mod:`repro.serialize.graphs` -- codecs for the shared substrate objects:
  :class:`~repro.network.graph.RoadNetwork`,
  :class:`~repro.network.csr.CSRGraph`, kd/grid
  :class:`~repro.partitioning.base.Partitioning`, and
  :class:`~repro.broadcast.cycle.BroadcastCycle` layouts.

The hard contract throughout is **bit identity**: a scheme restored from an
artifact must serve queries, refresh, and replay exactly like one built from
scratch.  The codec therefore preserves container kinds (list vs tuple),
dict insertion order, and IEEE-754 doubles exactly; sets are stored sorted
(no behaviour in the system depends on set iteration order).
"""

from repro.serialize.artifacts import (
    ARTIFACT_MAGIC,
    FORMAT_VERSION,
    ArtifactChecksumError,
    ArtifactError,
    ArtifactMismatchError,
    ArtifactVersionError,
    BuildArtifact,
    params_fingerprint,
)
from repro.serialize.codec import decode_value, encode_value
from repro.serialize.graphs import (
    csr_state,
    cycle_layout,
    decode_network,
    encode_network,
    network_state,
    partitioning_state,
    restore_csr,
    restore_network,
    restore_partitioning,
)

__all__ = [
    "ARTIFACT_MAGIC",
    "FORMAT_VERSION",
    "ArtifactChecksumError",
    "ArtifactError",
    "ArtifactMismatchError",
    "ArtifactVersionError",
    "BuildArtifact",
    "params_fingerprint",
    "encode_value",
    "decode_value",
    "network_state",
    "restore_network",
    "encode_network",
    "decode_network",
    "csr_state",
    "restore_csr",
    "partitioning_state",
    "restore_partitioning",
    "cycle_layout",
]
