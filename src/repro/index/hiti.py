"""HiTi index (paper Section 2.1, [Jung & Pramanik 2002]).

The network is partitioned (here: by the same kd-tree used for EB/NR); the
resulting sub-graphs are recursively grouped pairwise into higher-level
sub-graphs, forming a tree.  For every sub-graph at every level, the shortest
path distances among its border nodes are pre-computed and stored as
*super-edges*.  Because the kd-tree numbers leaf regions left-to-right, the
level-``k`` sub-graph containing leaf ``r`` is simply the contiguous block of
``2**k`` leaves around it, which is exactly the kd subtree rooted ``k``
levels above the leaf.

Super-edges at level ``k`` are computed on the overlay graph made of the two
children's super-edges plus the original edges crossing between the children
-- the bottom-up construction of the original HiTi paper.

For point-to-point queries this module uses the flat level-0 overlay (source
and target regions in full detail, every other region replaced by its
super-edges).  That is a documented simplification of HiTi's hierarchical
search-graph selection: it returns the same distances and keeps the index
contents (and hence its broadcast size, the quantity the paper evaluates)
identical.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Set, Tuple

from repro.network.algorithms.kernel import KernelArena
from repro.network.algorithms.paths import INFINITY, PathResult
from repro.network.csr import CSRGraph
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["HiTiIndex", "HiTiSubgraph"]

#: Bytes per stored super-edge: two 4-byte node ids plus a 4-byte distance.
BYTES_PER_SUPER_EDGE = 12


@dataclass
class HiTiSubgraph:
    """One sub-graph of the HiTi hierarchy.

    Attributes
    ----------
    level:
        0 for leaf regions, increasing toward the root.
    regions:
        The leaf regions this sub-graph covers (contiguous block).
    border_nodes:
        Nodes of the sub-graph with at least one neighbor outside it.
    super_edges:
        ``(from_border, to_border) -> shortest distance within the sub-graph``.
    """

    level: int
    regions: Tuple[int, ...]
    border_nodes: List[int] = field(default_factory=list)
    super_edges: Dict[Tuple[int, int], float] = field(default_factory=dict)


class HiTiIndex:
    """Hierarchical super-edge index over a kd partitioning."""

    def __init__(self, network: RoadNetwork, partitioning: Partitioning) -> None:
        self.network = network
        self.partitioning = partitioning
        self.num_regions = partitioning.num_regions
        #: ``levels[k]`` maps the first leaf region of a block to its sub-graph.
        self.levels: List[Dict[int, HiTiSubgraph]] = []
        self.precomputation_seconds = 0.0
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        started = time.perf_counter()

        # Level 0: one sub-graph per leaf region, super-edges computed on the
        # induced sub-network of the region.
        self.levels.append(
            {region: self._build_leaf(region) for region in range(self.num_regions)}
        )

        # Higher levels: merge contiguous pairs of blocks.
        block = 1
        while block < self.num_regions:
            block *= 2
            level_index = len(self.levels)
            self.levels.append(
                {
                    first: self._build_block(level_index, first, block)
                    for first in range(0, self.num_regions, block)
                }
            )
        self.precomputation_seconds = time.perf_counter() - started

    def _build_leaf(self, region: int) -> HiTiSubgraph:
        """(Re)compute the level-0 sub-graph of one leaf region."""
        nodes = self.partitioning.nodes_in_region(region)
        keep = set(nodes)
        subgraph = HiTiSubgraph(level=0, regions=(region,))
        subgraph.border_nodes = self.partitioning.border_nodes(region)
        # The induced adjacency, filtered straight off the network's lists
        # (same per-node edge order as materializing a subgraph, without
        # building one).
        neighbors = self.network.adjacency()
        adjacency = {
            n: [(t, w) for t, w in neighbors[n] if t in keep] for n in nodes
        }
        subgraph.super_edges = self._all_pairs_border_distances(
            adjacency=adjacency,
            border_nodes=subgraph.border_nodes,
        )
        return subgraph

    def _build_block(self, level_index: int, first: int, block: int) -> HiTiSubgraph:
        """(Re)compute the level-``level_index`` block starting at leaf ``first``."""
        previous = self.levels[level_index - 1]
        left = previous[first]
        right = previous[first + block // 2]
        covered = set(left.regions) | set(right.regions)
        merged = HiTiSubgraph(level=level_index, regions=tuple(sorted(covered)))
        merged.border_nodes = [
            node
            for node in left.border_nodes + right.border_nodes
            if self._is_border_of(node, covered)
        ]
        overlay = self._overlay_adjacency(
            left, right, covered, self.partitioning.region_of
        )
        merged.super_edges = self._all_pairs_border_distances(
            adjacency=overlay, border_nodes=merged.border_nodes
        )
        return merged

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The hierarchy as plain values (see :mod:`repro.serialize`).

        Super-edge dicts keep their insertion order -- the query overlay is
        assembled by iterating them, so order is part of the bit-identity
        contract.
        """
        return {
            "levels": [
                {
                    first: {
                        "level": subgraph.level,
                        "regions": list(subgraph.regions),
                        "border_nodes": list(subgraph.border_nodes),
                        "super_edges": subgraph.super_edges,
                    }
                    for first, subgraph in level.items()
                }
                for level in self.levels
            ],
            "seconds": self.precomputation_seconds,
        }

    @classmethod
    def from_state(
        cls, network: RoadNetwork, partitioning: Partitioning, state: Dict[str, Any]
    ) -> "HiTiIndex":
        """Reconstruct from :meth:`state` output without recomputing levels."""
        self = object.__new__(cls)
        self.network = network
        self.partitioning = partitioning
        self.num_regions = partitioning.num_regions
        self.levels = [
            {
                first: HiTiSubgraph(
                    level=entry["level"],
                    regions=tuple(entry["regions"]),
                    border_nodes=list(entry["border_nodes"]),
                    super_edges={
                        tuple(key): value
                        for key, value in entry["super_edges"].items()
                    },
                )
                for first, entry in level.items()
            }
            for level in state["levels"]
        ]
        self.precomputation_seconds = state["seconds"]
        return self

    def refresh(self, dirty_regions: Set[int]) -> int:
        """Recompute only the sub-graphs covering a dirty leaf region.

        Valid for weight-only mutations of the underlying network (border
        sets depend on structure alone, so they are unchanged): a changed
        edge is internal to exactly the sub-graphs whose covered region set
        contains both endpoints' regions, and every such block contains a
        dirty region.  Untouched blocks see bit-identical inputs, so the
        refreshed hierarchy equals a from-scratch build.  Returns the number
        of sub-graphs recomputed.
        """
        recomputed = 0
        for region in sorted(dirty_regions):
            self.levels[0][region] = self._build_leaf(region)
            recomputed += 1
        block = 1
        level_index = 0
        while block < self.num_regions:
            block *= 2
            level_index += 1
            for first in range(0, self.num_regions, block):
                if dirty_regions.isdisjoint(range(first, first + block)):
                    continue
                self.levels[level_index][first] = self._build_block(
                    level_index, first, block
                )
                recomputed += 1
        return recomputed

    def _is_border_of(self, node: int, covered_regions: Set[int]) -> bool:
        """Is ``node`` adjacent to any node outside ``covered_regions``?"""
        region_of = self.partitioning.region_of
        for neighbor, _ in self.network.neighbors(node) + self.network.in_neighbors(node):
            if region_of(neighbor) not in covered_regions:
                return True
        return False

    def _overlay_adjacency(
        self,
        left: HiTiSubgraph,
        right: HiTiSubgraph,
        covered: Set[int],
        region_of,
    ) -> Dict[int, List[Tuple[int, float]]]:
        """Overlay graph of the two children: super-edges + crossing edges."""
        adjacency: Dict[int, List[Tuple[int, float]]] = {}

        def add(u: int, v: int, w: float) -> None:
            adjacency.setdefault(u, []).append((v, w))
            adjacency.setdefault(v, [])

        for child in (left, right):
            for (u, v), w in child.super_edges.items():
                add(u, v, w)
        # Original edges between the two children's nodes (crossing edges).
        child_regions = {"left": set(left.regions), "right": set(right.regions)}
        for child, other in ((left, child_regions["right"]), (right, child_regions["left"])):
            for border in child.border_nodes:
                for neighbor, weight in self.network.neighbors(border):
                    if region_of(neighbor) in other:
                        add(border, neighbor, weight)
        return adjacency

    @staticmethod
    def _all_pairs_border_distances(
        adjacency: Dict[int, List[Tuple[int, float]]], border_nodes: List[int]
    ) -> Dict[Tuple[int, int], float]:
        """Shortest distances between all ordered border pairs on ``adjacency``.

        The overlay is compiled to a small CSR once, then one arena runs an
        early-terminating multi-target kernel search per border source over
        it -- the index-addressed buffers replace per-edge dict hashing, and
        distance labels of settled targets are tie-independent, so the
        super-edges are bit-identical to the previous dict Dijkstra's.
        """
        if not border_nodes:
            return {}
        csr = CSRGraph.from_adjacency(
            adjacency, extra_nodes=border_nodes, name="hiti-overlay"
        )
        arena = KernelArena(csr)
        targets = set(border_nodes)
        super_edges: Dict[Tuple[int, int], float] = {}
        for source in border_nodes:
            result = arena.multi_target(source, targets)
            distance_to = result.distance_to
            for target in border_nodes:
                if target == source:
                    continue
                distance = distance_to(target)
                if distance != INFINITY:
                    super_edges[(source, target)] = distance
        return super_edges

    # ------------------------------------------------------------------
    # Query (flat overlay; see module docstring)
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> PathResult:
        """Shortest path distance using the super-edge overlay.

        The returned :class:`PathResult` carries the correct distance; its
        ``path`` contains the overlay nodes only (region-interior detail of
        intermediate regions is collapsed into super-edges), mirroring what a
        HiTi client materializes before expanding super-edges.
        """
        source_region = self.partitioning.region_of(source)
        target_region = self.partitioning.region_of(target)
        region_of = self.partitioning.region_of

        adjacency: Dict[int, List[Tuple[int, float]]] = {}

        def add(u: int, v: int, w: float) -> None:
            adjacency.setdefault(u, []).append((v, w))
            adjacency.setdefault(v, [])

        detailed = {source_region, target_region}
        # Full detail inside the source and target regions.
        for region in detailed:
            for node in self.partitioning.nodes_in_region(region):
                adjacency.setdefault(node, [])
                for neighbor, weight in self.network.neighbors(node):
                    if region_of(neighbor) == region:
                        add(node, neighbor, weight)
        # Super-edges for every other region.
        for region in range(self.num_regions):
            if region in detailed:
                continue
            for (u, v), w in self.levels[0][region].super_edges.items():
                add(u, v, w)
        # Crossing (border) edges between regions.
        for edge in self.network.edges():
            if region_of(edge.source) != region_of(edge.target):
                add(edge.source, edge.target, edge.weight)

        distances, predecessors, settled = _dijkstra_with_predecessors(
            adjacency, source, target
        )
        distance = distances.get(target, INFINITY)
        path: List[int] = []
        if distance != INFINITY:
            node = target
            while node is not None:
                path.append(node)
                node = predecessors.get(node)
            path.reverse()
        return PathResult(
            source=source, target=target, distance=distance, path=path, settled=settled
        )

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def num_super_edges(self) -> int:
        """Total number of super-edges stored across all levels."""
        return sum(
            len(subgraph.super_edges)
            for level in self.levels
            for subgraph in level.values()
        )

    def size_bytes(self) -> int:
        """Total bytes of pre-computed super-edge information."""
        return self.num_super_edges() * BYTES_PER_SUPER_EDGE


def _dijkstra_with_predecessors(
    adjacency: Dict[int, List[Tuple[int, float]]], source: int, target: int
):
    """Dijkstra over a raw adjacency dict returning predecessors as well."""
    distances: Dict[int, float] = {source: 0.0}
    predecessors: Dict[int, int] = {}
    settled: Set[int] = set()
    heap = [(0.0, source)]
    settled_count = 0
    while heap:
        dist, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        settled_count += 1
        if node == target:
            break
        for neighbor, weight in adjacency.get(node, ()):
            candidate = dist + weight
            if candidate < distances.get(neighbor, INFINITY):
                distances[neighbor] = candidate
                predecessors[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return distances, predecessors, settled_count
