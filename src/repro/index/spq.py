"""Shortest path quad-tree index (SPQ; paper Section 2.1, [Samet et al. 2008]).

For every node ``v`` the index stores a *colored quad-tree* built on the
Euclidean coordinates of all other nodes.  Nodes ``v'`` whose shortest path
from ``v`` leaves through the same incident edge of ``v`` share a color, so
the quad-tree collapses large spatially contiguous areas of equal color into
single blocks.  A query repeatedly looks up the target's color in the current
node's quad-tree, follows the corresponding first edge, and recurses from the
reached node until the target is met.

Construction requires one full single-source Dijkstra per node, which is why
the paper reports SPQ's pre-computed information being several times larger
than the network itself (Table 1) and excludes it from the device experiments
(its quad-trees do not fit the client heap).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.network.algorithms import kernel
from repro.network.algorithms.paths import INFINITY, PathResult, path_cost
from repro.network.graph import RoadNetwork

__all__ = ["ColoredQuadTree", "ShortestPathQuadTreeIndex"]

#: Bytes per quad-tree block: block descriptor (2 bytes) plus color (2 bytes).
BYTES_PER_BLOCK = 4
#: Safety bound on query hops (a correct index never needs more than one hop
#: per path node).
_MAX_HOPS_FACTOR = 4


@dataclass
class _QuadNode:
    """Internal quad-tree node covering ``bounds``; leaves carry a color."""

    bounds: Tuple[float, float, float, float]
    color: Optional[int] = None
    children: Optional[List["_QuadNode"]] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class ColoredQuadTree:
    """Quad-tree over colored points supporting point color lookup."""

    def __init__(
        self,
        points: List[Tuple[float, float, int]],
        bounds: Tuple[float, float, float, float],
        max_depth: int = 16,
    ) -> None:
        self.root = self._build(points, bounds, max_depth)
        self.num_blocks = self._count_leaves(self.root)

    @classmethod
    def _build(
        cls,
        points: List[Tuple[float, float, int]],
        bounds: Tuple[float, float, float, float],
        depth: int,
    ) -> _QuadNode:
        node = _QuadNode(bounds=bounds)
        colors = {color for _, _, color in points}
        if not points:
            node.color = -1
            return node
        if len(colors) == 1 or depth == 0:
            # Uniform block (or depth limit reached: majority color).
            node.color = cls._majority_color(points)
            return node
        min_x, min_y, max_x, max_y = bounds
        mid_x = (min_x + max_x) / 2.0
        mid_y = (min_y + max_y) / 2.0
        quadrants = [
            (min_x, min_y, mid_x, mid_y),
            (mid_x, min_y, max_x, mid_y),
            (min_x, mid_y, mid_x, max_y),
            (mid_x, mid_y, max_x, max_y),
        ]
        buckets: List[List[Tuple[float, float, int]]] = [[] for _ in range(4)]
        for x, y, color in points:
            buckets[cls._quadrant_of(x, y, mid_x, mid_y)].append((x, y, color))
        node.children = [
            cls._build(bucket, quad, depth - 1)
            for bucket, quad in zip(buckets, quadrants)
        ]
        return node

    @staticmethod
    def _quadrant_of(x: float, y: float, mid_x: float, mid_y: float) -> int:
        index = 0
        if x > mid_x:
            index += 1
        if y > mid_y:
            index += 2
        return index

    @staticmethod
    def _majority_color(points: List[Tuple[float, float, int]]) -> int:
        counts: Dict[int, int] = {}
        for _, _, color in points:
            counts[color] = counts.get(color, 0) + 1
        return max(counts, key=counts.get)

    @classmethod
    def _count_leaves(cls, node: _QuadNode) -> int:
        if node.is_leaf:
            return 1
        return sum(cls._count_leaves(child) for child in node.children)

    def color_at(self, x: float, y: float) -> int:
        """Color of the leaf block containing point ``(x, y)``."""
        node = self.root
        while not node.is_leaf:
            min_x, min_y, max_x, max_y = node.bounds
            mid_x = (min_x + max_x) / 2.0
            mid_y = (min_y + max_y) / 2.0
            node = node.children[self._quadrant_of(x, y, mid_x, mid_y)]
        return node.color if node.color is not None else -1

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    @classmethod
    def _node_state(cls, node: _QuadNode) -> tuple:
        children = (
            None
            if node.children is None
            else [cls._node_state(child) for child in node.children]
        )
        return (tuple(node.bounds), node.color, children)

    @classmethod
    def _restore_node(cls, state: tuple) -> _QuadNode:
        bounds, color, children = state
        return _QuadNode(
            bounds=tuple(bounds),
            color=color,
            children=(
                None
                if children is None
                else [cls._restore_node(child) for child in children]
            ),
        )

    def state(self) -> tuple:
        """The tree as nested plain values (one triple per quad node)."""
        return self._node_state(self.root)

    @classmethod
    def from_state(cls, state: tuple) -> "ColoredQuadTree":
        """Reconstruct from :meth:`state` output without re-inserting points."""
        self = object.__new__(cls)
        self.root = cls._restore_node(state)
        self.num_blocks = self._count_leaves(self.root)
        return self


class ShortestPathQuadTreeIndex:
    """Per-node colored quad-trees plus the hop-by-hop routing query."""

    def __init__(self, network: RoadNetwork, max_depth: int = 16) -> None:
        self.network = network
        self.max_depth = max_depth
        self.quadtrees: Dict[int, ColoredQuadTree] = {}
        #: For node v, color c maps to the first-hop neighbor of v.
        self.first_hop: Dict[int, Dict[int, int]] = {}
        self.precomputation_seconds = 0.0
        self._build()

    def _build(self) -> None:
        started = time.perf_counter()
        bounds = self.network.bounding_box()
        # One full kernel sweep per node: the shortest path tree arrives as
        # a flat predecessor array, so the per-target first-hop walks below
        # are index chases instead of dict lookups.  The sweep's discovery
        # order matches the dict Dijkstra's ``distances`` insertion order,
        # which keeps the quad-trees' majority-color votes bit-identical.
        arena = kernel.arena_for(self.network.ensure_csr())
        for source in self.network.node_ids():
            sweep = arena.sssp(source, need_predecessors=True)
            predecessors = sweep.pred
            ids = sweep.csr.ids
            source_index = sweep.source_index
            neighbor_color = {
                neighbor: color
                for color, (neighbor, _) in enumerate(self.network.neighbors(source))
            }
            colors: Dict[int, int] = {}
            for node_index in sweep.order:
                if node_index == source_index:
                    continue
                first = self._first_hop_on_tree(predecessors, source_index, node_index)
                if first >= 0:
                    first_id = ids[first]
                    if first_id in neighbor_color:
                        colors[ids[node_index]] = neighbor_color[first_id]
            points = [
                (self.network.node(node_id).x, self.network.node(node_id).y, color)
                for node_id, color in colors.items()
            ]
            self.quadtrees[source] = ColoredQuadTree(points, bounds, self.max_depth)
            self.first_hop[source] = {
                color: neighbor for neighbor, color in neighbor_color.items()
            }
        self.precomputation_seconds = time.perf_counter() - started

    @staticmethod
    def _first_hop_on_tree(
        predecessors: List[int], source_index: int, target_index: int
    ) -> int:
        """Index of the first node after the source on the path to the target.

        ``-1`` when the target's predecessor chain does not reach the source
        (mirrors the old dict walk returning ``None``).
        """
        current = target_index
        previous = predecessors[current]
        while previous >= 0 and previous != source_index:
            current = previous
            previous = predecessors[current]
        return current if previous == source_index else -1

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Quad-trees and first-hop tables as plain values."""
        return {
            "max_depth": self.max_depth,
            "quadtrees": {
                source: tree.state() for source, tree in self.quadtrees.items()
            },
            "first_hop": self.first_hop,
            "seconds": self.precomputation_seconds,
        }

    @classmethod
    def from_state(
        cls, network: RoadNetwork, state: Dict[str, Any]
    ) -> "ShortestPathQuadTreeIndex":
        """Reconstruct from :meth:`state` output without re-running Dijkstra."""
        self = object.__new__(cls)
        self.network = network
        self.max_depth = state["max_depth"]
        self.quadtrees = {
            source: ColoredQuadTree.from_state(tree_state)
            for source, tree_state in state["quadtrees"].items()
        }
        self.first_hop = state["first_hop"]
        self.precomputation_seconds = state["seconds"]
        return self

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> PathResult:
        """Route hop-by-hop from ``source`` following quad-tree colors."""
        if source == target:
            return PathResult(source=source, target=target, distance=0.0, path=[source])
        target_node = self.network.node(target)
        path = [source]
        current = source
        hops = 0
        limit = _MAX_HOPS_FACTOR * max(self.network.num_nodes, 1)
        while current != target and hops < limit:
            color = self.quadtrees[current].color_at(target_node.x, target_node.y)
            next_node = self.first_hop.get(current, {}).get(color)
            if next_node is None:
                return PathResult(source=source, target=target, distance=INFINITY, settled=hops)
            path.append(next_node)
            current = next_node
            hops += 1
        if current != target:
            return PathResult(source=source, target=target, distance=INFINITY, settled=hops)
        return PathResult(
            source=source,
            target=target,
            distance=path_cost(self.network, path),
            path=path,
            settled=hops,
        )

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def total_blocks(self) -> int:
        """Total quad-tree blocks over all per-node quad-trees."""
        return sum(tree.num_blocks for tree in self.quadtrees.values())

    def size_bytes(self) -> int:
        """Total bytes of pre-computed quad-tree information."""
        return self.total_blocks() * BYTES_PER_BLOCK
