"""Landmark index (ALT; paper Section 2.1, [Goldberg & Harrelson 2005]).

A small set of anchor nodes ("landmarks") is chosen; for every node the
graph distances to and from each landmark are pre-computed and stored as a
*distance vector*.  The triangle inequality then yields a lower bound on the
graph distance between any two nodes, which A* uses to guide the search:

``LB(v, t) = max over landmarks l of max(d(l, t) - d(l, v), d(v, l) - d(t, l))``
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from repro.network.algorithms import kernel
from repro.network.algorithms.astar import astar_search
from repro.network.algorithms.paths import INFINITY, PathResult
from repro.network.graph import RoadNetwork

__all__ = ["LandmarkIndex", "select_landmarks_farthest", "select_landmarks_random"]

#: Bytes per stored distance value (32-bit float, matching the paper's
#: packet-size accounting granularity).
BYTES_PER_DISTANCE = 4


def select_landmarks_farthest(network: RoadNetwork, count: int, seed_node: Optional[int] = None) -> List[int]:
    """Greedy farthest-point landmark selection.

    Starting from an arbitrary node, repeatedly add the node whose minimum
    graph distance to the already-chosen landmarks is largest.  This is the
    standard ALT heuristic and gives well-spread anchors on road networks.
    """
    if count < 1:
        raise ValueError("need at least one landmark")
    node_ids = network.node_ids()
    if not node_ids:
        raise ValueError("cannot select landmarks on an empty network")
    start = seed_node if seed_node is not None else node_ids[0]

    # Distance-only kernel sweeps; the running minimum folds element-wise
    # over the flat label buffers (``map(min, ...)`` runs at C speed), and
    # the farthest scan still iterates ``node_ids`` in insertion order so
    # equal-distance ties pick the same landmark as before.
    arena = kernel.arena_for(network.ensure_csr())
    index_of = arena.csr.index_of
    landmarks = [start]
    min_distance: List[float] = arena.sssp(start, need_predecessors=False).dist
    while len(landmarks) < count:
        farthest = None
        farthest_distance = -1.0
        for node_id in node_ids:
            distance = min_distance[index_of[node_id]]
            if distance != INFINITY and distance > farthest_distance:
                farthest_distance = distance
                farthest = node_id
        if farthest is None:
            break
        landmarks.append(farthest)
        new_distances = arena.sssp(farthest, need_predecessors=False).dist
        min_distance = list(map(min, min_distance, new_distances))
    return landmarks


def select_landmarks_random(network: RoadNetwork, count: int, seed: int = 0) -> List[int]:
    """Uniform random landmark selection (cheaper, weaker bounds)."""
    import random

    node_ids = network.node_ids()
    rng = random.Random(seed)
    if count >= len(node_ids):
        return list(node_ids)
    return rng.sample(node_ids, count)


class LandmarkIndex:
    """Per-node landmark distance vectors plus the guided A* search."""

    def __init__(
        self,
        network: RoadNetwork,
        num_landmarks: int = 4,
        landmarks: Optional[Sequence[int]] = None,
        selection: str = "farthest",
    ) -> None:
        self.network = network
        started = time.perf_counter()
        if landmarks is not None:
            self.landmarks = list(landmarks)
        elif selection == "farthest":
            self.landmarks = select_landmarks_farthest(network, num_landmarks)
        elif selection == "random":
            self.landmarks = select_landmarks_random(network, num_landmarks)
        else:
            raise ValueError(f"unknown landmark selection strategy {selection!r}")

        #: distance from landmark l to every node: ``forward[l][v]``
        self.forward: Dict[int, Dict[int, float]] = {}
        #: distance from every node to landmark l: ``backward[l][v]``
        self.backward: Dict[int, Dict[int, float]] = {}
        # Two batched distance-only kernel sweeps (forward and reverse); the
        # vectors are materialized as dicts because ``lower_bound`` probes
        # them per query with missing-key semantics for unreached nodes.
        arena = kernel.arena_for(network.ensure_csr())
        forward_sweeps = arena.many_to_many(self.landmarks, need_predecessors=False)
        backward_sweeps = arena.many_to_many(
            self.landmarks, need_predecessors=False, reverse=True
        )
        for landmark, fwd, bwd in zip(self.landmarks, forward_sweeps, backward_sweeps):
            self.forward[landmark] = fwd.distances_dict()
            self.backward[landmark] = bwd.distances_dict()
        self.precomputation_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """Landmarks and distance vectors as plain values."""
        return {
            "landmarks": list(self.landmarks),
            "forward": self.forward,
            "backward": self.backward,
            "seconds": self.precomputation_seconds,
        }

    @classmethod
    def from_state(cls, network: RoadNetwork, state: Dict[str, Any]) -> "LandmarkIndex":
        """Reconstruct from :meth:`state` output without re-running selection."""
        self = object.__new__(cls)
        self.network = network
        self.landmarks = list(state["landmarks"])
        self.forward = state["forward"]
        self.backward = state["backward"]
        self.precomputation_seconds = state["seconds"]
        return self

    # ------------------------------------------------------------------
    # Lower bound and query
    # ------------------------------------------------------------------
    @property
    def num_landmarks(self) -> int:
        """Number of landmarks in the index."""
        return len(self.landmarks)

    def lower_bound(self, node: int, target: int) -> float:
        """ALT lower bound on the graph distance from ``node`` to ``target``."""
        best = 0.0
        for landmark in self.landmarks:
            from_landmark = self.forward[landmark]
            to_landmark = self.backward[landmark]
            d_l_t = from_landmark.get(target, INFINITY)
            d_l_v = from_landmark.get(node, INFINITY)
            d_v_l = to_landmark.get(node, INFINITY)
            d_t_l = to_landmark.get(target, INFINITY)
            if d_l_t != INFINITY and d_l_v != INFINITY:
                best = max(best, d_l_t - d_l_v)
            if d_v_l != INFINITY and d_t_l != INFINITY:
                best = max(best, d_v_l - d_t_l)
        return max(best, 0.0)

    def query(self, source: int, target: int) -> PathResult:
        """Shortest path via A* guided by the landmark lower bound."""
        return astar_search(self.network, source, target, lower_bound=self.lower_bound)

    def distance_vector(self, node: int) -> List[float]:
        """The per-node vector transmitted on the air (2 values per landmark)."""
        vector: List[float] = []
        for landmark in self.landmarks:
            vector.append(self.forward[landmark].get(node, INFINITY))
            vector.append(self.backward[landmark].get(node, INFINITY))
        return vector

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def vector_bytes_per_node(self) -> int:
        """Bytes of pre-computed information broadcast per node."""
        return 2 * self.num_landmarks * BYTES_PER_DISTANCE

    def size_bytes(self) -> int:
        """Total bytes of all distance vectors."""
        return self.network.num_nodes * self.vector_bytes_per_node()
