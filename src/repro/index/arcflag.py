"""ArcFlag index (paper Section 2.1, [Koehler et al. 2007]).

The network is partitioned into regions; every edge carries a bit vector
(*flag*) with one bit per region.  The bit for region ``r`` in the flag of
edge ``(u, v)`` is 1 when some shortest path from ``u`` to a node of ``r``
traverses ``(u, v)``.  A point-to-point search then considers only edges
whose bit for the target's region is set.

Construction uses the standard backward shortest-path-tree method: for each
border node ``b`` of a region ``r``, a reverse Dijkstra from ``b`` marks every
tree edge with bit ``r``; additionally, every edge whose head lies inside
``r`` gets bit ``r`` so that paths ending deep inside the region remain
coverable.  This is the conservative (correct, possibly non-minimal)
construction used by practical ArcFlag implementations.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from repro.network.algorithms import kernel
from repro.network.algorithms.astar import astar_search
from repro.network.algorithms.dijkstra import dijkstra_distances
from repro.network.algorithms.paths import PathResult
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["ArcFlagIndex"]


class ArcFlagIndex:
    """Per-edge region flags plus the pruned point-to-point search."""

    def __init__(self, network: RoadNetwork, partitioning: Partitioning) -> None:
        self.network = network
        self.partitioning = partitioning
        self.num_regions = partitioning.num_regions
        #: flag bitmask per directed edge (source, target) -> int bitmask
        self.flags: Dict[Tuple[int, int], int] = {}
        self.precomputation_seconds = 0.0
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        started = time.perf_counter()
        numpy = kernel.numpy_or_none()
        if numpy is not None:
            self._build_vectorized(numpy)
        else:
            self._build_reference()
        self.precomputation_seconds = time.perf_counter() - started

    def _build_vectorized(self, np) -> None:
        """Batched kernel sweeps plus one vectorized tree test per border.

        The per-edge test is the reference implementation's, evaluated with
        the same IEEE-754 operations over edge arrays: unreached endpoints
        carry ``inf``, for which the tolerance comparison is always false
        (matching the reference's explicit skip), so the resulting flags are
        bit-identical.  Flag bitmasks accumulate as Python ints, keeping
        arbitrary region counts exact.
        """
        network = self.network
        region_of = self.partitioning.region_of
        pairs = list(dict.fromkeys((e.source, e.target) for e in network.edges()))
        masks = [1 << region_of(target) for _, target in pairs]
        if pairs:
            csr = network.ensure_csr()
            arena = kernel.arena_for(csr)
            index_of = csr.index_of
            count = len(pairs)
            src_idx = np.fromiter((index_of[s] for s, _ in pairs), np.int64, count)
            tgt_idx = np.fromiter((index_of[t] for _, t in pairs), np.int64, count)
            min_w = np.fromiter(
                (network.edge_weight(s, t) for s, t in pairs), np.float64, count
            )
            for region in range(self.num_regions):
                borders = self.partitioning.border_nodes(region)
                if not borders:
                    continue
                bit = 1 << region
                flagged = np.zeros(count, dtype=bool)
                sweeps = arena.many_to_many(
                    borders, need_predecessors=False, reverse=True
                )
                for sweep in sweeps:
                    labels = (
                        sweep.dist_np
                        if sweep.dist_np is not None
                        else np.asarray(sweep.dist)
                    )
                    source_dist = labels[src_idx]
                    target_dist = labels[tgt_idx]
                    with np.errstate(invalid="ignore"):
                        on_tree = np.abs(
                            target_dist + min_w - source_dist
                        ) <= 1e-9 * np.maximum(1.0, source_dist)
                    flagged |= (
                        on_tree & np.isfinite(source_dist) & np.isfinite(target_dist)
                    )
                for position in np.flatnonzero(flagged).tolist():
                    masks[position] |= bit
        self.flags = dict(zip(pairs, masks))

    def _build_reference(self) -> None:
        """The dict-based construction (fallback without the accelerator)."""
        flags: Dict[Tuple[int, int], int] = {
            (edge.source, edge.target): 0 for edge in self.network.edges()
        }
        region_of = self.partitioning.region_of

        # Intra-region coverage: an edge whose head is in region r may be
        # needed by a path that terminates inside r.
        for (source, target) in flags:
            flags[(source, target)] |= 1 << region_of(target)

        # Inter-region coverage via backward shortest path trees rooted at
        # border nodes.
        for region in range(self.num_regions):
            bit = 1 << region
            for border in self.partitioning.border_nodes(region):
                result = dijkstra_distances(self.network, border, reverse=True)
                distances = result.distances
                for (source, target), _ in flags.items():
                    source_dist = distances.get(source)
                    target_dist = distances.get(target)
                    if source_dist is None or target_dist is None:
                        continue
                    weight = self.network.edge_weight(source, target)
                    if abs(target_dist + weight - source_dist) <= 1e-9 * max(1.0, source_dist):
                        flags[(source, target)] |= bit
        self.flags = flags

    # ------------------------------------------------------------------
    # Build/serve split: separable state
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, Any]:
        """The flag table as plain values (edge order preserved)."""
        return {"flags": self.flags, "seconds": self.precomputation_seconds}

    @classmethod
    def from_state(
        cls, network: RoadNetwork, partitioning: Partitioning, state: Dict[str, Any]
    ) -> "ArcFlagIndex":
        """Reconstruct from :meth:`state` output without re-running the sweeps."""
        self = object.__new__(cls)
        self.network = network
        self.partitioning = partitioning
        self.num_regions = partitioning.num_regions
        self.flags = {tuple(key): value for key, value in state["flags"].items()}
        self.precomputation_seconds = state["seconds"]
        return self

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> PathResult:
        """Shortest path using only edges flagged for the target's region."""
        target_bit = 1 << self.partitioning.region_of(target)

        def allowed(u: int, v: int) -> bool:
            return bool(self.flags.get((u, v), 0) & target_bit)

        return astar_search(self.network, source, target, edge_filter=allowed)

    # ------------------------------------------------------------------
    # Sizing (for broadcast cycle construction)
    # ------------------------------------------------------------------
    def flag_bytes_per_edge(self) -> int:
        """Bytes needed to transmit one edge flag (one bit per region)."""
        return (self.num_regions + 7) // 8

    def size_bytes(self) -> int:
        """Total bytes of pre-computed flag information."""
        return len(self.flags) * self.flag_bytes_per_edge()

    def flag_of(self, source: int, target: int) -> int:
        """Raw bitmask of the flag of edge ``(source, target)``."""
        return self.flags[(source, target)]
