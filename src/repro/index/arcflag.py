"""ArcFlag index (paper Section 2.1, [Koehler et al. 2007]).

The network is partitioned into regions; every edge carries a bit vector
(*flag*) with one bit per region.  The bit for region ``r`` in the flag of
edge ``(u, v)`` is 1 when some shortest path from ``u`` to a node of ``r``
traverses ``(u, v)``.  A point-to-point search then considers only edges
whose bit for the target's region is set.

Construction uses the standard backward shortest-path-tree method: for each
border node ``b`` of a region ``r``, a reverse Dijkstra from ``b`` marks every
tree edge with bit ``r``; additionally, every edge whose head lies inside
``r`` gets bit ``r`` so that paths ending deep inside the region remain
coverable.  This is the conservative (correct, possibly non-minimal)
construction used by practical ArcFlag implementations.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from repro.network.algorithms.astar import astar_search
from repro.network.algorithms.dijkstra import dijkstra_distances
from repro.network.algorithms.paths import PathResult
from repro.network.graph import RoadNetwork
from repro.partitioning.base import Partitioning

__all__ = ["ArcFlagIndex"]


class ArcFlagIndex:
    """Per-edge region flags plus the pruned point-to-point search."""

    def __init__(self, network: RoadNetwork, partitioning: Partitioning) -> None:
        self.network = network
        self.partitioning = partitioning
        self.num_regions = partitioning.num_regions
        #: flag bitmask per directed edge (source, target) -> int bitmask
        self.flags: Dict[Tuple[int, int], int] = {}
        self.precomputation_seconds = 0.0
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        started = time.perf_counter()
        flags: Dict[Tuple[int, int], int] = {
            (edge.source, edge.target): 0 for edge in self.network.edges()
        }
        region_of = self.partitioning.region_of

        # Intra-region coverage: an edge whose head is in region r may be
        # needed by a path that terminates inside r.
        for (source, target) in flags:
            flags[(source, target)] |= 1 << region_of(target)

        # Inter-region coverage via backward shortest path trees rooted at
        # border nodes.
        for region in range(self.num_regions):
            bit = 1 << region
            for border in self.partitioning.border_nodes(region):
                result = dijkstra_distances(self.network, border, reverse=True)
                distances = result.distances
                for (source, target), _ in flags.items():
                    source_dist = distances.get(source)
                    target_dist = distances.get(target)
                    if source_dist is None or target_dist is None:
                        continue
                    weight = self.network.edge_weight(source, target)
                    if abs(target_dist + weight - source_dist) <= 1e-9 * max(1.0, source_dist):
                        flags[(source, target)] |= bit
        self.flags = flags
        self.precomputation_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> PathResult:
        """Shortest path using only edges flagged for the target's region."""
        target_bit = 1 << self.partitioning.region_of(target)

        def allowed(u: int, v: int) -> bool:
            return bool(self.flags.get((u, v), 0) & target_bit)

        return astar_search(self.network, source, target, edge_filter=allowed)

    # ------------------------------------------------------------------
    # Sizing (for broadcast cycle construction)
    # ------------------------------------------------------------------
    def flag_bytes_per_edge(self) -> int:
        """Bytes needed to transmit one edge flag (one bit per region)."""
        return (self.num_regions + 7) // 8

    def size_bytes(self) -> int:
        """Total bytes of pre-computed flag information."""
        return len(self.flags) * self.flag_bytes_per_edge()

    def flag_of(self, source: int, target: int) -> int:
        """Raw bitmask of the flag of edge ``(source, target)``."""
        return self.flags[(source, target)]
