"""Classical shortest-path pre-computation indexes (paper Section 2.1).

These are the "with pre-computation" competitors the paper adapts to the
broadcast model: ArcFlag, Landmark (ALT), HiTi, and the shortest path
quad-tree (SPQ).
"""

from repro.index.arcflag import ArcFlagIndex
from repro.index.landmark import LandmarkIndex
from repro.index.hiti import HiTiIndex
from repro.index.spq import ShortestPathQuadTreeIndex

__all__ = [
    "ArcFlagIndex",
    "HiTiIndex",
    "LandmarkIndex",
    "ShortestPathQuadTreeIndex",
]
