"""Zero-copy publication of built indexes through shared memory.

A :class:`SharedArtifactSegment` packs everything N serving workers need to
warm-start -- the network snapshot, the frozen CSR arrays, and one full
:class:`~repro.serialize.artifacts.BuildArtifact` per scheme -- into a
single :class:`multiprocessing.shared_memory.SharedMemory` block.  Workers
attach the block and wire :meth:`CSRGraph.from_buffers` views plus
``zero_copy`` artifact restores straight over the mapping, so the physical
index exists **once** no matter how many workers serve it; only small
per-process structures (id maps, decoded aggregates, Python wrappers) are
private.

Segment layout (all offsets 8-byte aligned)::

    magic "AIRS" | u32 directory length | directory | sections ...

where the directory is a codec-encoded dict naming each section's offset
and length: the encoded network state, the six CSR arrays plus the id
list, and one framed artifact per scheme.  The directory is tiny and the
sections are raw array/artifact bytes, so attach cost is microseconds.

Lifecycle: the server process *publishes* (creates) a segment per cycle
generation and *unlinks* it once every worker has swapped off it; workers
*attach* and must :meth:`close` before exiting.  On Python 3.11 an attach
auto-registers with the resource tracker, which would double-unlink at
worker exit -- :meth:`attach` unregisters itself, matching the ownership
model (the server owns the segment's lifetime).
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults import runtime as faults
from repro.network.csr import CSRGraph
from repro.network.graph import RoadNetwork
from repro.serialize.artifacts import BuildArtifact
from repro.serialize.codec import decode_value, encode_value
from repro.serialize.graphs import encode_network, restore_network

__all__ = [
    "SegmentIntegrityError",
    "SharedArtifactSegment",
    "mapping_stats",
    "process_rss_kb",
]


class SegmentIntegrityError(ValueError):
    """The segment's payload does not match its published checksum."""

_MAGIC = b"AIRS"
_DIR_LEN = struct.Struct("<I")

_CSR_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("fwd_offsets", "q"),
    ("fwd_targets", "q"),
    ("fwd_weights", "d"),
    ("rev_offsets", "q"),
    ("rev_targets", "q"),
    ("rev_weights", "d"),
)


def _align(offset: int) -> int:
    return (offset + 7) & ~7


class SharedArtifactSegment:
    """One publication of a built index, mapped zero-copy by every worker."""

    def __init__(
        self, shm: shared_memory.SharedMemory, owner: bool, directory: Dict[str, Any]
    ) -> None:
        self._shm = shm
        self._owner = owner
        self._directory = directory
        # Workers never write: a read-only root view turns any stray store
        # into an immediate TypeError instead of silently mutating every
        # process mapping the segment.
        self._buf: Optional[memoryview] = memoryview(shm.buf).toreadonly()
        self._closed = False
        self._unlinked = False

    # ------------------------------------------------------------------
    # Publication (build side)
    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls,
        network: RoadNetwork,
        artifacts: Mapping[str, BuildArtifact],
        name: Optional[str] = None,
    ) -> "SharedArtifactSegment":
        """Create a segment holding ``network``'s index and the artifacts.

        ``artifacts`` maps scheme name to its :class:`BuildArtifact`; every
        artifact must have been built over ``network``'s current
        fingerprint (the workers' restore re-validates this).  The network's
        CSR snapshot is compiled here if not already fresh.
        """
        csr = network.ensure_csr()
        fingerprint = network.fingerprint()
        for scheme_name, artifact in artifacts.items():
            if artifact.network_fingerprint != fingerprint:
                raise ValueError(
                    f"artifact {scheme_name!r} was built over "
                    f"{artifact.network_fingerprint}, not the network's "
                    f"current fingerprint {fingerprint}"
                )
        sections: List[Tuple[bytes, Any]] = []  # (raw bytes, directory slot)

        directory: Dict[str, Any] = {
            "fingerprint": fingerprint,
            "csr_name": csr.name,
            "csr": {},
            "artifacts": {},
            "payload_sha256": "",
            "payload_bytes": 0,
        }
        network_raw = encode_network(network)
        sections.append((network_raw, ("network",)))
        ids_raw = array("q", csr.ids).tobytes()
        sections.append((ids_raw, ("ids",)))
        for section_name, _typecode in _CSR_SECTIONS:
            raw = getattr(csr, section_name).tobytes()
            sections.append((raw, ("csr", section_name)))
        for scheme_name in sorted(artifacts):
            raw = artifacts[scheme_name].to_bytes()
            sections.append((raw, ("artifacts", scheme_name)))

        # Lay out the payload area; the directory is encoded afterwards with
        # the final absolute offsets, so its own length must be fixed first.
        # Offsets are recorded relative to the payload base, making the
        # directory's encoded size independent of where the payload starts.
        offset = 0
        slots: List[Tuple[Any, int, int]] = []
        for raw, slot in sections:
            offset = _align(offset)
            slots.append((slot, offset, len(raw)))
            offset += len(raw)
        payload_bytes = offset
        for slot, start, length in slots:
            if slot[0] == "network":
                directory["network"] = [start, length]
            elif slot[0] == "ids":
                directory["ids"] = [start, length]
            elif slot[0] == "csr":
                directory["csr"][slot[1]] = [start, length]
            else:
                directory["artifacts"][slot[1]] = [start, length]
        # Checksum the payload area exactly as it will land in the segment
        # (sections in order, alignment gaps zero -- fresh shared memory is
        # zero-filled), so workers can verify integrity before serving.
        digest = hashlib.sha256()
        position = 0
        for (raw, _slot), (_s, start, length) in zip(sections, slots):
            if start > position:
                digest.update(b"\x00" * (start - position))
            digest.update(raw)
            position = start + length
        directory["payload_sha256"] = digest.hexdigest()
        directory["payload_bytes"] = payload_bytes

        directory_raw = encode_value(directory)
        base = _align(len(_MAGIC) + _DIR_LEN.size + len(directory_raw))

        shm = shared_memory.SharedMemory(
            create=True, size=base + payload_bytes, name=name
        )
        buf = shm.buf
        buf[: len(_MAGIC)] = _MAGIC
        _DIR_LEN.pack_into(buf, len(_MAGIC), len(directory_raw))
        header_end = len(_MAGIC) + _DIR_LEN.size
        buf[header_end : header_end + len(directory_raw)] = directory_raw
        for (raw, _slot), (_s, start, length) in zip(sections, slots):
            buf[base + start : base + start + length] = raw
        event = faults.inject("shm.segment.tamper", segment=shm.name)
        if event is not None:
            # Flip one payload byte *after* the checksum was recorded: the
            # segment now fails ``verify()``, exactly like a stray writer or
            # DMA corruption would.
            victim = base + payload_bytes // 2
            buf[victim] = buf[victim] ^ 0xFF
        directory["_base"] = base
        return cls(shm, owner=True, directory=directory)

    @classmethod
    def attach(cls, name: str) -> "SharedArtifactSegment":
        """Map an existing segment by name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        # Python 3.11's attach path registers the mapping with the resource
        # tracker as if this process owned it, which would unlink the file
        # when the *worker* exits.  The server owns the lifetime; undo it.
        try:  # pragma: no cover - tracker internals vary across versions
            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        buf = shm.buf
        if bytes(buf[: len(_MAGIC)]) != _MAGIC:
            shm.close()
            raise ValueError(f"shared segment {name!r} has a bad magic")
        (dir_len,) = _DIR_LEN.unpack_from(buf, len(_MAGIC))
        header_end = len(_MAGIC) + _DIR_LEN.size
        directory = decode_value(bytes(buf[header_end : header_end + dir_len]))
        directory["_base"] = _align(header_end + dir_len)
        return cls(shm, owner=False, directory=directory)

    # ------------------------------------------------------------------
    # Mapped views (worker side)
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def fingerprint(self) -> str:
        return self._directory["fingerprint"]

    @property
    def scheme_names(self) -> List[str]:
        return sorted(self._directory["artifacts"])

    @property
    def size_bytes(self) -> int:
        return self._shm.size

    def _view(self, start: int, length: int) -> memoryview:
        if self._buf is None:
            raise ValueError("segment is closed")
        base = self._directory["_base"]
        return self._buf[base + start : base + start + length]

    def verify(self) -> bool:
        """Re-hash the payload area against the published checksum.

        Raises :class:`SegmentIntegrityError` on mismatch; returns ``True``
        otherwise.  Workers call this between :meth:`attach` and serving, so
        a segment corrupted in flight (or tampered via the
        ``shm.segment.tamper`` fault point) is rejected before a single
        query reads through it.  Segments published by older layouts carry
        no checksum and pass vacuously.
        """
        expected = self._directory.get("payload_sha256")
        if not expected:
            return True
        if self._buf is None:
            raise ValueError("segment is closed")
        base = self._directory["_base"]
        payload_bytes = int(self._directory.get("payload_bytes", 0))
        view = self._buf[base : base + payload_bytes]
        try:
            actual = hashlib.sha256(view).hexdigest()
        finally:
            view.release()
        if actual != expected:
            raise SegmentIntegrityError(
                f"segment {self.name!r} payload hash {actual[:12]}... does not "
                f"match published {expected[:12]}..."
            )
        return True

    def csr_graph(self) -> CSRGraph:
        """A :meth:`CSRGraph.from_buffers` snapshot over the mapping."""
        ids_start, ids_length = self._directory["ids"]
        ids = self._view(ids_start, ids_length).cast("q")
        views = []
        for section_name, typecode in _CSR_SECTIONS:
            start, length = self._directory["csr"][section_name]
            views.append(self._view(start, length).cast(typecode))
        return CSRGraph.from_buffers(
            list(ids), *views, name=self._directory["csr_name"]
        )

    def restore_network(self) -> RoadNetwork:
        """Rebuild the network and adopt the shared CSR snapshot.

        The network's dict adjacency is per-process (it is small and every
        scheme needs Python-level access to it); the heavy flat arrays come
        from :meth:`csr_graph`, shared.
        """
        start, length = self._directory["network"]
        network = restore_network(decode_value(self._view(start, length)))
        network.adopt_csr(self.csr_graph())
        return network

    def artifact(self, scheme_name: str) -> BuildArtifact:
        """The named scheme's artifact, payload referenced in place."""
        entry = self._directory["artifacts"].get(scheme_name)
        if entry is None:
            raise KeyError(
                f"segment holds no artifact for scheme {scheme_name!r} "
                f"(has: {', '.join(self.scheme_names) or 'none'})"
            )
        return BuildArtifact.from_bytes(self._view(*entry), copy_payload=False)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> bool:
        """Drop this process's mapping; ``True`` when fully released.

        Closing can fail benignly: scheme objects restored zero-copy hold
        memoryview exports into the mapping, and CPython refuses to unmap
        while they live.  Callers drop their references first; if something
        still holds one, the mapping stays (the OS reclaims it with the
        process) and ``False`` is returned rather than raising mid-swap.
        """
        if self._closed:
            return True
        self._buf = None
        try:
            self._shm.close()
        except BufferError:
            # Dropped references may sit in cycles; one collection usually
            # releases the last exports.  If not, give up gracefully.
            import gc

            gc.collect()
            try:
                self._shm.close()
            except BufferError:
                return False
        self._closed = True
        return True

    def unlink(self) -> None:
        """Remove the segment's backing file (owner side; idempotent).

        Safe while workers still map it -- POSIX keeps the memory alive
        until the last mapping closes, exactly the semantics the refresh
        swap needs (old workers finish in-flight requests on the old
        segment while the name already points nowhere).
        """
        if self._unlinked:
            return
        self._unlinked = True
        # A forked worker's attach/unregister may have removed the tracker
        # entry this unlink is about to unregister (the tracker process is
        # shared across the fork); re-register first so the bookkeeping
        # balances instead of logging a KeyError from the tracker.
        try:  # pragma: no cover - tracker internals vary across versions
            resource_tracker.register(self._shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing unlink
            pass


# ----------------------------------------------------------------------
# Sharing evidence (/proc introspection, Linux)
# ----------------------------------------------------------------------
def process_rss_kb(pid: int) -> Optional[int]:
    """A process's resident set size in kB (``None`` off-Linux)."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def mapping_stats(pid: int, segment_name: str) -> Optional[Dict[str, int]]:
    """Per-process counters of one shared segment's mapping, from smaps.

    Returns ``rss_kb`` (resident), ``shared_kb`` (resident pages shared
    with other processes) and ``private_dirty_kb`` (pages this process
    copied or wrote -- the tell-tale of a *copied* index; near zero when
    the index is genuinely shared).  ``None`` when the mapping or smaps is
    unavailable.
    """
    wanted = f"/{segment_name}"
    totals = {"rss_kb": 0, "shared_kb": 0, "private_dirty_kb": 0}
    found = False
    try:
        with open(f"/proc/{pid}/smaps", "r", encoding="ascii") as handle:
            in_mapping = False
            for line in handle:
                if "-" in line.split(" ", 1)[0] and " " in line:
                    # Mapping header lines end with the backing path.
                    in_mapping = line.rstrip("\n").endswith(wanted)
                    found = found or in_mapping
                elif in_mapping:
                    parts = line.split()
                    if len(parts) >= 2:
                        if parts[0] == "Rss:":
                            totals["rss_kb"] += int(parts[1])
                        elif parts[0] in ("Shared_Clean:", "Shared_Dirty:"):
                            totals["shared_kb"] += int(parts[1])
                        elif parts[0] == "Private_Dirty:":
                            totals["private_dirty_kb"] += int(parts[1])
    except (OSError, ValueError, IndexError):
        return None
    return totals if found else None
