"""Blocking client and load generator for the serving daemon.

:class:`ServingClient` is the synchronous counterpart of the asyncio
server: one socket, framed JSON requests, errors surfaced as exceptions
(:func:`~repro.serving.protocol.raise_for_status`).  It is what the tests,
the CLI ``bench-client`` entry point and the benchmark drive.

:func:`run_load` is a multi-connection load generator: it spreads a fixed
list of source/target pairs over ``concurrency`` client connections,
honours ``busy`` backpressure with the server's own retry advice, and
reports wall-clock throughput plus client-side latency percentiles as a
:class:`LoadReport`.

Failure semantics (the client side of the resilience contract):

* every socket wait is bounded -- a dead or hung server surfaces within
  ``timeout`` as a typed exception, never as an indefinite block;
* a timeout waiting for a response to *start* raises
  :class:`~repro.serving.protocol.DeadlineExceeded`; a peer that dies or
  stalls *mid-frame* raises the ``ConnectionError``-derived
  :class:`~repro.serving.protocol.ProtocolError`;
* per-call ``deadline_ms`` both caps the socket wait and travels in the
  request, so the server stops burning worker time on requests whose
  client already gave up;
* an optional :class:`~repro.serving.breaker.CircuitBreaker` fails calls
  in microseconds while the daemon is down instead of burning a timeout
  per attempt, and re-probes on its half-open schedule.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.serving import protocol
from repro.serving.breaker import CircuitBreaker
from repro.stats import percentile

__all__ = ["LoadReport", "ServingClient", "run_load"]

#: Accepted address shapes: a Unix socket path, ``("unix", path)`` or
#: ``("tcp", host, port)`` -- the latter two being exactly what
#: :meth:`AirServer.start` returns.
Address = Union[str, Tuple]


def _connect(address: Address, timeout: Optional[float]) -> socket.socket:
    if isinstance(address, str):
        address = ("unix", address)
    kind = address[0]
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if timeout is not None:
            sock.settimeout(timeout)
        try:
            sock.connect(address[1])
        except OSError:
            sock.close()
            raise
    elif kind == "tcp":
        sock = socket.create_connection((address[1], address[2]), timeout=timeout)
    else:
        raise ValueError(f"unknown address kind {kind!r}")
    return sock


class ServingClient:
    """One blocking connection to an :class:`~repro.serving.server.AirServer`.

    ``timeout`` bounds every socket operation including the initial connect;
    ``breaker`` (optional) short-circuits calls while the daemon is known to
    be down -- transport failures trip it, any framed response (even ``busy``
    or ``error``) proves liveness and resets it.
    """

    def __init__(
        self,
        address: Address,
        timeout: Optional[float] = 120.0,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self._timeout = timeout
        self._breaker = breaker
        self._sock = _connect(address, timeout)

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def call(
        self, request: Dict[str, Any], deadline_ms: Optional[float] = None
    ) -> Dict[str, Any]:
        """One raw request/response round trip; raises on non-``ok``.

        With ``deadline_ms``, the socket wait is capped at the deadline (in
        addition to the connection timeout) and the budget is stamped into
        the request so the server can propagate it to workers and stop
        spending compute on an abandoned request.  A response that fails to
        *start* within the budget raises
        :class:`~repro.serving.protocol.DeadlineExceeded`; one that starts
        and stalls raises :class:`~repro.serving.protocol.ProtocolError`.
        """
        if self._breaker is not None:
            self._breaker.before_call()
        restore_timeout = False
        try:
            if deadline_ms is not None:
                request = {**request, "deadline_ms": float(deadline_ms)}
                budget_s = max(deadline_ms, 0.0) / 1000.0
                if self._timeout is None or budget_s < self._timeout:
                    self._sock.settimeout(budget_s)
                    restore_timeout = True
            try:
                protocol.write_frame(self._sock, request)
                response = protocol.read_frame(self._sock)
            except protocol.ProtocolError:
                raise
            except TimeoutError:
                raise protocol.DeadlineExceeded(
                    f"no response within "
                    f"{deadline_ms if deadline_ms is not None else (self._timeout or 0) * 1000.0:.0f} ms"
                ) from None
            except OSError as exc:
                raise protocol.ProtocolError(f"transport failure: {exc}") from exc
            if response is None:
                raise protocol.ProtocolError("server closed the connection")
        except (protocol.ProtocolError, protocol.DeadlineExceeded):
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        finally:
            if restore_timeout:
                self._sock.settimeout(self._timeout)
        if self._breaker is not None:
            # Any framed response -- ok, busy or error -- proves the server
            # is alive; only transport failures count against the breaker.
            self._breaker.record_success()
        return protocol.raise_for_status(response)

    def call_with_retry(
        self,
        request: Dict[str, Any],
        max_retries: int = 100,
        backoff_base: float = 1.5,
        max_sleep_s: float = 0.25,
        jitter: float = 0.5,
    ) -> Tuple[Dict[str, Any], int]:
        """Like :meth:`call`, but honour ``busy`` backpressure.

        Starts from the server's advised interval and backs off
        exponentially (factor ``backoff_base`` per consecutive rejection,
        capped at ``max_sleep_s``), with each sleep jittered uniformly in
        ``[1 - jitter, 1 + jitter]`` so a herd of clients rejected together
        does not retry together.  After ``max_retries`` rejections the
        :class:`~repro.serving.protocol.ServerBusy` is re-raised -- a
        persistently saturated server surfaces as an error instead of an
        unbounded retry spin.  Returns ``(response, busy_retries)`` so load
        generators can account rejections.
        """
        retries = 0
        while True:
            try:
                return self.call(request), retries
            except protocol.ServerBusy as busy:
                retries += 1
                if retries > max_retries:
                    raise
                advised = busy.retry_after_ms / 1000.0
                delay = min(advised * backoff_base ** (retries - 1), max_sleep_s)
                time.sleep(delay * random.uniform(1.0 - jitter, 1.0 + jitter))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call({"op": "ping"})

    def info(self) -> Dict[str, Any]:
        return self.call({"op": "info"})

    def query(
        self,
        method: str,
        source: int,
        target: int,
        tune_in_offset: Optional[int] = None,
        with_path: bool = False,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {
            "op": "query",
            "method": method,
            "source": int(source),
            "target": int(target),
        }
        if tune_in_offset is not None:
            request["tune_in_offset"] = int(tune_in_offset)
        if with_path:
            request["with_path"] = True
        return self.call(request)

    def query_batch(
        self,
        method: str,
        queries: Sequence[Tuple[int, int]],
        tune_in_offset: Optional[int] = None,
    ) -> Dict[str, Any]:
        request: Dict[str, Any] = {
            "op": "query_batch",
            "method": method,
            "queries": [[int(s), int(t)] for s, t in queries],
        }
        if tune_in_offset is not None:
            request["tune_in_offset"] = int(tune_in_offset)
        return self.call(request)

    def fleet(
        self,
        method: str,
        scenario: str = "trickle",
        devices: int = 100,
        seed: int = 0,
        loss_rate: float = 0.0,
    ) -> Dict[str, Any]:
        return self.call(
            {
                "op": "fleet",
                "method": method,
                "scenario": scenario,
                "devices": int(devices),
                "seed": int(seed),
                "loss_rate": float(loss_rate),
            }
        )

    def refresh(self, updates: Iterable[Tuple[int, int, float]]) -> Dict[str, Any]:
        return self.call(
            {
                "op": "refresh",
                "updates": [[int(s), int(t), float(w)] for s, t, w in updates],
            }
        )

    def crash_worker(self, worker: int = 0) -> Dict[str, Any]:
        """Diagnostic: ask the server to kill one worker (recovery drills)."""
        return self.call({"op": "crash_worker", "worker": int(worker)})

    def shutdown(self) -> Dict[str, Any]:
        return self.call({"op": "shutdown"})


@dataclass
class LoadReport:
    """What one :func:`run_load` burst measured, client-side."""

    requests: int = 0
    errors: int = 0
    busy_retries: int = 0
    deadline_misses: int = 0
    reconnects: int = 0
    stale_responses: int = 0
    duration_s: float = 0.0
    qps: float = 0.0
    latency_ms: Dict[str, float] = field(default_factory=dict)
    #: responses per worker id -- shows how routing spread the load.
    workers: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "busy_retries": self.busy_retries,
            "deadline_misses": self.deadline_misses,
            "reconnects": self.reconnects,
            "stale_responses": self.stale_responses,
            "duration_s": self.duration_s,
            "qps": self.qps,
            "latency_ms": dict(self.latency_ms),
            "workers": dict(self.workers),
        }


def run_load(
    address: Address,
    pairs: Sequence[Tuple[int, int]],
    method: str = "NR",
    concurrency: int = 4,
    tune_in_offset: Optional[int] = 0,
    max_retries: int = 200,
    deadline_ms: Optional[float] = None,
    timeout: Optional[float] = 120.0,
) -> LoadReport:
    """Drive ``pairs`` through the daemon from ``concurrency`` connections.

    Each connection works through its own slice of the pair list, retrying
    on ``busy`` with the server's advice.  Latencies are wall-clock per
    request (including retries), so the percentiles reflect what a real
    client experiences under the configured pressure.

    A connection that fails at the transport layer (server restart, torn
    frame) is re-established and the driver moves on to its next pair, so a
    flaky daemon costs errors in the report, never a silently-truncated
    run.  With ``deadline_ms`` every request carries that end-to-end
    budget; expiries count as ``deadline_misses``.
    """
    concurrency = max(1, min(concurrency, len(pairs) or 1))
    slices: List[List[Tuple[int, int]]] = [[] for _ in range(concurrency)]
    for index, pair in enumerate(pairs):
        slices[index % concurrency].append(pair)

    lock = threading.Lock()
    latencies: List[float] = []
    workers: Dict[str, int] = {}
    counters = {
        "requests": 0,
        "errors": 0,
        "busy_retries": 0,
        "deadline_misses": 0,
        "reconnects": 0,
        "stale_responses": 0,
    }

    def drive(batch: List[Tuple[int, int]]) -> None:
        client: Optional[ServingClient] = ServingClient(address, timeout=timeout)
        try:
            for source, target in batch:
                if client is None:
                    try:
                        client = ServingClient(address, timeout=timeout)
                        with lock:
                            counters["reconnects"] += 1
                    except OSError:
                        with lock:
                            counters["errors"] += 1
                        continue
                request = {
                    "op": "query",
                    "method": method,
                    "source": int(source),
                    "target": int(target),
                    **(
                        {"tune_in_offset": int(tune_in_offset)}
                        if tune_in_offset is not None
                        else {}
                    ),
                }
                started = time.perf_counter()
                try:
                    if deadline_ms is None:
                        response, retries = client.call_with_retry(
                            request, max_retries=max_retries
                        )
                    else:
                        response, retries = client.call(request, deadline_ms=deadline_ms), 0
                except protocol.DeadlineExceeded:
                    with lock:
                        counters["errors"] += 1
                        counters["deadline_misses"] += 1
                    # A late answer to this request may still arrive on the
                    # connection; drop it rather than desync request/response.
                    client.close()
                    client = None
                    continue
                except (protocol.ServerBusy, protocol.ServerError):
                    with lock:
                        counters["errors"] += 1
                    continue
                except (protocol.ProtocolError, OSError):
                    with lock:
                        counters["errors"] += 1
                    client.close()
                    client = None
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                with lock:
                    counters["requests"] += 1
                    counters["busy_retries"] += retries
                    if response.get("stale"):
                        counters["stale_responses"] += 1
                    latencies.append(elapsed_ms)
                    worker = str(response.get("worker"))
                    workers[worker] = workers.get(worker, 0) + 1
        finally:
            if client is not None:
                client.close()

    threads = [
        threading.Thread(target=drive, args=(batch,), daemon=True)
        for batch in slices
        if batch
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - started

    report = LoadReport(
        requests=counters["requests"],
        errors=counters["errors"],
        busy_retries=counters["busy_retries"],
        deadline_misses=counters["deadline_misses"],
        reconnects=counters["reconnects"],
        stale_responses=counters["stale_responses"],
        duration_s=duration,
        qps=(counters["requests"] / duration) if duration > 0 else 0.0,
        workers=workers,
    )
    if latencies:
        report.latency_ms = {
            "p50": percentile(latencies, 50),
            "p90": percentile(latencies, 90),
            "p99": percentile(latencies, 99),
            "mean": sum(latencies) / len(latencies),
            "max": max(latencies),
        }
    return report
