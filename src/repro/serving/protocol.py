"""Wire protocol of the serving daemon: length-prefixed JSON frames.

One frame is ``u32 little-endian payload length | UTF-8 JSON payload``.
JSON (rather than the binary codec) because frames carry *control* data --
node ids, distances, latency counters -- never index payloads; the index
itself moves through the shared-memory segment, and keeping the socket
layer human-debuggable (``socat`` + eyeballs) is worth more than shaving
bytes off a few-hundred-byte frame.

Requests are ``{"op": ..., ...}`` dicts; responses carry ``"status"``:

* ``"ok"`` -- the operation's result fields alongside,
* ``"busy"`` -- the bounded queue is full; ``"retry_after_ms"`` advises the
  client when to retry (backpressure, not failure),
* ``"error"`` -- the request failed; ``"error"`` holds the message and
  processing continues (a bad query must not take the connection down).

The same framing is shared by the asyncio server, the blocking client and
the tests, so there is exactly one encoder/decoder pair to get wrong.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_FRAME_BYTES",
    "DeadlineExceeded",
    "ProtocolError",
    "ServerBusy",
    "ServerError",
    "encode_frame",
    "read_frame",
    "read_frame_async",
    "write_frame",
    "raise_for_status",
]

_LENGTH = struct.Struct("<I")

#: Upper bound on one frame's payload: large enough for a several-thousand
#: device fleet summary, small enough that a corrupted length prefix cannot
#: make a reader allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class ProtocolError(ConnectionError):
    """Malformed frame or unexpectedly closed peer."""


class DeadlineExceeded(TimeoutError):
    """A request's end-to-end deadline expired before an answer arrived.

    Raised client-side when the socket times out waiting for a response,
    and translated from server responses carrying ``error_kind: deadline``
    (the server gave up on a dispatched request whose budget ran out).
    ``TimeoutError``-derived so generic timeout handling still applies.
    """


class ServerError(RuntimeError):
    """The server answered ``status: error``."""


class ServerBusy(RuntimeError):
    """The server answered ``status: busy`` (bounded queue full).

    Carries the server's retry advice so load generators can implement
    honest backoff instead of hammering a saturated queue.
    """

    def __init__(self, retry_after_ms: float) -> None:
        super().__init__(f"server busy, retry after {retry_after_ms:.0f} ms")
        self.retry_after_ms = retry_after_ms


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message as its on-wire bytes (length prefix included)."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds the maximum")
    return _LENGTH.pack(len(payload)) + payload


def _decode_payload(payload: bytes) -> Dict[str, Any]:
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(f"frame payload must be an object, got {type(message).__name__}")
    return message


def write_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one frame over a blocking socket."""
    sock.sendall(encode_frame(message))


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    chunks = bytearray()
    while len(chunks) < count:
        try:
            chunk = sock.recv(count - len(chunks))
        except TimeoutError:
            if chunks:
                # The peer sent part of a frame and stalled: a torn frame is
                # a protocol failure, not a quiet socket -- surface it typed
                # instead of letting a raw timeout escape mid-read.
                raise ProtocolError(
                    f"timed out mid-frame after {len(chunks)}/{count} bytes"
                ) from None
            raise
        if not chunk:
            return None
        chunks += chunk
    return bytes(chunks)


def read_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; ``None`` on clean EOF.

    Raises :class:`ProtocolError` when the peer closes or stalls *inside* a
    frame (half-written frames must never hang a reader past its socket
    timeout); a timeout while waiting for the frame to *start* propagates
    as ``TimeoutError`` for the caller's deadline handling.
    """
    prefix = _recv_exactly(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the maximum")
    try:
        payload = _recv_exactly(sock, length)
    except TimeoutError:
        # The length prefix arrived but the payload never did: mid-frame.
        raise ProtocolError(
            f"timed out mid-frame waiting for a {length}-byte payload"
        ) from None
    if payload is None:
        raise ProtocolError("connection closed mid-frame")
    return _decode_payload(payload)


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds the maximum")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return _decode_payload(payload)


def raise_for_status(response: Dict[str, Any]) -> Dict[str, Any]:
    """Return an ``ok`` response, translating the error statuses to raises."""
    status = response.get("status")
    if status == "ok":
        return response
    if status == "busy":
        raise ServerBusy(float(response.get("retry_after_ms", 50.0)))
    if status == "error":
        if response.get("error_kind") == "deadline":
            raise DeadlineExceeded(str(response.get("error", "deadline exceeded")))
        raise ServerError(str(response.get("error", "unknown server error")))
    raise ProtocolError(f"malformed response status: {status!r}")
