"""Serving worker: warm-starts from a shared segment and answers requests.

The logic lives in :class:`WorkerRuntime`, a plain object the tests drive
in-process; :func:`worker_main` is only the thin blocking loop the child
process runs around it (receive request dict, handle, send response dict).
Requests travel over a :class:`multiprocessing.connection.Connection` in
FIFO order, which is what makes the refresh swap atomic from a client's
point of view: every request queued before the swap message is answered on
the old cycle, everything after on the new one -- never a mixture.

A runtime answers with the same objects a direct
:class:`~repro.engine.system.AirSystem` call would produce: it *is* an
``AirSystem`` over the restored network, with the restored schemes
pre-seeded into its cycle cache under exactly the keys the system's own
lookups compute.  Bit-identity with the build process is therefore by
construction, not by parallel implementation.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.air.base import AirIndexScheme, ClientOptions
from repro.engine.system import AirSystem
from repro.faults import runtime as faults
from repro.faults.plan import FaultPlan
from repro.serving.shm import SharedArtifactSegment
from repro.stats import summarize_latencies

__all__ = ["WorkerRuntime", "worker_main"]


class WorkerRuntime:
    """One worker's state machine: a shared-segment-backed ``AirSystem``.

    Parameters
    ----------
    worker_id:
        Stable identifier, echoed in every response (tests and the load
        generator use it to observe routing and respawns).
    config:
        The serve-time experiment configuration.  Must resolve each
        scheme's parameters to the values the segment's artifacts were
        built with, so that the system's own cache-key computation lands on
        the pre-seeded entries.
    pace_packet_us:
        Emulated on-air channel time per packet, in microseconds.  After
        computing a query the worker sleeps ``access_latency_packets *
        pace_packet_us`` -- the broadcast model's latency is air time, not
        CPU, and pacing reproduces that service time in a wall-clock
        benchmark.  ``0`` (the default) disables pacing.
    """

    def __init__(
        self,
        worker_id: int,
        config: Any = None,
        pace_packet_us: float = 0.0,
    ) -> None:
        self.worker_id = worker_id
        self.config = config
        self.pace_packet_us = pace_packet_us
        self.segment: Optional[SharedArtifactSegment] = None
        self.system: Optional[AirSystem] = None
        self.requests_served = 0
        self.swaps = 0

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def load_segment(self, segment_name: str) -> Dict[str, Any]:
        """Attach a published segment and (re)build the serving system.

        Used both for the initial warm start and for refresh swaps; the old
        segment (if any) is released afterwards, so during a swap the two
        mappings coexist only for the microseconds the exchange takes.

        The attached segment is integrity-checked *before* anything is
        restored from it: a corrupted publication raises
        :class:`~repro.serving.shm.SegmentIntegrityError` and leaves the
        worker serving its previous segment untouched.
        """
        segment = SharedArtifactSegment.attach(segment_name)
        try:
            segment.verify()
            network = segment.restore_network()
            system = AirSystem(network, config=self.config)
            for name in segment.scheme_names:
                artifact = segment.artifact(name)
                scheme = AirIndexScheme.from_artifact(network, artifact, zero_copy=True)
                resolved = system._resolve_params(name, dict(artifact.params))
                system._schemes[system._cache_key(name, resolved)] = scheme
        except Exception:
            segment.close()
            raise
        previous = self.segment
        self.segment, self.system = segment, system
        if previous is not None:
            self.swaps += 1
            previous.close()
        return {
            "fingerprint": segment.fingerprint,
            "schemes": segment.scheme_names,
        }

    def shutdown(self) -> None:
        """Release the mapping (idempotent)."""
        self.system = None
        if self.segment is not None:
            segment, self.segment = self.segment, None
            segment.close()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Process one request dict into one response dict (never raises).

        A failing request -- unknown op, unknown node, scheme not in the
        segment -- produces ``status: error`` and leaves the worker
        serving; only a genuine crash (tested via the ``_crash`` op, which
        :func:`worker_main` implements) takes the process down.

        Requests may carry ``deadline_at`` -- an absolute
        ``time.monotonic()`` instant set by the server from the client's
        ``deadline_ms`` budget (``CLOCK_MONOTONIC`` is process-shared on
        Linux).  A request that reaches the worker already expired is
        answered with a ``deadline`` error instead of burning compute on an
        answer nobody is waiting for.
        """
        op = request.get("op")
        try:
            deadline_at = request.get("deadline_at")
            if deadline_at is not None and time.monotonic() > float(deadline_at):
                self.requests_served += 1
                return {
                    "status": "error",
                    "error": "deadline expired before the worker started",
                    "error_kind": "deadline",
                    "worker": self.worker_id,
                }
            hang = faults.inject("worker.hang_ms", op=op)
            if hang is not None:
                time.sleep(float(hang.param("hang_ms", 60_000.0)) / 1000.0)
            if op == "ping":
                response: Dict[str, Any] = {"status": "ok"}
            elif op == "info":
                response = self._info()
            elif op == "query":
                response = self._query(request)
            elif op == "query_batch":
                response = self._query_batch(request)
            elif op == "fleet":
                response = self._fleet(request)
            elif op == "_swap":
                response = {"status": "ok", **self.load_segment(request["segment"])}
            elif op == "_chaos":
                response = self._chaos(request)
            else:
                response = {"status": "error", "error": f"unknown op {op!r}"}
        except Exception as exc:  # a bad request must not kill the worker
            response = {"status": "error", "error": f"{type(exc).__name__}: {exc}"}
        response.setdefault(
            "fingerprint", self.segment.fingerprint if self.segment else None
        )
        response["worker"] = self.worker_id
        self.requests_served += 1
        return response

    def _require_system(self) -> AirSystem:
        if self.system is None:
            raise RuntimeError("worker has no segment loaded")
        return self.system

    def _options(self, request: Dict[str, Any]) -> ClientOptions:
        options = self._require_system().default_options
        offset = request.get("tune_in_offset")
        if offset is not None:
            options = options.replace(tune_in_offset=int(offset))
        return options

    def _pace(self, access_latency_packets: float) -> None:
        if self.pace_packet_us > 0.0:
            time.sleep(access_latency_packets * self.pace_packet_us / 1e6)

    def _chaos(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Install or clear this worker's copy of a fault plan.

        Each worker evaluates its own plan instance (same seed, private
        clock), so per-worker fault streams are deterministic regardless of
        how the server spreads requests across the pool.
        """
        action = request.get("action", "install")
        if action == "install":
            faults.install(FaultPlan.from_dict(request.get("plan") or {}))
        elif action == "clear":
            faults.clear()
        else:
            raise ValueError(f"unknown chaos action {action!r}")
        return {"status": "ok", "action": action}

    def _info(self) -> Dict[str, Any]:
        segment = self.segment
        return {
            "status": "ok",
            "requests_served": self.requests_served,
            "swaps": self.swaps,
            "segment": segment.name if segment else None,
            "segment_bytes": segment.size_bytes if segment else 0,
            "schemes": segment.scheme_names if segment else [],
        }

    def _query(self, request: Dict[str, Any]) -> Dict[str, Any]:
        system = self._require_system()
        result = system.query(
            request["method"],
            int(request["source"]),
            int(request["target"]),
            options=self._options(request),
        )
        self._pace(result.metrics.access_latency_packets)
        response = {
            "status": "ok",
            "distance": result.distance,
            "found": result.found,
            "tuning_time_packets": result.metrics.tuning_time_packets,
            "access_latency_packets": result.metrics.access_latency_packets,
            "peak_memory_bytes": result.metrics.peak_memory_bytes,
            "lost_packets": result.metrics.lost_packets,
        }
        if request.get("with_path"):
            response["path"] = list(result.path)
        return response

    def _query_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """A whole workload, mirroring :func:`engine.system.execute_workload`.

        Sessions are drawn from a fresh seeded channel sequentially in
        workload order -- the exact recipe of the engine's batch runner --
        so the distances and metrics equal a direct
        :meth:`AirSystem.query_batch` call over the same pairs.
        """
        system = self._require_system()
        options = self._options(request)
        name = request["method"]
        pairs = [(int(s), int(t)) for s, t in request["queries"]]
        scheme = system.scheme(name)
        channel = scheme.channel(loss_rate=options.loss_rate, seed=options.loss_seed)
        client = scheme.client(options=options)
        sessions = [channel.session(options.tune_in_offset) for _ in pairs]
        distances: List[float] = []
        latencies: List[float] = []
        tunings: List[float] = []
        total_latency = 0.0
        for (source, target), session in zip(pairs, sessions):
            result = client.query(source, target, session=session)
            distances.append(result.distance)
            latencies.append(float(result.metrics.access_latency_packets))
            tunings.append(float(result.metrics.tuning_time_packets))
            total_latency += result.metrics.access_latency_packets
        self._pace(total_latency)
        return {
            "status": "ok",
            "distances": distances,
            "latency": summarize_latencies(latencies),
            "tuning": summarize_latencies(tunings),
        }

    def _fleet(self, request: Dict[str, Any]) -> Dict[str, Any]:
        from repro.experiments import FLEET_SCENARIOS

        system = self._require_system()
        scenario = request.get("scenario", "trickle")
        generator = FLEET_SCENARIOS.get(scenario)
        if generator is None:
            raise ValueError(
                f"unknown fleet scenario {scenario!r} "
                f"(available: {', '.join(sorted(FLEET_SCENARIOS))})"
            )
        devices = generator(
            system.network,
            int(request.get("devices", 100)),
            seed=int(request.get("seed", 0)),
            loss_rate=float(request.get("loss_rate", 0.0)),
        )
        run = system.simulate_fleet(
            request["method"], devices, seed=int(request.get("seed", 0))
        )
        self._pace(run.mean("access_latency_packets") * run.num_devices)
        return {
            "status": "ok",
            "devices": run.num_devices,
            "mismatches": run.mismatches,
            "replays": run.replays,
            "natives": run.natives,
            "latency_percentiles": {
                str(int(q)): v for q, v in run.latency_percentiles().items()
            },
            "tuning_percentiles": {
                str(int(q)): v for q, v in run.tuning_percentiles().items()
            },
            "signature_digest": _signature_digest(run),
        }


def _signature_digest(run) -> str:
    """Stable digest of a fleet run's deterministic per-device fields."""
    import hashlib

    return hashlib.sha256(repr(run.signature()).encode("utf-8")).hexdigest()


def worker_main(
    conn,
    worker_id: int,
    segment_name: str,
    config: Any = None,
    pace_packet_us: float = 0.0,
) -> None:  # pragma: no cover - runs in the child process
    """Blocking request loop of one worker process.

    Protocol over ``conn`` (dicts, FIFO): serving ops are delegated to
    :class:`WorkerRuntime`; ``_exit`` answers then leaves cleanly;
    ``_crash`` dies instantly without answering (crash-detection tests).
    Any id accompanying a request is echoed back so the server can match
    responses to futures.
    """
    import os

    runtime = WorkerRuntime(worker_id, config=config, pace_packet_us=pace_packet_us)
    runtime.load_segment(segment_name)
    conn.send({"status": "ok", "op": "_ready", "worker": worker_id})
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            break
        op = request.get("op")
        if op == "_crash":
            os._exit(17)
        if op == "_exit":
            runtime.shutdown()
            response = {"status": "ok", "worker": worker_id}
            if "id" in request:
                response["id"] = request["id"]
            conn.send(response)
            break
        response = runtime.handle(request)
        if "id" in request:
            response["id"] = request["id"]
        try:
            conn.send(response)
        except (BrokenPipeError, OSError):
            break
    runtime.shutdown()
    conn.close()
