"""The serving daemon: asyncio front end over a pool of worker processes.

:class:`AirServer` owns the build side -- one :class:`AirSystem` (with the
optional :class:`~repro.store.ArtifactStore` disk tier for warm starts)
builds every configured scheme once, publishes the result as a
:class:`~repro.serving.shm.SharedArtifactSegment`, and spawns N worker
processes that map the segment zero-copy.  The front end accepts framed
JSON requests (:mod:`repro.serving.protocol`) over a Unix or TCP socket
and forwards serving ops (``query`` / ``query_batch`` / ``fleet``) to
workers over per-worker pipes.

Operational contract:

* **Backpressure.**  Each worker has a bounded in-flight window
  (``max_pending``); when every worker is full, a request is answered
  ``busy`` with retry advice instead of queuing unboundedly.
* **Routing.**  ``round_robin`` spreads load evenly; ``region`` routes a
  query by its source node's kd-tree region (the partitioning layer),
  sharding the network across workers, and spills to the least-loaded
  worker when the home shard is saturated.
* **Refresh.**  ``refresh`` applies an edge-weight batch through
  :meth:`AirSystem.apply_updates` (incremental rebuilds + store
  re-publication), publishes a *new* segment, and sends each worker a
  swap message through its request pipe.  Pipes are FIFO, so every
  request enqueued before the swap is answered on the old cycle and
  everything after on the new one -- answers are old-or-new, never torn.
  The old segment is unlinked once every worker has acknowledged.
* **Crash safety.**  A liveness monitor respawns dead workers and
  re-dispatches their un-answered requests to the replacement, so a crash
  costs latency, never a wrong answer.
* **Shutdown.**  ``stop()`` drains workers with an exit message, joins
  them, and releases the segment; it is idempotent (double shutdown is a
  no-op) and also runs on ``shutdown`` requests from clients.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import multiprocessing
import os
import tempfile
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.system import AirSystem
from repro.experiments import ExperimentConfig
from repro.partitioning.base import Partitioning
from repro.partitioning.kdtree import KDTreePartitioner
from repro.serving import protocol
from repro.serving.shm import SharedArtifactSegment, mapping_stats, process_rss_kb
from repro.serving.worker import worker_main
from repro.store import ArtifactStore

__all__ = ["ServeConfig", "AirServer", "ServerHandle"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes one serving daemon, in one picklable object."""

    #: Evaluation network (dataset name), scale and seed -- the same knobs
    #: as the CLI's common options, resolved through ``ExperimentConfig``.
    network: str = "milan"
    scale: float = 0.02
    seed: int = 3
    regions: int = 8
    landmarks: int = 8
    #: Schemes to build and serve (canonical names).
    methods: Tuple[str, ...] = ("NR",)
    #: Worker pool size.
    workers: int = 2
    #: Per-worker bound on in-flight requests; the backpressure knob.
    max_pending: int = 32
    #: Retry advice attached to ``busy`` responses.
    retry_after_ms: float = 25.0
    #: Emulated on-air microseconds per packet (see ``WorkerRuntime``).
    pace_packet_us: float = 0.0
    #: ``round_robin`` or ``region`` (kd-tree sharding by source node).
    routing: str = "round_robin"
    #: Unix socket path; auto-generated in the temp dir when ``None`` and
    #: no TCP port is given.
    socket_path: Optional[str] = None
    #: TCP fallback: set a port (0 = ephemeral) to listen on ``host``.
    port: Optional[int] = None
    host: str = "127.0.0.1"
    #: Optional artifact-store directory (warm starts + refresh publication).
    store_dir: Optional[str] = None
    #: Worker start method; ``fork`` warm-starts in milliseconds, ``spawn``
    #: is the portable fallback.
    start_method: str = "fork"

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            network=self.network,
            scale=self.scale,
            seed=self.seed,
            eb_nr_regions=self.regions,
            arcflag_regions=self.regions,
            hiti_regions=self.regions,
            num_landmarks=self.landmarks,
        )


@dataclass
class _Worker:
    """Server-side handle of one worker process."""

    worker_id: int
    process: Any
    conn: Any
    #: request id -> (future, original request) for everything in flight.
    pending: Dict[int, Tuple[asyncio.Future, Dict[str, Any]]] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return len(self.pending)


class AirServer:
    """Sharded multi-process serving daemon (see module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.system: Optional[AirSystem] = None
        self.segment: Optional[SharedArtifactSegment] = None
        self.workers: List[_Worker] = []
        self.address: Optional[Tuple] = None
        self.generation = 0
        self.respawns = 0
        self.busy_rejections = 0
        self.requests_dispatched = 0
        self._partitioning: Optional[Partitioning] = None
        self._mp = multiprocessing.get_context(config.start_method)
        self._server: Optional[asyncio.base_events.Server] = None
        self._request_ids = itertools.count(1)
        self._round_robin = itertools.count()
        self._monitor_task: Optional[asyncio.Task] = None
        self._admin_lock: Optional[asyncio.Lock] = None
        self._stopped_event: Optional[asyncio.Event] = None
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    async def start(self) -> Tuple:
        """Build, publish, spawn the pool and start listening.

        Returns the listening address: ``("unix", path)`` or
        ``("tcp", host, port)``.
        """
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._admin_lock = asyncio.Lock()
        self._stopped_event = asyncio.Event()

        store = ArtifactStore(self.config.store_dir) if self.config.store_dir else None
        self.system = AirSystem.from_config(self.config.experiment_config(), store=store)
        self.segment = self._publish_segment()
        if self.config.routing == "region":
            self._partitioning = self._build_partitioning()
        elif self.config.routing != "round_robin":
            raise ValueError(f"unknown routing policy {self.config.routing!r}")

        loop = asyncio.get_running_loop()
        for worker_id in range(self.config.workers):
            self.workers.append(await self._spawn(worker_id))
        self._monitor_task = loop.create_task(self._monitor())

        if self.config.port is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.config.host, port=self.config.port
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = ("tcp", self.config.host, port)
        else:
            path = self.config.socket_path or os.path.join(
                tempfile.gettempdir(), f"repro-serve-{uuid.uuid4().hex[:12]}.sock"
            )
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=path
            )
            self.address = ("unix", path)
        return self.address

    def _publish_segment(self) -> SharedArtifactSegment:
        """Build every configured scheme and publish one segment."""
        assert self.system is not None
        artifacts = {
            name: self.system.scheme(name).artifact() for name in self.config.methods
        }
        self.generation += 1
        return SharedArtifactSegment.publish(self.system.network, artifacts)

    def _build_partitioning(self) -> Partitioning:
        """A kd-tree sharding of the network onto the worker pool.

        The region count is the smallest power of two covering the pool
        (kd-trees split in halves); region ``r`` is served by worker
        ``r % workers``.
        """
        assert self.system is not None
        network = self.system.network
        num_regions = 1 << max(0, self.config.workers - 1).bit_length()
        points = [(node.x, node.y) for node in network.nodes()]
        locator = KDTreePartitioner.build(points, num_regions)
        return Partitioning(network, locator)

    async def _spawn(self, worker_id: int) -> _Worker:
        """Start one worker process and wait for its warm-start handshake."""
        assert self.segment is not None
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_main,
            args=(
                child_conn,
                worker_id,
                self.segment.name,
                self.config.experiment_config(),
                self.config.pace_packet_us,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        ready = loop.create_future()
        worker = _Worker(worker_id=worker_id, process=process, conn=parent_conn)
        loop.add_reader(
            parent_conn.fileno(), self._drain_worker, worker, ready
        )
        await asyncio.wait_for(ready, timeout=120.0)
        return worker

    # ------------------------------------------------------------------
    # Worker pipe plumbing
    # ------------------------------------------------------------------
    def _drain_worker(self, worker: _Worker, ready: Optional[asyncio.Future]) -> None:
        """Reader callback: resolve futures for every buffered response."""
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                if message.get("op") == "_ready":
                    if ready is not None and not ready.done():
                        ready.set_result(True)
                    continue
                entry = worker.pending.pop(message.pop("id", None), None)
                if entry is not None and not entry[0].done():
                    entry[0].set_result(message)
        except (EOFError, OSError):
            # Worker died mid-pipe; the liveness monitor owns recovery.
            try:
                asyncio.get_running_loop().remove_reader(worker.conn.fileno())
            except (OSError, ValueError):
                pass

    def _submit(self, worker: _Worker, request: Dict[str, Any]) -> asyncio.Future:
        """Send one request down a worker's pipe, tracked by a future."""
        loop = asyncio.get_running_loop()
        request_id = next(self._request_ids)
        future = loop.create_future()
        worker.pending[request_id] = (future, request)
        self.requests_dispatched += 1
        try:
            worker.conn.send({**request, "id": request_id})
        except (BrokenPipeError, OSError):
            pass  # dead worker: the monitor re-dispatches the pending entry
        return future

    def _pick_worker(self, request: Dict[str, Any]) -> Optional[_Worker]:
        """Route a request to a worker with queue capacity; ``None`` = busy."""
        if not self.workers:
            return None
        preferred: Optional[_Worker] = None
        if (
            self.config.routing == "region"
            and self._partitioning is not None
            and request.get("op") == "query"
        ):
            try:
                region = self._partitioning.region_of(int(request["source"]))
                preferred = self.workers[region % len(self.workers)]
            except (KeyError, ValueError, TypeError):
                preferred = None
        if preferred is None:
            preferred = self.workers[next(self._round_robin) % len(self.workers)]
        if preferred.depth < self.config.max_pending:
            return preferred
        # Home shard saturated: spill to the least-loaded worker with room.
        fallback = min(self.workers, key=lambda worker: worker.depth)
        if fallback.depth < self.config.max_pending:
            return fallback
        return None

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        worker = self._pick_worker(request)
        if worker is None:
            self.busy_rejections += 1
            return {
                "status": "busy",
                "retry_after_ms": self.config.retry_after_ms,
            }
        return await self._submit(worker, request)

    # ------------------------------------------------------------------
    # Liveness monitor and respawn
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        """Detect dead workers and respawn them, re-dispatching their load."""
        while not self._stopping:
            await asyncio.sleep(0.15)
            for index, worker in enumerate(list(self.workers)):
                if self._stopping or worker.process.is_alive():
                    continue
                self.respawns += 1
                replacement = await self._respawn(worker)
                if replacement is None:
                    continue
                self.workers[index] = replacement
                for future, request in worker.pending.values():
                    if future.done():
                        continue
                    if request.get("op") == "_crash":
                        future.set_result(
                            {"status": "ok", "note": "worker crashed as requested"}
                        )
                    else:
                        # Replay on the replacement: the request never got an
                        # answer, so re-running it cannot double-serve.
                        self._relay(request, future, replacement)
                worker.pending.clear()

    def _relay(
        self, request: Dict[str, Any], future: asyncio.Future, worker: _Worker
    ) -> None:
        replay = self._submit(worker, request)
        replay.add_done_callback(
            lambda done: future.done() or future.set_result(done.result())
        )

    async def _respawn(self, worker: _Worker) -> Optional[_Worker]:
        loop = asyncio.get_running_loop()
        try:
            loop.remove_reader(worker.conn.fileno())
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        try:
            return await self._spawn(worker.worker_id)
        except (OSError, asyncio.TimeoutError):  # pragma: no cover - spawn failure
            return None

    # ------------------------------------------------------------------
    # Refresh (cycle re-publication)
    # ------------------------------------------------------------------
    async def _refresh(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply weight updates, publish a new segment, swap every worker.

        The expensive part -- repairing the schemes and packing the new
        shared segment -- runs *off* the event loop, through the engine's
        double-buffered :meth:`~repro.engine.system.AirSystem.refresh_async`:
        the asyncio front end keeps accepting and dispatching queries against
        the old segment for the whole rebuild, and only the final per-worker
        swap round-trip (microseconds of pipe traffic per worker) happens on
        the loop.  Queries therefore never stall behind a refresh; they
        simply keep seeing the pre-update network until the swap.
        """
        assert self.system is not None and self._admin_lock is not None
        updates = [
            (int(source), int(target), float(weight))
            for source, target, weight in request.get("updates", [])
        ]
        async with self._admin_lock:
            loop = asyncio.get_running_loop()

            def _rebuild():
                self.system.network.apply_updates(updates)
                report = self.system.refresh_async().wait()
                return report, self._publish_segment()

            report, new_segment = await loop.run_in_executor(None, _rebuild)
            old_segment, self.segment = self.segment, new_segment
            # The swap bypasses the backpressure bound: FIFO pipes guarantee
            # queued requests finish on the old cycle first, and a full
            # queue must delay -- not skip -- the re-publication.
            swaps = [
                self._submit(worker, {"op": "_swap", "segment": self.segment.name})
                for worker in self.workers
            ]
            results = await asyncio.gather(*swaps, return_exceptions=True)
            if old_segment is not None:
                old_segment.unlink()
                old_segment.close()
            swapped = sum(
                1
                for result in results
                if isinstance(result, dict) and result.get("status") == "ok"
            )
            return {
                "status": "ok",
                "fingerprint": self.system.network.fingerprint(),
                "parent_fingerprint": report.parent_fingerprint,
                "generation": self.generation,
                "workers_swapped": swapped,
                "incremental": list(report.incremental),
                "rebuilt": list(report.rebuilt),
                "num_changes": report.num_changes,
            }

    # ------------------------------------------------------------------
    # Front end
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await protocol.read_frame_async(reader)
                except protocol.ProtocolError:
                    break
                if request is None:
                    break
                response = await self._handle_request(request)
                writer.write(protocol.encode_frame(response))
                await writer.drain()
                if request.get("op") == "shutdown":
                    break
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()

    async def _handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op in ("query", "query_batch", "fleet"):
            return await self._dispatch(request)
        if op == "ping":
            return {"status": "ok", "generation": self.generation}
        if op == "info":
            return self._info()
        if op == "refresh":
            return await self._refresh(request)
        if op == "crash_worker":
            return self._crash_worker(request)
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.stop())
            return {"status": "ok", "stopping": True}
        return {"status": "error", "error": f"unknown op {op!r}"}

    def _crash_worker(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Diagnostic op: kill one worker abruptly (crash-recovery drills)."""
        index = int(request.get("worker", 0)) % max(1, len(self.workers))
        worker = self.workers[index]
        try:
            worker.conn.send({"op": "_crash"})
        except (BrokenPipeError, OSError):
            pass
        return {"status": "ok", "worker": worker.worker_id}

    def _info(self) -> Dict[str, Any]:
        assert self.segment is not None
        worker_rows = []
        for worker in self.workers:
            pid = worker.process.pid
            row: Dict[str, Any] = {
                "worker": worker.worker_id,
                "pid": pid,
                "alive": worker.process.is_alive(),
                "pending": worker.depth,
            }
            rss = process_rss_kb(pid)
            if rss is not None:
                row["rss_kb"] = rss
            stats = mapping_stats(pid, self.segment.name)
            if stats is not None:
                row["segment_mapping"] = stats
            worker_rows.append(row)
        return {
            "status": "ok",
            "generation": self.generation,
            "fingerprint": self.segment.fingerprint,
            "segment": self.segment.name,
            "segment_bytes": self.segment.size_bytes,
            "methods": list(self.config.methods),
            "routing": self.config.routing,
            "max_pending": self.config.max_pending,
            "requests_dispatched": self.requests_dispatched,
            "busy_rejections": self.busy_rejections,
            "respawns": self.respawns,
            "workers": worker_rows,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Drain and stop everything; safe to call any number of times."""
        if self._stopping:
            if self._stopped_event is not None:
                await self._stopped_event.wait()
            return
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        for worker in self.workers:
            try:
                loop.remove_reader(worker.conn.fileno())
            except (OSError, ValueError):
                pass
            try:
                worker.conn.send({"op": "_exit"})
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers.clear()
        if self.segment is not None:
            self.segment.unlink()
            self.segment.close()
        if self.address is not None and self.address[0] == "unix":
            try:
                os.unlink(self.address[1])
            except OSError:
                pass
        if self._stopped_event is not None:
            self._stopped_event.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        assert self._stopped_event is not None
        await self._stopped_event.wait()


class ServerHandle:
    """A server running on its own thread/event loop (tests, benchmarks).

    ``ServerHandle.launch(config)`` blocks until the daemon accepts
    connections and returns a handle whose :attr:`address` feeds a
    :class:`~repro.serving.client.ServingClient`; :meth:`stop` shuts the
    daemon down and joins the thread (idempotent).
    """

    def __init__(self, config: ServeConfig) -> None:
        self._config = config
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[AirServer] = None
        self.address: Optional[Tuple] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @classmethod
    def launch(cls, config: ServeConfig, timeout: float = 180.0) -> "ServerHandle":
        handle = cls(config)
        handle._thread.start()
        if not handle._ready.wait(timeout):
            raise TimeoutError("serving daemon did not start in time")
        if handle._failure is not None:
            raise RuntimeError("serving daemon failed to start") from handle._failure
        return handle

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = AirServer(self._config)
        try:
            self.address = await self._server.start()
        except BaseException as exc:  # startup failure must unblock launch()
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        await self._server.wait_stopped()

    @property
    def server(self) -> AirServer:
        assert self._server is not None
        return self._server

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._server is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(self._server.stop(), self._loop)
            try:
                future.result(timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
        self._thread.join(timeout)
