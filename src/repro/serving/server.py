"""The serving daemon: asyncio front end over a pool of worker processes.

:class:`AirServer` owns the build side -- one :class:`AirSystem` (with the
optional :class:`~repro.store.ArtifactStore` disk tier for warm starts)
builds every configured scheme once, publishes the result as a
:class:`~repro.serving.shm.SharedArtifactSegment`, and spawns N worker
processes that map the segment zero-copy.  The front end accepts framed
JSON requests (:mod:`repro.serving.protocol`) over a Unix or TCP socket
and forwards serving ops (``query`` / ``query_batch`` / ``fleet``) to
workers over per-worker pipes.

Operational contract:

* **Backpressure.**  Each worker has a bounded in-flight window
  (``max_pending``); when every worker is full, a request is answered
  ``busy`` with retry advice instead of queuing unboundedly.
* **Routing.**  ``round_robin`` spreads load evenly; ``region`` routes a
  query by its source node's kd-tree region (the partitioning layer),
  sharding the network across workers, and spills to the least-loaded
  worker when the home shard is saturated.
* **Refresh.**  ``refresh`` applies an edge-weight batch through
  :meth:`AirSystem.apply_updates` (incremental rebuilds + store
  re-publication), publishes a *new* segment, and sends each worker a
  swap message through its request pipe.  Pipes are FIFO, so every
  request enqueued before the swap is answered on the old cycle and
  everything after on the new one -- answers are old-or-new, never torn.
  The old segment is unlinked once every worker has acknowledged.
* **Crash safety.**  A liveness monitor respawns dead workers and
  re-dispatches their un-answered requests to the replacement, so a crash
  costs latency, never a wrong answer.  The same monitor evicts *hung*
  workers -- a pending request older than ``hang_timeout_s`` or a missed
  heartbeat probe gets the worker SIGKILLed and respawned; its stuck
  requests are answered with a typed error (never replayed, in case the
  request itself is the poison).
* **Deadlines.**  A request carrying ``deadline_ms`` is timed from the
  moment the server reads it: the absolute monotonic expiry travels to the
  worker (which refuses to start expired work) and the front end answers
  ``error_kind: deadline`` the instant the budget runs out, instead of
  holding the connection for an answer the client no longer wants.
* **Degraded refresh.**  A refresh whose rebuild or re-publication fails
  keeps the daemon serving the *previous* cycle: the old segment stays
  mapped, data responses carry ``"stale": true`` until a later refresh
  succeeds, and the refresh call reports ``degraded`` instead of erroring.
* **Fault injection.**  Named injection points (frame drop/truncate/
  corrupt, latency, worker SIGKILL mid-request) are threaded through the
  hot path behind :mod:`repro.faults` -- single ``None`` checks unless a
  chaos plan is installed via the ``chaos`` admin op.
* **Shutdown.**  ``stop()`` drains workers with an exit message, joins
  them, and releases the segment; it is idempotent (double shutdown is a
  no-op) and also runs on ``shutdown`` requests from clients.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import multiprocessing
import os
import signal
import tempfile
import threading
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine.system import AirSystem
from repro.experiments import ExperimentConfig
from repro.faults import runtime as faults
from repro.faults.plan import FaultPlan
from repro.partitioning.base import Partitioning
from repro.partitioning.kdtree import KDTreePartitioner
from repro.serving import protocol
from repro.serving.shm import (
    SegmentIntegrityError,
    SharedArtifactSegment,
    mapping_stats,
    process_rss_kb,
)
from repro.serving.worker import worker_main
from repro.store import ArtifactStore

__all__ = ["ServeConfig", "AirServer", "ServerHandle"]

#: Ops dispatched to workers; also the ops fault-injection and staleness
#: stamping apply to (admin/control ops must stay reliable under chaos).
_DATA_OPS = ("query", "query_batch", "fleet")


@dataclass(frozen=True)
class ServeConfig:
    """Everything that shapes one serving daemon, in one picklable object."""

    #: Evaluation network (dataset name), scale and seed -- the same knobs
    #: as the CLI's common options, resolved through ``ExperimentConfig``.
    network: str = "milan"
    scale: float = 0.02
    seed: int = 3
    regions: int = 8
    landmarks: int = 8
    #: Schemes to build and serve (canonical names).
    methods: Tuple[str, ...] = ("NR",)
    #: Worker pool size.
    workers: int = 2
    #: Per-worker bound on in-flight requests; the backpressure knob.
    max_pending: int = 32
    #: Retry advice attached to ``busy`` responses.
    retry_after_ms: float = 25.0
    #: Emulated on-air microseconds per packet (see ``WorkerRuntime``).
    pace_packet_us: float = 0.0
    #: ``round_robin`` or ``region`` (kd-tree sharding by source node).
    routing: str = "round_robin"
    #: Unix socket path; auto-generated in the temp dir when ``None`` and
    #: no TCP port is given.
    socket_path: Optional[str] = None
    #: TCP fallback: set a port (0 = ephemeral) to listen on ``host``.
    port: Optional[int] = None
    host: str = "127.0.0.1"
    #: Optional artifact-store directory (warm starts + refresh publication).
    store_dir: Optional[str] = None
    #: Worker start method; ``fork`` warm-starts in milliseconds, ``spawn``
    #: is the portable fallback.
    start_method: str = "fork"
    #: Oldest-pending age (seconds) past which a live-but-silent worker is
    #: SIGKILLed and respawned (hang eviction).
    hang_timeout_s: float = 30.0
    #: Idle-worker heartbeat cadence: with no pending requests, a ping probe
    #: is dispatched this often so an idle-hung worker still ages past
    #: ``hang_timeout_s`` instead of playing dead forever.
    heartbeat_interval_s: float = 2.0

    def experiment_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            network=self.network,
            scale=self.scale,
            seed=self.seed,
            eb_nr_regions=self.regions,
            arcflag_regions=self.regions,
            hiti_regions=self.regions,
            num_landmarks=self.landmarks,
        )


@dataclass
class _Worker:
    """Server-side handle of one worker process."""

    worker_id: int
    process: Any
    conn: Any
    #: request id -> (future, original request, dispatch time) in flight.
    pending: Dict[int, Tuple[asyncio.Future, Dict[str, Any], float]] = field(
        default_factory=dict
    )
    #: When the last idle heartbeat probe was dispatched (loop time).
    last_probe_at: float = 0.0

    @property
    def depth(self) -> int:
        return len(self.pending)

    def oldest_pending_age(self, now: float) -> float:
        """Age of the longest-waiting in-flight request, 0 when idle."""
        if not self.pending:
            return 0.0
        return now - min(entry[2] for entry in self.pending.values())


class AirServer:
    """Sharded multi-process serving daemon (see module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.system: Optional[AirSystem] = None
        self.segment: Optional[SharedArtifactSegment] = None
        self.workers: List[_Worker] = []
        self.address: Optional[Tuple] = None
        self.generation = 0
        self.respawns = 0
        self.busy_rejections = 0
        self.requests_dispatched = 0
        self.hang_evictions = 0
        self.deadline_rejections = 0
        self.refresh_failures = 0
        #: Degraded mode: a failed refresh keeps the old cycle serving with
        #: this flag set; data responses carry ``"stale": true`` until a
        #: later refresh succeeds.
        self.stale = False
        self.degraded_reason: Optional[str] = None
        #: Recent worker recoveries: ``{worker, detected, restored, mttr_s}``
        #: with loop-time stamps; bounded to the last 64 entries.
        self.respawn_log: List[Dict[str, Any]] = []
        self._partitioning: Optional[Partitioning] = None
        self._mp = multiprocessing.get_context(config.start_method)
        self._server: Optional[asyncio.base_events.Server] = None
        self._request_ids = itertools.count(1)
        self._round_robin = itertools.count()
        self._monitor_task: Optional[asyncio.Task] = None
        self._admin_lock: Optional[asyncio.Lock] = None
        self._stopped_event: Optional[asyncio.Event] = None
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # Startup
    # ------------------------------------------------------------------
    async def start(self) -> Tuple:
        """Build, publish, spawn the pool and start listening.

        Returns the listening address: ``("unix", path)`` or
        ``("tcp", host, port)``.
        """
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._admin_lock = asyncio.Lock()
        self._stopped_event = asyncio.Event()

        store = ArtifactStore(self.config.store_dir) if self.config.store_dir else None
        self.system = AirSystem.from_config(self.config.experiment_config(), store=store)
        self.segment = self._publish_segment()
        if self.config.routing == "region":
            self._partitioning = self._build_partitioning()
        elif self.config.routing != "round_robin":
            raise ValueError(f"unknown routing policy {self.config.routing!r}")

        loop = asyncio.get_running_loop()
        for worker_id in range(self.config.workers):
            self.workers.append(await self._spawn(worker_id))
        self._monitor_task = loop.create_task(self._monitor())

        if self.config.port is not None:
            self._server = await asyncio.start_server(
                self._serve_connection, host=self.config.host, port=self.config.port
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = ("tcp", self.config.host, port)
        else:
            path = self.config.socket_path or os.path.join(
                tempfile.gettempdir(), f"repro-serve-{uuid.uuid4().hex[:12]}.sock"
            )
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=path
            )
            self.address = ("unix", path)
        return self.address

    def _publish_segment(self) -> SharedArtifactSegment:
        """Build every configured scheme and publish one segment."""
        assert self.system is not None
        artifacts = {
            name: self.system.scheme(name).artifact() for name in self.config.methods
        }
        self.generation += 1
        return SharedArtifactSegment.publish(self.system.network, artifacts)

    def _build_partitioning(self) -> Partitioning:
        """A kd-tree sharding of the network onto the worker pool.

        The region count is the smallest power of two covering the pool
        (kd-trees split in halves); region ``r`` is served by worker
        ``r % workers``.
        """
        assert self.system is not None
        network = self.system.network
        num_regions = 1 << max(0, self.config.workers - 1).bit_length()
        points = [(node.x, node.y) for node in network.nodes()]
        locator = KDTreePartitioner.build(points, num_regions)
        return Partitioning(network, locator)

    async def _spawn(self, worker_id: int) -> _Worker:
        """Start one worker process and wait for its warm-start handshake."""
        assert self.segment is not None
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=worker_main,
            args=(
                child_conn,
                worker_id,
                self.segment.name,
                self.config.experiment_config(),
                self.config.pace_packet_us,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        loop = asyncio.get_running_loop()
        ready = loop.create_future()
        worker = _Worker(worker_id=worker_id, process=process, conn=parent_conn)
        loop.add_reader(
            parent_conn.fileno(), self._drain_worker, worker, ready
        )
        await asyncio.wait_for(ready, timeout=120.0)
        return worker

    # ------------------------------------------------------------------
    # Worker pipe plumbing
    # ------------------------------------------------------------------
    def _drain_worker(self, worker: _Worker, ready: Optional[asyncio.Future]) -> None:
        """Reader callback: resolve futures for every buffered response."""
        try:
            while worker.conn.poll():
                message = worker.conn.recv()
                if message.get("op") == "_ready":
                    if ready is not None and not ready.done():
                        ready.set_result(True)
                    continue
                entry = worker.pending.pop(message.pop("id", None), None)
                if entry is not None and not entry[0].done():
                    entry[0].set_result(message)
        except (EOFError, OSError):
            # Worker died mid-pipe; the liveness monitor owns recovery.
            try:
                asyncio.get_running_loop().remove_reader(worker.conn.fileno())
            except (OSError, ValueError):
                pass

    def _submit(self, worker: _Worker, request: Dict[str, Any]) -> asyncio.Future:
        """Send one request down a worker's pipe, tracked by a future."""
        loop = asyncio.get_running_loop()
        request_id = next(self._request_ids)
        future = loop.create_future()
        worker.pending[request_id] = (future, request, loop.time())
        self.requests_dispatched += 1
        try:
            worker.conn.send({**request, "id": request_id})
        except (BrokenPipeError, OSError):
            pass  # dead worker: the monitor re-dispatches the pending entry
        return future

    def _pick_worker(self, request: Dict[str, Any]) -> Optional[_Worker]:
        """Route a request to a worker with queue capacity; ``None`` = busy."""
        if not self.workers:
            return None
        preferred: Optional[_Worker] = None
        if (
            self.config.routing == "region"
            and self._partitioning is not None
            and request.get("op") == "query"
        ):
            try:
                region = self._partitioning.region_of(int(request["source"]))
                preferred = self.workers[region % len(self.workers)]
            except (KeyError, ValueError, TypeError):
                preferred = None
        if preferred is None:
            preferred = self.workers[next(self._round_robin) % len(self.workers)]
        if preferred.depth < self.config.max_pending:
            return preferred
        # Home shard saturated: spill to the least-loaded worker with room.
        fallback = min(self.workers, key=lambda worker: worker.depth)
        if fallback.depth < self.config.max_pending:
            return fallback
        return None

    async def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        worker = self._pick_worker(request)
        if worker is None:
            self.busy_rejections += 1
            return {
                "status": "busy",
                "retry_after_ms": self.config.retry_after_ms,
            }
        loop = asyncio.get_running_loop()
        deadline_at: Optional[float] = None
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None:
            # Absolute monotonic expiry: loop.time() is CLOCK_MONOTONIC,
            # comparable across forked workers on Linux, so the worker can
            # refuse to start work the client already abandoned.
            deadline_at = loop.time() + float(deadline_ms) / 1000.0
            request = {**request, "deadline_at": deadline_at}
        future = self._submit(worker, request)
        kill = faults.inject("serving.worker.kill", op=request.get("op"))
        if kill is not None:
            # SIGKILL the worker with this request in flight: the monitor
            # must detect, respawn and replay for the answer to ever arrive.
            try:
                os.kill(worker.process.pid, signal.SIGKILL)
            except (ProcessLookupError, TypeError):  # pragma: no cover - race
                pass
        if deadline_at is None:
            response = await future
        else:
            try:
                response = await asyncio.wait_for(
                    future, timeout=max(deadline_at - loop.time(), 0.0)
                )
            except asyncio.TimeoutError:
                # The cancelled future stays in ``pending``; the drain and
                # replay paths skip done futures, so a late worker answer is
                # discarded instead of resurrecting the request.
                self.deadline_rejections += 1
                return {
                    "status": "error",
                    "error": f"deadline of {float(deadline_ms):.0f} ms expired",
                    "error_kind": "deadline",
                }
        if self.stale and response.get("status") == "ok":
            response = {**response, "stale": True}
        return response

    # ------------------------------------------------------------------
    # Liveness monitor and respawn
    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        """Liveness loop: respawn the dead, evict the hung, probe the idle.

        Dead workers (process gone) are respawned and their un-answered
        requests replayed on the replacement.  *Hung* workers -- alive but
        silent past ``hang_timeout_s`` on their oldest in-flight request --
        are SIGKILLed with their pendings answered by a typed
        ``worker_evicted`` error and **not** replayed: a request that hangs
        one worker must not be given the chance to hang its replacement.
        Idle workers get a heartbeat ping every ``heartbeat_interval_s`` so
        an idle-hung worker accumulates a pending probe and ages into
        eviction like any other hang.
        """
        loop = asyncio.get_running_loop()
        while not self._stopping:
            await asyncio.sleep(0.15)
            for index, worker in enumerate(list(self.workers)):
                if self._stopping:
                    break
                if worker.process.is_alive():
                    now = loop.time()
                    if worker.pending:
                        if worker.oldest_pending_age(now) > self.config.hang_timeout_s:
                            self._evict(worker)
                    elif now - worker.last_probe_at > self.config.heartbeat_interval_s:
                        worker.last_probe_at = now
                        self._submit(worker, {"op": "ping", "_probe": True})
                    continue
                detected = loop.time()
                self.respawns += 1
                replacement = await self._respawn(worker)
                if replacement is None:
                    continue
                restored = loop.time()
                self.respawn_log.append(
                    {
                        "worker": worker.worker_id,
                        "detected": detected,
                        "restored": restored,
                        "mttr_s": restored - detected,
                    }
                )
                del self.respawn_log[:-64]
                self.workers[index] = replacement
                for future, request, _dispatched in worker.pending.values():
                    if future.done():
                        continue
                    if request.get("op") == "_crash":
                        future.set_result(
                            {"status": "ok", "note": "worker crashed as requested"}
                        )
                    else:
                        # Replay on the replacement: the request never got an
                        # answer, so re-running it cannot double-serve.
                        self._relay(request, future, replacement)
                worker.pending.clear()

    def _evict(self, worker: _Worker) -> None:
        """SIGKILL a hung worker; answer (don't replay) its stuck requests."""
        self.hang_evictions += 1
        for future, _request, _dispatched in worker.pending.values():
            if not future.done():
                future.set_result(
                    {
                        "status": "error",
                        "error": f"worker {worker.worker_id} evicted "
                        f"(hung past {self.config.hang_timeout_s:.0f}s)",
                        "error_kind": "worker_evicted",
                    }
                )
        worker.pending.clear()
        try:
            os.kill(worker.process.pid, signal.SIGKILL)
        except (ProcessLookupError, TypeError):  # pragma: no cover - race
            pass
        # The next monitor pass sees the dead process and respawns it.

    def _relay(
        self, request: Dict[str, Any], future: asyncio.Future, worker: _Worker
    ) -> None:
        replay = self._submit(worker, request)

        def _forward(done: asyncio.Future) -> None:
            if future.done():
                return
            if done.cancelled():
                future.cancel()
            else:
                future.set_result(done.result())

        replay.add_done_callback(_forward)

    async def _respawn(self, worker: _Worker) -> Optional[_Worker]:
        loop = asyncio.get_running_loop()
        try:
            loop.remove_reader(worker.conn.fileno())
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        try:
            return await self._spawn(worker.worker_id)
        except (OSError, asyncio.TimeoutError):  # pragma: no cover - spawn failure
            return None

    # ------------------------------------------------------------------
    # Refresh (cycle re-publication)
    # ------------------------------------------------------------------
    async def _refresh(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Apply weight updates, publish a new segment, swap every worker.

        The expensive part -- repairing the schemes and packing the new
        shared segment -- runs *off* the event loop, through the engine's
        double-buffered :meth:`~repro.engine.system.AirSystem.refresh_async`:
        the asyncio front end keeps accepting and dispatching queries against
        the old segment for the whole rebuild, and only the final per-worker
        swap round-trip (microseconds of pipe traffic per worker) happens on
        the loop.  Queries therefore never stall behind a refresh; they
        simply keep seeing the pre-update network until the swap.
        """
        assert self.system is not None and self._admin_lock is not None
        updates = [
            (int(source), int(target), float(weight))
            for source, target, weight in request.get("updates", [])
        ]
        async with self._admin_lock:
            loop = asyncio.get_running_loop()

            def _rebuild():
                self.system.network.apply_updates(updates)
                report = self.system.refresh_async().wait()
                return report, self._publish_segment()

            try:
                report, new_segment = await loop.run_in_executor(None, _rebuild)
            except Exception as exc:
                # Degrade, don't die: the old segment keeps serving (the
                # engine left the network delta uncleared, so the *next*
                # refresh rebuilds from the cumulative updates), and data
                # responses carry the staleness flag until one succeeds.
                return self._degrade(f"{type(exc).__name__}: {exc}")
            try:
                new_segment.verify()
            except SegmentIntegrityError as exc:
                new_segment.unlink()
                new_segment.close()
                return self._degrade(str(exc))
            old_segment, self.segment = self.segment, new_segment
            # The swap bypasses the backpressure bound: FIFO pipes guarantee
            # queued requests finish on the old cycle first, and a full
            # queue must delay -- not skip -- the re-publication.
            swaps = [
                self._submit(worker, {"op": "_swap", "segment": self.segment.name})
                for worker in self.workers
            ]
            results = await asyncio.gather(*swaps, return_exceptions=True)
            if old_segment is not None:
                old_segment.unlink()
                old_segment.close()
            swapped = sum(
                1
                for result in results
                if isinstance(result, dict) and result.get("status") == "ok"
            )
            self.stale = False
            self.degraded_reason = None
            return {
                "status": "ok",
                "fingerprint": self.system.network.fingerprint(),
                "parent_fingerprint": report.parent_fingerprint,
                "generation": self.generation,
                "workers_swapped": swapped,
                "incremental": list(report.incremental),
                "rebuilt": list(report.rebuilt),
                "num_changes": report.num_changes,
            }

    def _degrade(self, reason: str) -> Dict[str, Any]:
        """Enter degraded mode after a failed refresh: old cycle, flagged."""
        self.stale = True
        self.degraded_reason = reason
        self.refresh_failures += 1
        return {
            "status": "ok",
            "degraded": True,
            "stale": True,
            "error": reason,
            "fingerprint": self.segment.fingerprint if self.segment else None,
            "generation": self.generation,
            "workers_swapped": 0,
        }

    # ------------------------------------------------------------------
    # Front end
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await protocol.read_frame_async(reader)
                except protocol.ProtocolError:
                    break
                if request is None:
                    break
                response = await self._handle_request(request)
                frame = protocol.encode_frame(response)
                closing = False
                if faults.active() is not None and request.get("op") in _DATA_OPS:
                    frame, closing, dropped = await self._damage_frame(frame)
                    if dropped:
                        continue
                writer.write(frame)
                await writer.drain()
                if closing or request.get("op") == "shutdown":
                    break
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            writer.close()

    async def _damage_frame(self, frame: bytes) -> Tuple[bytes, bool, bool]:
        """Apply protocol-layer fault points to one outgoing data frame.

        Returns ``(frame, close_after_write, drop)``.  Only data-path
        responses are damaged (``_DATA_OPS``): admin and chaos-control ops
        must stay reachable under any plan, or a chaos run could never be
        stopped.  ``drop`` swallows the response entirely (client deadline
        territory); ``truncate`` writes a half frame then closes (the
        client's mid-frame ``ProtocolError``); ``corrupt`` flips the first
        payload byte, guaranteeing a JSON parse failure rather than a
        silently-altered answer.
        """
        latency = faults.inject("serving.latency_ms")
        if latency is not None:
            await asyncio.sleep(float(latency.param("latency_ms", 25.0)) / 1000.0)
        if faults.inject("serving.frame.drop") is not None:
            return frame, False, True
        if faults.inject("serving.frame.truncate") is not None:
            return frame[: max(5, len(frame) // 2)], True, False
        if faults.inject("serving.frame.corrupt") is not None:
            damaged = bytearray(frame)
            damaged[4] ^= 0xFF
            return bytes(damaged), False, False
        return frame, False, False

    async def _handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        if op in _DATA_OPS:
            return await self._dispatch(request)
        if op == "ping":
            return {"status": "ok", "generation": self.generation}
        if op == "info":
            return self._info()
        if op == "refresh":
            return await self._refresh(request)
        if op == "chaos":
            return await self._chaos(request)
        if op == "crash_worker":
            return self._crash_worker(request)
        if op == "shutdown":
            asyncio.get_running_loop().create_task(self.stop())
            return {"status": "ok", "stopping": True}
        return {"status": "error", "error": f"unknown op {op!r}"}

    async def _chaos(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Admin op: install/clear/inspect a fault plan, server *and* workers.

        Install parses the JSON plan once here (a malformed plan is rejected
        before anything changes) and forwards the raw dict to every worker,
        each of which builds its own instance -- same seed, private clock,
        so per-worker decision streams are deterministic.  Workers forked
        *after* an install (respawns) inherit the server plan through fork.
        """
        action = request.get("action", "install")
        if action == "stats":
            plan = faults.active()
            return {"status": "ok", "faults": plan.stats() if plan else {}}
        if action == "install":
            plan_dict = request.get("plan") or {}
            try:
                plan = FaultPlan.from_dict(plan_dict)
            except (KeyError, TypeError, ValueError) as exc:
                return {"status": "error", "error": f"bad fault plan: {exc}"}
            faults.install(plan)
            forward: Dict[str, Any] = {
                "op": "_chaos",
                "action": "install",
                "plan": plan_dict,
            }
        elif action == "clear":
            faults.clear()
            forward = {"op": "_chaos", "action": "clear"}
        else:
            return {"status": "error", "error": f"unknown chaos action {action!r}"}
        acks = await asyncio.gather(
            *(self._submit(worker, forward) for worker in self.workers),
            return_exceptions=True,
        )
        applied = sum(
            1
            for ack in acks
            if isinstance(ack, dict) and ack.get("status") == "ok"
        )
        return {"status": "ok", "action": action, "workers_applied": applied}

    def _crash_worker(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Diagnostic op: kill one worker abruptly (crash-recovery drills)."""
        index = int(request.get("worker", 0)) % max(1, len(self.workers))
        worker = self.workers[index]
        try:
            worker.conn.send({"op": "_crash"})
        except (BrokenPipeError, OSError):
            pass
        return {"status": "ok", "worker": worker.worker_id}

    def _info(self) -> Dict[str, Any]:
        assert self.segment is not None
        worker_rows = []
        for worker in self.workers:
            pid = worker.process.pid
            row: Dict[str, Any] = {
                "worker": worker.worker_id,
                "pid": pid,
                "alive": worker.process.is_alive(),
                "pending": worker.depth,
            }
            rss = process_rss_kb(pid)
            if rss is not None:
                row["rss_kb"] = rss
            stats = mapping_stats(pid, self.segment.name)
            if stats is not None:
                row["segment_mapping"] = stats
            worker_rows.append(row)
        plan = faults.active()
        return {
            "status": "ok",
            "generation": self.generation,
            "fingerprint": self.segment.fingerprint,
            "segment": self.segment.name,
            "segment_bytes": self.segment.size_bytes,
            "methods": list(self.config.methods),
            "routing": self.config.routing,
            "max_pending": self.config.max_pending,
            "requests_dispatched": self.requests_dispatched,
            "busy_rejections": self.busy_rejections,
            "respawns": self.respawns,
            "respawn_log": list(self.respawn_log),
            "hang_evictions": self.hang_evictions,
            "deadline_rejections": self.deadline_rejections,
            "refresh_failures": self.refresh_failures,
            "stale": self.stale,
            "degraded_reason": self.degraded_reason,
            "faults": plan.stats() if plan is not None else None,
            "workers": worker_rows,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def stop(self) -> None:
        """Drain and stop everything; safe to call any number of times."""
        if self._stopping:
            if self._stopped_event is not None:
                await self._stopped_event.wait()
            return
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        for worker in self.workers:
            try:
                loop.remove_reader(worker.conn.fileno())
            except (OSError, ValueError):
                pass
            try:
                worker.conn.send({"op": "_exit"})
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - hung worker
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers.clear()
        if self.segment is not None:
            self.segment.unlink()
            self.segment.close()
        if self.address is not None and self.address[0] == "unix":
            try:
                os.unlink(self.address[1])
            except OSError:
                pass
        if self._stopped_event is not None:
            self._stopped_event.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        assert self._stopped_event is not None
        await self._stopped_event.wait()


class ServerHandle:
    """A server running on its own thread/event loop (tests, benchmarks).

    ``ServerHandle.launch(config)`` blocks until the daemon accepts
    connections and returns a handle whose :attr:`address` feeds a
    :class:`~repro.serving.client.ServingClient`; :meth:`stop` shuts the
    daemon down and joins the thread (idempotent).
    """

    def __init__(self, config: ServeConfig) -> None:
        self._config = config
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[AirServer] = None
        self.address: Optional[Tuple] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @classmethod
    def launch(cls, config: ServeConfig, timeout: float = 180.0) -> "ServerHandle":
        handle = cls(config)
        handle._thread.start()
        if not handle._ready.wait(timeout):
            raise TimeoutError("serving daemon did not start in time")
        if handle._failure is not None:
            raise RuntimeError("serving daemon failed to start") from handle._failure
        return handle

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = AirServer(self._config)
        try:
            self.address = await self._server.start()
        except BaseException as exc:  # startup failure must unblock launch()
            self._failure = exc
            self._ready.set()
            return
        self._ready.set()
        await self._server.wait_stopped()

    @property
    def server(self) -> AirServer:
        assert self._server is not None
        return self._server

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._server is not None and self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(self._server.stop(), self._loop)
            try:
                future.result(timeout)
            except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                pass
        self._thread.join(timeout)
