"""Client-side circuit breaker: stop hammering a daemon that stopped answering.

Classic three-state machine. **Closed** passes every call and counts
consecutive transport failures; at ``failure_threshold`` it **opens** and
fails calls instantly (:class:`CircuitOpenError`, with honest retry advice)
without touching the socket.  After ``reset_after_s`` the breaker goes
**half-open**: exactly one probe call is let through -- success closes the
circuit, failure re-opens it and restarts the cooldown.  Only transport
failures (connection errors, deadline expiry) trip the breaker; a ``busy``
or ``error`` *response* proves the server is alive and counts as success.

The breaker is deliberately shared-nothing with the server: it protects the
client's own latency budget (fail in microseconds instead of burning a full
timeout per doomed call) and sheds reconnect load from a struggling daemon.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(ConnectionError):
    """The breaker is open: the call was refused without touching the wire."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(f"circuit open, retry in {max(retry_after_s, 0.0):.2f}s")
        self.retry_after_s = max(retry_after_s, 0.0)


class CircuitBreaker:
    """Three-state breaker with a single half-open probe (thread-safe)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Lifetime counters, surfaced by load reports.
        self.rejections = 0
        self.trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` when open.

        In half-open state exactly one caller is admitted as the probe;
        everyone else is rejected until the probe reports back.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            now = self._clock()
            if self._state == self.OPEN:
                remaining = self._opened_at + self.reset_after_s - now
                if remaining > 0:
                    self.rejections += 1
                    raise CircuitOpenError(remaining)
                self._state = self.HALF_OPEN
                self._probe_inflight = False
            if self._probe_inflight:
                self.rejections += 1
                raise CircuitOpenError(self.reset_after_s)
            self._probe_inflight = True

    def record_success(self) -> None:
        """The gated call got an answer: close (or stay closed)."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probe_inflight = False

    def record_failure(self) -> None:
        """The gated call failed at the transport layer."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                # The probe failed: straight back to open, cooldown restarts.
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False
                self.trips += 1
                return
            self._failures += 1
            if self._state == self.CLOSED and self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.trips += 1
