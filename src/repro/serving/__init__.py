"""Broadcast serving daemon: a sharded, multi-process :class:`AirSystem`.

The paper's serving model is one broadcast server feeding an unbounded
client population; this package is the repo's process-level realization of
it.  An asyncio front end (:class:`~repro.serving.server.AirServer`)
accepts query / batch / fleet / refresh requests over a local socket
protocol (:mod:`repro.serving.protocol`) and dispatches them to a pool of
worker processes.  Workers warm-start in milliseconds: the published index
-- frozen CSR arrays, packed border-path blobs, full build artifacts --
lives in one :class:`~repro.serving.shm.SharedArtifactSegment` that every
worker maps zero-copy, so N workers hold one physical copy of the index.

Operational behaviour the tests pin down:

* bounded per-worker queues with reject-with-retry-after backpressure,
* ``refresh()`` re-publishes a new segment and swaps workers over
  atomically (in-flight requests finish on the cycle they started on),
* crashed workers are detected and respawned without wrong answers,
* shutdown is graceful and idempotent.
"""

from repro.serving.breaker import CircuitBreaker, CircuitOpenError
from repro.serving.client import LoadReport, ServingClient, run_load
from repro.serving.protocol import (
    DeadlineExceeded,
    ProtocolError,
    ServerBusy,
    ServerError,
    read_frame,
    write_frame,
)
from repro.serving.server import AirServer, ServeConfig, ServerHandle
from repro.serving.shm import SegmentIntegrityError, SharedArtifactSegment

__all__ = [
    "AirServer",
    "CircuitBreaker",
    "CircuitOpenError",
    "DeadlineExceeded",
    "LoadReport",
    "ProtocolError",
    "SegmentIntegrityError",
    "ServeConfig",
    "ServerBusy",
    "ServerError",
    "ServerHandle",
    "ServingClient",
    "SharedArtifactSegment",
    "read_frame",
    "write_frame",
    "run_load",
]
