"""Property-based tests for the fleet simulator's cycle/answer invariants.

Unlike :mod:`test_properties` (which uses hypothesis), these properties run
on plain seeded-random generators: every registered scheme is exercised over
several random small networks, and the checked invariants are

(a) every on-air answer equals the Dijkstra ground truth at loss 0,
(b) fleet aggregates are bit-identical between a sequential run and a
    thread-pool run, and
(c) for lossless sessions, tuning time <= access latency, tuning time never
    exceeds one cycle (no packet needs to be heard twice), and access
    latency is bounded by a small constant number of cycles.

On (c): the issue-level invariant "access latency <= cycle length" is *not*
a theorem of broadcast schemes -- a full-cycle client that tunes in
mid-segment must wait for the next segment boundary and then listen for one
whole cycle, exceeding the cycle length by construction.  The provable bound
(also for rotated replays, whose cyclic walk can wrap twice) is three cycles
plus one segment, which is what we assert.
"""

from __future__ import annotations

import math
import random
from typing import Dict

import pytest

from repro import air
from repro.fleet import simulate_fleet
from repro.network.algorithms.dijkstra import shortest_path
from repro.network.algorithms.paths import INFINITY
from repro.network.graph import RoadNetwork
from repro.experiments import fleet_uniform_trickle

#: Small per-scheme parameters suited to ~20-node random networks.
SMALL_PARAMS: Dict[str, Dict[str, int]] = {
    "DJ": {},
    "NR": {"num_regions": 4},
    "EB": {"num_regions": 4},
    "LD": {"num_landmarks": 2},
    "AF": {"num_regions": 4},
    "SPQ": {"max_depth": 8},
    "HiTi": {"num_regions": 4},
}

SEEDS = [3, 17, 29]


def random_network(seed: int) -> RoadNetwork:
    """A random small connected network (spanning chain plus extra edges)."""
    rng = random.Random(seed)
    num_nodes = rng.randint(12, 26)
    network = RoadNetwork(name=f"fleet-prop-{seed}")
    for node_id in range(num_nodes):
        network.add_node(node_id, rng.uniform(0, 100), rng.uniform(0, 100))
    for node_id in range(1, num_nodes):
        network.add_bidirectional_edge(node_id - 1, node_id, rng.uniform(0.5, 40))
    for _ in range(rng.randint(num_nodes // 2, 2 * num_nodes)):
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a != b:
            network.add_edge(a, b, rng.uniform(0.5, 40))
    return network


def test_every_registered_scheme_has_small_params():
    """Keep :data:`SMALL_PARAMS` in sync with the registry."""
    assert set(SMALL_PARAMS) == set(air.available_schemes())


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scheme_name", sorted(SMALL_PARAMS))
def test_fleet_invariants_on_random_networks(scheme_name, seed):
    network = random_network(seed)
    scheme = air.create(scheme_name, network, **SMALL_PARAMS[scheme_name])
    devices = fleet_uniform_trickle(
        network, 10, seed=seed + 1, with_ground_truth=True
    )

    sequential = simulate_fleet(scheme, devices, seed=seed, concurrency=1)
    threaded = simulate_fleet(scheme, devices, seed=seed, concurrency=4)

    # (b) aggregates equal a sequential per-device loop bit for bit.
    assert sequential.signature() == threaded.signature()

    # (a) every on-air answer matches the Dijkstra ground truth at loss 0.
    assert sequential.mismatches == 0
    cycle_packets = scheme.cycle.total_packets
    max_segment = max(segment.num_packets for segment in scheme.cycle)
    for outcome in sequential.outcomes:
        truth = shortest_path(network, outcome.spec.source, outcome.spec.target)
        assert truth.distance != INFINITY
        assert outcome.found
        assert math.isclose(
            outcome.distance, truth.distance, rel_tol=1e-6, abs_tol=1e-6
        )

        # (c) cycle invariants for lossless sessions.
        metrics = outcome.metrics
        assert metrics.lost_packets == 0
        assert metrics.tuning_time_packets <= metrics.access_latency_packets
        assert metrics.tuning_time_packets <= cycle_packets
        assert metrics.access_latency_packets <= 3 * cycle_packets + max_segment
        assert metrics.peak_memory_bytes > 0


@pytest.mark.parametrize("scheme_name", sorted(SMALL_PARAMS))
def test_lossy_fleet_invariants_on_random_networks(scheme_name):
    """Loss > 0: every device recovers the truth, bit-identically threaded.

    Lossy devices take the native packet-by-packet path, so this is the
    recovery property: Bernoulli packet drops cost extra listening, never a
    wrong (or torn) answer, and the pre-drawn loss seeds keep a thread-pool
    run bit-identical to the sequential one.
    """
    seed = SEEDS[0]
    network = random_network(seed)
    scheme = air.create(scheme_name, network, **SMALL_PARAMS[scheme_name])
    devices = fleet_uniform_trickle(
        network, 10, seed=seed + 1, loss_rate=0.08, with_ground_truth=True
    )

    sequential = simulate_fleet(scheme, devices, seed=seed, concurrency=1)
    threaded = simulate_fleet(scheme, devices, seed=seed, concurrency=4)

    assert sequential.signature() == threaded.signature()
    assert sequential.natives == len(devices) and sequential.replays == 0
    assert sequential.mismatches == 0
    total_lost = 0
    for outcome in sequential.outcomes:
        truth = shortest_path(network, outcome.spec.source, outcome.spec.target)
        assert outcome.found
        assert math.isclose(
            outcome.distance, truth.distance, rel_tol=1e-6, abs_tol=1e-6
        )
        metrics = outcome.metrics
        assert metrics.tuning_time_packets <= metrics.access_latency_packets
        total_lost += metrics.lost_packets
    # The property must actually exercise recovery: at 8% loss across ten
    # whole sessions, some packets were dropped and re-listened for.
    assert total_lost > 0


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_fleet_aggregates_are_order_free_sums(seed):
    """Percentiles and means are functions of the outcome multiset only."""
    network = random_network(seed)
    scheme = air.create("NR", network, **SMALL_PARAMS["NR"])
    devices = fleet_uniform_trickle(network, 12, seed=seed, with_ground_truth=True)
    run = simulate_fleet(scheme, devices, seed=seed)
    latencies = sorted(o.metrics.access_latency_packets for o in run.outcomes)
    assert run.percentile("access_latency_packets", 100) == latencies[-1]
    assert run.percentile("access_latency_packets", 50) == latencies[(len(latencies) + 1) // 2 - 1]
    assert run.mean("access_latency_packets") == pytest.approx(
        sum(latencies) / len(latencies)
    )
