"""Unit tests for the HiTi hierarchical index."""

import random

import pytest

from repro.index.hiti import HiTiIndex
from repro.network.algorithms.dijkstra import shortest_path
from repro.partitioning.kdtree import build_kdtree_partitioning


@pytest.fixture(scope="module")
def hiti(small_network):
    partitioning = build_kdtree_partitioning(small_network, 8)
    return HiTiIndex(small_network, partitioning)


class TestHierarchy:
    def test_number_of_levels(self, hiti):
        # 8 leaf regions -> levels of block size 1, 2, 4, 8.
        assert len(hiti.levels) == 4

    def test_leaf_level_has_one_subgraph_per_region(self, hiti):
        assert len(hiti.levels[0]) == 8

    def test_top_level_covers_all_regions(self, hiti):
        top = list(hiti.levels[-1].values())[0]
        assert set(top.regions) == set(range(8))

    def test_top_level_has_no_border_nodes(self, hiti):
        top = list(hiti.levels[-1].values())[0]
        assert top.border_nodes == []

    def test_border_nodes_shrink_up_the_hierarchy(self, hiti):
        total_per_level = [
            sum(len(s.border_nodes) for s in level.values()) for level in hiti.levels
        ]
        assert total_per_level == sorted(total_per_level, reverse=True)

    def test_super_edges_present(self, hiti):
        assert hiti.num_super_edges() > 0
        assert hiti.size_bytes() == hiti.num_super_edges() * 12


class TestSuperEdgeWeights:
    def test_leaf_super_edges_are_within_region_shortest_paths(self, small_network, hiti):
        """A super-edge never underestimates the full-graph distance."""
        for region, subgraph in hiti.levels[0].items():
            for (u, v), weight in list(subgraph.super_edges.items())[:10]:
                true_distance = shortest_path(small_network, u, v).distance
                assert weight >= true_distance - 1e-9

    def test_precomputation_time_recorded(self, hiti):
        assert hiti.precomputation_seconds > 0.0


class TestQuery:
    def test_matches_dijkstra_distances(self, small_network, hiti):
        rng = random.Random(14)
        nodes = small_network.node_ids()
        for _ in range(25):
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = shortest_path(small_network, source, target).distance
            assert hiti.query(source, target).distance == pytest.approx(expected)

    def test_same_region_query(self, small_network, hiti):
        region_nodes = hiti.partitioning.nodes_in_region(0)
        if len(region_nodes) >= 2:
            source, target = region_nodes[0], region_nodes[1]
            expected = shortest_path(small_network, source, target).distance
            assert hiti.query(source, target).distance == pytest.approx(expected)
