"""Unit tests for the broadcast channel simulator and client sessions."""

import pytest

from repro.broadcast.channel import BroadcastChannel, ClientSession, PacketLossModel
from repro.broadcast.cycle import BroadcastCycle
from repro.broadcast.packet import PACKET_PAYLOAD_BYTES, Segment, SegmentKind


def make_cycle():
    return BroadcastCycle(
        [
            Segment("index", SegmentKind.INDEX, 2 * PACKET_PAYLOAD_BYTES),
            Segment("data-0", SegmentKind.NETWORK_DATA, 4 * PACKET_PAYLOAD_BYTES),
            Segment("data-1", SegmentKind.NETWORK_DATA, 3 * PACKET_PAYLOAD_BYTES),
        ]
    )


class TestPacketLossModel:
    def test_zero_rate_never_loses(self):
        model = PacketLossModel(0.0)
        assert not any(model.is_lost() for _ in range(1000))

    def test_rate_roughly_respected(self):
        model = PacketLossModel(0.3, seed=1)
        losses = sum(model.is_lost() for _ in range(5000))
        assert 0.25 * 5000 < losses < 0.35 * 5000

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PacketLossModel(1.0)
        with pytest.raises(ValueError):
            PacketLossModel(-0.1)


class TestClientSession:
    def test_receive_one_packet_counts_tuning_and_advances(self):
        session = ClientSession(make_cycle(), start_position=3)
        segment = session.receive_one_packet()
        assert segment.name == "data-0"
        assert session.tuning_packets == 1
        assert session.position == 4
        assert session.elapsed_packets == 1

    def test_sleep_until_charges_no_tuning(self):
        session = ClientSession(make_cycle(), start_position=0)
        session.sleep_until(7)
        assert session.tuning_packets == 0
        assert session.elapsed_packets == 7

    def test_sleep_backwards_rejected(self):
        session = ClientSession(make_cycle(), start_position=5)
        with pytest.raises(ValueError):
            session.sleep_until(2)

    def test_receive_segment_waits_for_next_occurrence(self):
        session = ClientSession(make_cycle(), start_position=0)
        reception = session.receive_segment("data-1")
        assert reception.start_position == 6
        assert session.tuning_packets == 3
        assert session.position == 9

    def test_receive_segment_wraps_to_next_cycle(self):
        # Tune in after data-0 has started: its next full broadcast is in the
        # following cycle repetition.
        session = ClientSession(make_cycle(), start_position=3)
        reception = session.receive_segment("data-0")
        assert reception.start_position == 9 + 2
        assert session.position == 9 + 2 + 4

    def test_receive_specific_packets_only(self):
        session = ClientSession(make_cycle(), start_position=0)
        reception = session.receive_segment_packets("data-0", [1, 3])
        assert session.tuning_packets == 2
        assert reception.requested_offsets == [1, 3]
        # Position ends right after the last requested packet (offset 3 of a
        # segment starting at 2).
        assert session.position == 2 + 3 + 1

    def test_receive_packets_validates_offsets(self):
        session = ClientSession(make_cycle(), start_position=0)
        with pytest.raises(ValueError):
            session.receive_segment_packets("data-0", [99])
        with pytest.raises(ValueError):
            session.receive_segment_packets("data-0", [])

    def test_loss_recorded_per_packet(self):
        session = ClientSession(
            make_cycle(), start_position=0, loss_model=PacketLossModel(0.999999, seed=3)
        )
        reception = session.receive_segment("index")
        assert reception.lost_offsets == [0, 1]
        assert session.lost_packets == 2
        assert not reception.complete

    def test_receive_full_cycle_without_loss(self):
        session = ClientSession(make_cycle(), start_position=4)
        received = session.receive_full_cycle()
        assert received == 9
        assert session.tuning_packets == 9
        assert session.elapsed_packets == 9

    def test_receive_full_cycle_retries_lost_packets(self):
        session = ClientSession(
            make_cycle(), start_position=0, loss_model=PacketLossModel(0.4, seed=5)
        )
        received = session.receive_full_cycle()
        assert received > 9  # retries happened
        assert session.tuning_packets == received


class TestBroadcastChannel:
    def test_sessions_are_deterministic_per_channel_seed(self):
        cycle = make_cycle()
        offsets_a = [BroadcastChannel(cycle, seed=2).session().start_position for _ in range(3)]
        offsets_b = [BroadcastChannel(cycle, seed=2).session().start_position for _ in range(3)]
        assert offsets_a == offsets_b

    def test_successive_sessions_tune_in_at_different_offsets(self):
        channel = BroadcastChannel(make_cycle(), seed=3)
        offsets = {channel.session().start_position for _ in range(10)}
        assert len(offsets) > 1

    def test_explicit_tune_in_offset(self):
        channel = BroadcastChannel(make_cycle(), seed=0)
        assert channel.session(tune_in_offset=5).start_position == 5
