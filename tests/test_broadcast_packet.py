"""Unit tests for packets and segments."""

import pytest

from repro.broadcast.packet import (
    PACKET_HEADER_BYTES,
    PACKET_PAYLOAD_BYTES,
    PACKET_SIZE_BYTES,
    Segment,
    SegmentKind,
    packets_for_bytes,
)


class TestPacketConstants:
    def test_paper_packet_size(self):
        assert PACKET_SIZE_BYTES == 128

    def test_payload_is_size_minus_header(self):
        assert PACKET_PAYLOAD_BYTES == PACKET_SIZE_BYTES - PACKET_HEADER_BYTES
        assert PACKET_PAYLOAD_BYTES > 0


class TestPacketsForBytes:
    def test_zero_bytes_still_occupies_one_packet(self):
        assert packets_for_bytes(0) == 1

    def test_exact_fit(self):
        assert packets_for_bytes(PACKET_PAYLOAD_BYTES) == 1
        assert packets_for_bytes(2 * PACKET_PAYLOAD_BYTES) == 2

    def test_ceiling_division(self):
        assert packets_for_bytes(PACKET_PAYLOAD_BYTES + 1) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packets_for_bytes(-1)


class TestSegment:
    def test_num_packets_derived_from_size(self):
        segment = Segment("s", SegmentKind.NETWORK_DATA, size_bytes=5 * PACKET_PAYLOAD_BYTES + 3)
        assert segment.num_packets == 6

    def test_metadata_defaults_empty(self):
        segment = Segment("s", SegmentKind.INDEX, size_bytes=10)
        assert segment.metadata == {}
        assert segment.region is None
