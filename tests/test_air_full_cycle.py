"""Tests for the full-cycle broadcast adaptations (DJ, AF, LD; Section 3.2)."""

import pytest

from repro.broadcast.packet import SegmentKind
from repro.network.algorithms.dijkstra import shortest_path


class TestCycleContents:
    def test_dijkstra_cycle_contains_only_network_data(self, dj_scheme):
        kinds = {segment.kind for segment in dj_scheme.cycle}
        assert kinds == {SegmentKind.NETWORK_DATA}

    def test_dijkstra_has_shortest_cycle(self, dj_scheme, ld_scheme, af_scheme, eb_scheme, nr_scheme):
        """Table 1's headline ordering: DJ has the shortest possible cycle."""
        dj = dj_scheme.cycle.total_packets
        assert dj <= nr_scheme.cycle.total_packets
        assert dj <= eb_scheme.cycle.total_packets
        assert dj <= ld_scheme.cycle.total_packets
        assert dj <= af_scheme.cycle.total_packets

    def test_landmark_cycle_adds_vector_bytes(self, dj_scheme, ld_scheme, medium_network):
        extra = ld_scheme.cycle.total_bytes - dj_scheme.cycle.total_bytes
        assert extra == medium_network.num_nodes * 32

    def test_arcflag_cycle_adds_flag_bytes(self, dj_scheme, af_scheme, medium_network):
        extra = af_scheme.cycle.total_bytes - dj_scheme.cycle.total_bytes
        assert extra == medium_network.num_edges * 16  # 8 regions, 2 bytes per region

    def test_server_metrics_report_cycle_and_precomputation(self, ld_scheme):
        metrics = ld_scheme.server_metrics()
        assert metrics.cycle_packets == ld_scheme.cycle.total_packets
        assert metrics.precomputation_seconds > 0.0
        assert metrics.scheme == "LD"


class TestQueries:
    @pytest.mark.parametrize("fixture_name", ["dj_scheme", "ld_scheme", "af_scheme"])
    def test_distances_match_ground_truth(self, request, fixture_name, medium_network, query_pairs):
        scheme = request.getfixturevalue(fixture_name)
        client = scheme.client()
        for source, target in query_pairs[:8]:
            expected = shortest_path(medium_network, source, target).distance
            result = client.query(source, target)
            assert result.distance == pytest.approx(expected)

    def test_tuning_time_equals_full_cycle(self, dj_scheme, query_pairs):
        client = dj_scheme.client()
        source, target = query_pairs[0]
        result = client.query(source, target)
        assert result.metrics.tuning_time_packets == dj_scheme.cycle.total_packets

    def test_memory_covers_entire_cycle(self, dj_scheme, query_pairs):
        client = dj_scheme.client()
        source, target = query_pairs[1]
        result = client.query(source, target)
        assert result.metrics.peak_memory_bytes >= dj_scheme.cycle.total_bytes

    def test_access_latency_about_one_cycle(self, dj_scheme, query_pairs):
        client = dj_scheme.client()
        source, target = query_pairs[2]
        result = client.query(source, target)
        total = dj_scheme.cycle.total_packets
        assert total <= result.metrics.access_latency_packets <= 2 * total

    def test_cpu_time_positive(self, ld_scheme, query_pairs):
        result = ld_scheme.client().query(*query_pairs[3])
        assert result.metrics.cpu_seconds > 0.0

    def test_path_endpoints(self, dj_scheme, query_pairs):
        source, target = query_pairs[4]
        result = dj_scheme.client().query(source, target)
        assert result.path[0] == source
        assert result.path[-1] == target
